//! The [`Strategy`] trait and the built-in strategies for ranges, tuples and
//! mapped values.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type
/// (`proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function
    /// (`Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}
