//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(...)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! immediately with the stringified assertion (not the generated input
//! values). Generation is deterministic per test name, so a failure
//! reproduces exactly on re-run — add a temporary `dbg!` of the bindings to
//! inspect the offending inputs.

#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes (`proptest::collection::SizeRange`).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
    ///
    /// As in real proptest, if the element strategy cannot produce enough
    /// distinct values the set may come out smaller than requested, but never
    /// smaller than the minimum if the universe allows it.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Generous attempt budget: duplicates from a small universe are
            // fine, but we should only give up when progress truly stalls.
            let max_attempts = 50 * (target + 1);
            let mut attempts = 0;
            while set.len() < target && attempts < max_attempts {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property test file typically imports
/// (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The main property-test macro.
///
/// Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, ys in arb_vec()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::generate(&($strategy), &mut __rng),)+
                );
                // The closure gives `prop_assume!` an early exit (plain
                // `return`) that skips only the current case.
                let mut __run_case = || { $body };
                __run_case();
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test, panicking with the failing
/// inputs' values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("property failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            );
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Must appear directly inside the `proptest!` body (it expands to `return`
/// from the per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
