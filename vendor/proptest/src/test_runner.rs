//! Test configuration and the deterministic RNG behind the vendored
//! `proptest` stand-in.

/// Per-test configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default. Properties in this workspace that are too
        // expensive for 256 cases override it via `#![proptest_config]`.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG used for value generation (SplitMix64 core, seeded from
/// the test name so each property gets its own reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        debug_assert!(lo <= hi_inclusive);
        let span = (hi_inclusive - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}
