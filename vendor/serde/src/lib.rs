//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! much simpler (de)serialization model than the real serde while keeping the
//! call sites identical: `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`
//! and `use serde::{Deserialize, Serialize}` all work unchanged.
//!
//! Instead of serde's zero-copy visitor architecture, everything funnels
//! through an owned JSON-like [`Value`] tree:
//!
//! * [`Serialize`] converts a value **to** a [`Value`];
//! * [`Deserialize`] reconstructs a value **from** a [`Value`];
//! * the companion `serde_json` crate renders a [`Value`] to JSON text and
//!   parses it back.
//!
//! Maps serialize as arrays of `[key, value]` pairs so non-string keys (e.g.
//! newtype ids) roundtrip exactly.

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Owned tree representation of a serialized value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer (only used for negative values).
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a type expects.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion of a value into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserializes a named field out of an object value. Used by the derive
/// macro; not part of the public API of the real serde.
#[doc(hidden)]
pub fn __field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|Error(msg)| Error(format!("field `{name}`: {msg}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A `Value` serializes to itself, so hand-built JSON trees (e.g. the bench
// harness's machine-readable reports) pass straight through `serde_json`,
// mirroring the real serde_json's `impl Serialize for Value`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(Error(format!("expected unsigned integer, found {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of range for i64")))?,
                    other => return Err(Error(format!("expected integer, found {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected array of length {LEN}, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs so arbitrary key types
/// roundtrip without a string conversion.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_pairs(value)?.collect::<Result<_, _>>()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // HashMap iteration order is randomized per process; sort the pairs by
        // serialized key so serializing the same map is byte-deterministic
        // (corpus save files must not churn run-to-run).
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by(|(a, _), (b, _)| value_order(a, b));
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

/// Total order over [`Value`]s used to canonicalize map-key ordering. Compares
/// by variant rank first, then contents (floats via `total_cmp`).
fn value_order(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::UInt(_) | Value::Int(_) | Value::Float(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    /// Numeric cross-variant comparison; integers up to 2^53 (all ids in this
    /// workspace) compare exactly.
    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::UInt(n) => *n as f64,
            Value::Int(n) => *n as f64,
            Value::Float(f) => *f,
            _ => unreachable!("only called on numeric variants"),
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (
            Value::UInt(_) | Value::Int(_) | Value::Float(_),
            Value::UInt(_) | Value::Int(_) | Value::Float(_),
        ) => as_f64(a).total_cmp(&as_f64(b)),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => x
            .iter()
            .zip(y.iter())
            .map(|(i, j)| value_order(i, j))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        (Value::Object(x), Value::Object(y)) => x
            .iter()
            .zip(y.iter())
            .map(|((ka, va), (kb, vb))| ka.cmp(kb).then_with(|| value_order(va, vb)))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        _ => rank(a).cmp(&rank(b)),
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        map_pairs(value)?.collect::<Result<_, _>>()
    }
}

/// Shared helper: iterates the `[key, value]` pairs of a serialized map.
fn map_pairs<'a, K: Deserialize, V: Deserialize>(
    value: &'a Value,
) -> Result<impl Iterator<Item = Result<(K, V), Error>> + 'a, Error> {
    match value {
        Value::Array(items) => Ok(items.iter().map(|item| match item {
            Value::Array(pair) if pair.len() == 2 => {
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            }
            other => Err(Error(format!(
                "expected [key, value] pair, found {other:?}"
            ))),
        })),
        other => Err(Error(format!("expected array of pairs, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serializes_in_key_order() {
        let mut map = HashMap::new();
        for i in (0..100u32).rev() {
            map.insert(i, i * 2);
        }
        let Value::Array(pairs) = map.to_value() else {
            panic!("expected array of pairs");
        };
        let keys: Vec<u64> = pairs
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) => match kv[0] {
                    Value::UInt(k) => k,
                    ref other => panic!("unexpected key {other:?}"),
                },
                other => panic!("unexpected pair {other:?}"),
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "pairs must come out key-ordered");
    }
}
