//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`] and [`Bencher::iter`] — while replacing criterion's
//! statistical machinery with a simple mean-of-samples wall-clock measurement
//! printed to stdout.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away
/// (`criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver (`criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    ///
    /// The group starts from the driver's default settings; setting
    /// warm-up/measurement/sample-size on the group affects that group only,
    /// as in the real criterion.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            settings: Settings {
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
                sample_size: self.sample_size,
            },
            _criterion: std::marker::PhantomData,
            name,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let settings = Settings {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        run_one(name, settings, &mut f);
    }
}

/// Settings snapshot passed down to a single measurement.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

/// A group of related benchmarks sharing settings
/// (`criterion::BenchmarkGroup`).
///
/// Holds its own settings snapshot so per-group overrides never leak into
/// groups opened later from the same [`Criterion`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    settings: Settings,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.warm_up_time = duration;
        self
    }

    /// Sets the measurement duration for benchmarks in this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.settings, &mut f);
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Closes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter
/// (`criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms benches pass to `bench_function`.
pub trait IntoBenchmarkId {
    /// Renders the id as a display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Measures a routine's execution time (`criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    ran: bool,
}

impl Bencher {
    /// Times the routine, warming up first and then averaging over the
    /// configured sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, estimating the cost
        // of one iteration as we go.
        let warm_up_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_up_start.elapsed() < self.settings.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / iters_done as f64;

        // Measurement: spread the measurement budget over sample_size samples.
        let budget = self.settings.measurement_time.as_secs_f64();
        let iters_per_sample = ((budget / self.settings.sample_size as f64 / per_iter.max(1e-9))
            as u64)
            .clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut total_iters: u64 = 0;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            total_iters += iters_per_sample;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / total_iters as f64;
        self.ran = true;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, f: &mut F) {
    let mut bencher = Bencher {
        settings,
        mean_ns: 0.0,
        ran: false,
    };
    f(&mut bencher);
    if bencher.ran {
        println!("{label:<60} {:>12.1} ns/iter", bencher.mean_ns);
    } else {
        println!("{label:<60}  (no measurement)");
    }
}

/// Declares a group of benchmark functions (`criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point
/// (`criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
