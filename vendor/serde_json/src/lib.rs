//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it back.
//! Covers the workspace's call sites: [`to_writer`], [`from_reader`],
//! [`to_string`], [`from_str`] and the [`Error`] type.
//!
//! Numbers are written with Rust's shortest-roundtrip float formatting, so an
//! `f64` parses back to exactly the same bits — corpus save/load is lossless.

#![deny(unsafe_code)]

use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// Error produced while reading, writing or interpreting JSON.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not well-formed JSON.
    Syntax(String),
    /// The JSON is well-formed but does not match the target type.
    Data(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Syntax(msg) => write!(f, "JSON syntax error: {msg}"),
            Error::Data(msg) => write!(f, "JSON data error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Data(e.0)
    }
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent),
/// mirroring the real serde_json's `to_string_pretty`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        // Scalars, empty arrays and empty objects render as in compact mode.
        other => write_value(out, other),
    }
}

/// Deserializes a `T` from the JSON in `reader`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Parser::new(text).parse_document()?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        // Keep the float/integer distinction in the output so 2.0 does not
        // come back as the integer 2 with different deserialization behavior.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser producing a [`Value`] tree.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::Syntax(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{keyword}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII tag names; reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode the next UTF-8 scalar from the raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by guard above");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = Parser::new(text).parse_document().unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn roundtrips_floats_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_value(&mut out, &Value::Float(f));
            let back: Value = Parser::new(&out).parse_document().unwrap();
            assert_eq!(back, Value::Float(f), "text was {out}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let text = r#"{"a": [1, 2, {"b": "x\ny"}], "c": null}"#;
        let v: Value = Parser::new(text).parse_document().unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Value::String("x\ny".into())));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["{ not json", "[1,", "\"unterminated", "01x", ""] {
            assert!(
                Parser::new(text).parse_document().is_err(),
                "accepted {text:?}"
            );
        }
    }

    #[test]
    fn float_marker_preserved() {
        let mut out = String::new();
        write_value(&mut out, &Value::Float(2.0));
        assert_eq!(out, "2.0");
    }

    #[test]
    fn pretty_printing_round_trips_and_indents() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("sweep".to_string())),
            (
                "points".to_string(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".to_string(), Value::Array(Vec::new())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("{\n  \"name\": \"sweep\""));
        assert!(pretty.contains("\"points\": [\n    1,\n    2\n  ]"));
        assert!(pretty.contains("\"empty\": []"));
        // Pretty output parses back to the same tree as compact output.
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, value);
    }
}
