//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes — non-generic structs
//! with named fields (honouring `#[serde(skip)]`), tuple structs and unit
//! structs — and parses the token stream by hand so no external parser crates
//! (syn/quote) are needed. Anything else fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct with named fields.
struct NamedField {
    name: String,
    skip: bool,
}

/// Parsed shape of the type the derive is attached to.
enum Shape {
    Named {
        name: String,
        fields: Vec<NamedField>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Named { fields, .. } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::Tuple { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit { .. } => "::serde::Value::Null".to_string(),
    };
    let name = shape.name();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::__field(value, \"{0}\")?,\n",
                        f.name
                    ));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::Error::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) => \
                         ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected array for tuple struct {name}, found {{other:?}}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Unit { name } => format!("::std::result::Result::Ok({name})"),
    };
    let name = shape.name();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

impl Shape {
    fn name(&self) -> &str {
        match self {
            Shape::Named { name, .. } | Shape::Tuple { name, .. } | Shape::Unit { name } => name,
        }
    }
}

/// Parses the derive input down to the [`Shape`] the generators need.
fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // `pub(crate)` and friends carry a parenthesised restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => panic!(
            "vendored serde_derive only supports structs, found {other:?} \
             (enums/unions need the real serde)"
        ),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic struct `{name}`");
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
            name,
            arity: count_tuple_fields(g.stream()),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit { name },
        other => panic!("unsupported struct body for `{name}`: {other:?}"),
    }
}

/// Parses `name: Type, ...` fields, noting `#[serde(skip)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();

    'fields: loop {
        let mut skip = false;
        // Leading attributes of this field.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(attr)) = tokens.next() {
                        if attr_is_serde_skip(attr.stream()) {
                            skip = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }

        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break 'fields,
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: everything up to a top-level comma. Generic argument
        // lists can contain commas, so track `<`/`>` depth.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(NamedField { name, skip });
    }

    fields
}

/// Counts the fields of a tuple struct body (top-level commas, tolerating a
/// trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut commas = 0;
    let mut angle_depth = 0i32;
    let mut saw_any = false;
    let mut trailing_comma = false;
    for token in stream {
        saw_any = true;
        trailing_comma = false;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    assert!(saw_any, "empty tuple struct is not supported");
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

/// Recognises `serde(skip)` inside an attribute's bracket group.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}
