//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`distributions::WeightedIndex`] with the [`prelude::Distribution`] trait.
//!
//! The generator is deterministic per seed (SplitMix64 core), which is all the
//! workspace relies on; it makes no cryptographic claims and does not match the
//! streams of the real `StdRng`.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness, mirroring the subset of `rand::Rng` the workspace
/// uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in the given range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        next_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Draws a uniform `f64` in `[0, 1)` from 53 random bits.
fn next_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A random generator constructible from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (next_f64(rng) as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64: passes basic equidistribution checks and is plenty for the
    /// statistical assertions in this workspace's tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed once so that small consecutive seeds still give
            // visibly unrelated streams.
            let mut rng = StdRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            let _ = rng.next_u64();
            StdRng {
                state: rng.next_u64(),
            }
        }
    }
}

/// Distribution types, mirroring `rand::distributions`.
pub mod distributions {
    use super::Rng;
    use std::borrow::Borrow;

    /// A value that can be sampled from a distribution
    /// (`rand::distributions::Distribution`).
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error returned by [`WeightedIndex::new`] on invalid weights.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a list of weights
    /// (`rand::distributions::WeightedIndex`).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<X>,
    }

    impl WeightedIndex<f64> {
        /// Builds the sampler. Fails if the list is empty, any weight is
        /// negative or non-finite, or all weights are zero.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let total = *self.cumulative.last().expect("non-empty by construction");
            let u = super::next_f64(rng) * total;
            // `<= u` (not `< u`) so a draw landing exactly on a cumulative
            // boundary resolves to the *next* bucket: zero-weight entries have
            // zero-width intervals and must never be sampled (matching the
            // real rand's WeightedIndex guarantee).
            let i = self.cumulative.partition_point(|&c| c <= u);
            i.min(self.cumulative.len() - 1)
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let w = WeightedIndex::new(vec![1.0, 0.0, 9.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts = {counts:?}");
    }

    #[test]
    fn weighted_index_never_samples_zero_weight_on_boundary() {
        /// Rng whose every draw is the same fixed value.
        struct FixedRng(u64);
        impl Rng for FixedRng {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        let w = WeightedIndex::new(vec![1.0, 0.0, 1.0]).unwrap();
        // next_f64 == 0.5 exactly, so u == 1.0: the shared cumulative boundary
        // of bucket 0, the zero-width bucket 1, and bucket 2. The draw must
        // resolve past the zero-weight bucket.
        let mut rng = FixedRng(1u64 << 63);
        assert_eq!(w.sample(&mut rng), 2);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new(vec![0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(vec![-1.0, 2.0]).is_err());
        assert!(WeightedIndex::new(vec![f64::NAN]).is_err());
    }
}
