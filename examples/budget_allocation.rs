//! Budget allocation for a crowdsourcing campaign.
//!
//! Scenario: you operate a tagging system and can pay for a limited number of
//! post tasks on Mechanical-Turk-style workers. This example shows how to
//!
//! * decide which strategy to use by sweeping the budget,
//! * inspect *where* a strategy spends the budget (which resources),
//! * estimate how large a budget is needed to eliminate under-tagging.
//!
//! Run with: `cargo run --release -p tagging-bench --example budget_allocation`

use delicious_sim::generator::{generate, GeneratorConfig};
use tagging_sim::engine::{run_strategy, RunConfig};
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::sweep::{budget_sweep, SweepAlgorithms};
use tagging_strategies::{top_allocations, StrategyKind};

fn main() {
    let corpus = generate(&GeneratorConfig::small(400, 7));
    let scenario = Scenario::from_corpus(&corpus, &ScenarioParams::default());
    println!(
        "{} resources, initial quality {:.4}, {} initially under-tagged",
        scenario.len(),
        scenario.initial_quality(),
        scenario.initially_under_tagged()
    );

    // --- 1. Sweep the budget with the practical strategies -------------------
    let budgets = [0, 200, 400, 800, 1_600];
    let algorithms = SweepAlgorithms {
        strategies: vec![
            StrategyKind::Fp,
            StrategyKind::FpMu,
            StrategyKind::Rr,
            StrategyKind::Fc,
        ],
        include_dp: false,
        dp_table_cap: 0,
    };
    let points = budget_sweep(&scenario, &budgets, &algorithms, &RunConfig::default());
    println!("\nbudget  FP      FP-MU   RR      FC      (mean tagging quality)");
    for p in &points {
        println!(
            "{:<7} {:.4}  {:.4}  {:.4}  {:.4}",
            p.x,
            p.metrics("FP").unwrap().mean_quality,
            p.metrics("FP-MU").unwrap().mean_quality,
            p.metrics("RR").unwrap().mean_quality,
            p.metrics("FC").unwrap().mean_quality,
        );
    }

    // --- 2. Where does FP spend a 800-task budget? ---------------------------
    let fp = run_strategy(&scenario, StrategyKind::Fp, &RunConfig::with_budget(800));
    println!("\ntop 10 resources by FP allocation (budget 800):");
    for (resource, tasks) in top_allocations(&fp.allocation, 10) {
        let name = &corpus.corpus.resource(resource).unwrap().name;
        println!(
            "  {name}: {tasks} tasks (had {} initial posts)",
            scenario.initial[resource.index()].len()
        );
    }

    // --- 3. How big a budget removes under-tagging entirely? -----------------
    let mut budget = 200;
    loop {
        let metrics = run_strategy(&scenario, StrategyKind::Fp, &RunConfig::with_budget(budget));
        println!(
            "budget {budget:>5}: {:.1}% of resources still under-tagged",
            100.0 * metrics.under_tagged_fraction
        );
        if metrics.under_tagged_fraction == 0.0 || budget >= 12_800 {
            break;
        }
        budget *= 2;
    }
}
