//! Dataset exploration: the statistics that motivate incentive-based tagging.
//!
//! Generates a synthetic del.icio.us-style corpus and reports the phenomena the
//! paper's introduction is built on: the skewed posts-per-resource distribution,
//! rfd convergence of a popular resource, stable/unstable points, wasted posts
//! and under-tagging, plus a JSON export/import round trip.
//!
//! Run with: `cargo run --release -p tagging-bench --example dataset_exploration`

use delicious_sim::generator::{generate, GeneratorConfig};
use delicious_sim::io::{load_corpus, save_corpus};
use delicious_sim::stats::{CorpusStatistics, PostCountHistogram, StatisticsParams};
use tagging_core::rfd::FrequencyTracker;
use tagging_core::stability::{StabilityAnalyzer, StabilityParams};

fn main() {
    let corpus = generate(&GeneratorConfig::small(500, 2024));
    println!(
        "corpus: {} resources, {} posts, {} distinct tags",
        corpus.len(),
        corpus.total_posts(),
        corpus.corpus.tags.len()
    );

    // --- Posts-per-resource distribution (Figure 1(b) flavour) ---------------
    let histogram = PostCountHistogram::from_corpus(&corpus, 10);
    println!("\nposts-per-resource histogram (log10 bins):");
    for (lo, hi, count) in &histogram.bins {
        println!("  {lo:>5}-{hi:<6} {count}");
    }

    // --- rfd convergence of the most popular resource (Figure 1(a) flavour) --
    let popular = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .unwrap();
    let posts = corpus.full_sequence(popular);
    let mut tracker = FrequencyTracker::new();
    println!(
        "\nrfd convergence of {} ({} posts): top tag's relative frequency",
        corpus.corpus.resource(popular).unwrap().name,
        posts.len()
    );
    for (idx, post) in posts.iter().enumerate() {
        tracker.push(post);
        let k = idx + 1;
        if k % (posts.len() / 8).max(1) == 0 {
            let rfd = tracker.rfd();
            if let Some((tag, weight)) = rfd.top_tags(1).first() {
                println!(
                    "  after {k:>4} posts: {} = {:.3}",
                    corpus.corpus.tags.name(*tag).unwrap_or("?"),
                    weight
                );
            }
        }
    }

    // --- Stable / unstable points ---------------------------------------------
    let analyzer = StabilityAnalyzer::new(StabilityParams::new(15, 0.999));
    let profile = analyzer.analyze(posts);
    println!(
        "\nstable point of that resource: {:?}; unstable point (adjacent similarity < 0.95): {}",
        profile.stable_point,
        analyzer.unstable_point(posts, 0.95)
    );

    // --- The introduction's headline statistics -------------------------------
    let stats = CorpusStatistics::compute(
        &corpus,
        &StatisticsParams {
            stability: StabilityParams::new(15, 0.999),
            under_tagged_threshold: 10,
        },
    );
    println!(
        "\nover-tagged initially: {} ({:.1}%), wasted posts: {} ({:.1}%), \
         under-tagged: {} ({:.1}%), salvage needs {} posts ({:.1}% of wasted)",
        stats.over_tagged_initial,
        100.0 * stats.over_tagged_fraction(),
        stats.wasted_posts,
        100.0 * stats.wasted_fraction,
        stats.under_tagged_initial,
        100.0 * stats.under_tagged_fraction(),
        stats.salvage_posts_needed,
        100.0 * stats.salvage_ratio()
    );

    // --- JSON round trip -------------------------------------------------------
    let path = std::env::temp_dir().join("delicious-sim-example-corpus.json");
    save_corpus(&corpus, &path).expect("save corpus");
    let reloaded = load_corpus(&path).expect("load corpus");
    println!(
        "\nexported the corpus to {} ({} bytes) and reloaded {} resources",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        reloaded.len()
    );
    std::fs::remove_file(&path).ok();
}
