//! Similarity case study: how incentive allocation improves a downstream
//! application (resource–resource similarity search), mirroring §V-C of the
//! paper.
//!
//! * Pick an under-tagged subject resource and show its top-5 most similar
//!   resources before and after spending a budget with FP vs FC.
//! * Measure the overall ranking accuracy (Kendall's τ against the category
//!   taxonomy) and its correlation with tagging quality.
//!
//! Run with: `cargo run --release -p tagging-bench --example similarity_case_study`

use delicious_sim::generator::{generate, GeneratorConfig};
use tagging_analysis::accuracy::{ranking_accuracy, rfds_after_allocation};
use tagging_analysis::correlation::pearson;
use tagging_analysis::topk::top_k_similar;
use tagging_core::rfd::rfd_of_prefix;
use tagging_sim::engine::{run_strategy, RunConfig};
use tagging_sim::metrics::delivered_posts;
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_strategies::framework::{run_allocation, ReplaySource};
use tagging_strategies::StrategyKind;

fn main() {
    let corpus = generate(&GeneratorConfig::small(150, 13));
    let scenario = Scenario::from_corpus(&corpus, &ScenarioParams::default());

    // --- 1. Top-5 similar resources for an under-tagged subject --------------
    let subject = (0..scenario.len())
        .min_by_key(|&i| scenario.initial[i].len())
        .map(|i| tagging_core::model::ResourceId(i as u32))
        .unwrap();
    println!(
        "subject: {} ({}), {} initial posts",
        corpus.corpus.resource(subject).unwrap().name,
        corpus.corpus.resource(subject).unwrap().description,
        scenario.initial[subject.index()].len()
    );

    let initial_rfds: Vec<_> = scenario
        .initial
        .iter()
        .map(|p| rfd_of_prefix(p, p.len()))
        .collect();
    let describe = |rfds: &[tagging_core::rfd::Rfd], label: &str| {
        println!("\ntop-5 similar resources ({label}):");
        for entry in top_k_similar(subject, rfds, 5) {
            println!(
                "  {:.3}  {} [{}]",
                entry.similarity,
                corpus.corpus.resource(entry.resource).unwrap().name,
                corpus.corpus.resource(entry.resource).unwrap().description
            );
        }
    };
    describe(&initial_rfds, "initial posts only");

    let budget = 300;
    for kind in [StrategyKind::Fc, StrategyKind::Fp] {
        let mut strategy = kind.build(5, 99);
        let mut source = ReplaySource::new(scenario.future.clone());
        let outcome = run_allocation(
            strategy.as_mut(),
            &mut source,
            &scenario.initial,
            &scenario.popularity,
            budget,
        );
        let delivered = delivered_posts(&scenario, &outcome);
        let rfds = rfds_after_allocation(&scenario.initial, &delivered);
        describe(
            &rfds,
            &format!("after {budget} tasks allocated by {}", kind.name()),
        );
    }

    // --- 2. Ranking accuracy vs tagging quality ------------------------------
    println!("\noverall similarity-ranking accuracy (Kendall's τ vs taxonomy):");
    let mut qualities = Vec::new();
    let mut accuracies = Vec::new();
    for &budget in &[0usize, 150, 300, 600] {
        let metrics = run_strategy(&scenario, StrategyKind::Fp, &RunConfig::with_budget(budget));
        let mut strategy = StrategyKind::Fp.build(5, 1);
        let mut source = ReplaySource::new(scenario.future.clone());
        let outcome = run_allocation(
            strategy.as_mut(),
            &mut source,
            &scenario.initial,
            &scenario.popularity,
            budget,
        );
        let delivered = delivered_posts(&scenario, &outcome);
        let rfds = rfds_after_allocation(&scenario.initial, &delivered);
        let accuracy = ranking_accuracy(&rfds, &corpus.taxonomy);
        println!(
            "  budget {budget:>4}: quality {:.4}, accuracy {:.4}",
            metrics.mean_quality, accuracy
        );
        qualities.push(metrics.mean_quality);
        accuracies.push(accuracy);
    }
    println!(
        "correlation(quality, accuracy) = {:.3}",
        pearson(&qualities, &accuracies)
    );
}
