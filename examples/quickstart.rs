//! Quickstart: the paper's pipeline end to end on a small synthetic corpus.
//!
//! 1. Generate a del.icio.us-style corpus (resources, posts, popularity skew).
//! 2. Measure tagging stability and quality of the initial state.
//! 3. Spend an incentive budget with the recommended FP strategy.
//! 4. Compare the result against the Free-Choice baseline and the DP optimum.
//!
//! Run with: `cargo run --release -p tagging-bench --example quickstart`

use delicious_sim::generator::{generate, GeneratorConfig};
use tagging_sim::engine::{run_dp, run_strategy, RunConfig};
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_strategies::StrategyKind;

fn main() {
    // 1. A small, deterministic synthetic corpus (300 resources).
    let corpus = generate(&GeneratorConfig::small(300, 42));
    println!(
        "generated {} resources, {} posts total ({} in the initial state)",
        corpus.len(),
        corpus.total_posts(),
        corpus.total_initial_posts()
    );

    // 2. Freeze it into an experiment scenario and look at the starting state.
    let scenario = Scenario::from_corpus(&corpus, &ScenarioParams::default());
    println!(
        "initial tagging quality: {:.4}; under-tagged resources: {} ({:.1}%)",
        scenario.initial_quality(),
        scenario.initially_under_tagged(),
        100.0 * scenario.initially_under_tagged() as f64 / scenario.len() as f64
    );

    // 3. Spend a budget of 600 post tasks with the paper's recommended strategy.
    let config = RunConfig {
        budget: 600,
        omega: 5,
        seed: 1,
    };
    let fp = run_strategy(&scenario, StrategyKind::Fp, &config);
    println!(
        "FP    : quality {:.4}, under-tagged {:.1}%, wasted posts {}",
        fp.mean_quality,
        100.0 * fp.under_tagged_fraction,
        fp.wasted_posts
    );

    // 4. Compare with the Free-Choice baseline and the offline DP optimum.
    let fc = run_strategy(&scenario, StrategyKind::Fc, &config);
    println!(
        "FC    : quality {:.4}, under-tagged {:.1}%, wasted posts {}",
        fc.mean_quality,
        100.0 * fc.under_tagged_fraction,
        fc.wasted_posts
    );
    let dp = run_dp(&scenario, &config);
    println!(
        "DP    : quality {:.4} (theoretical optimum, runtime {:.2}s)",
        dp.mean_quality, dp.runtime_seconds
    );

    println!(
        "\nFP recovers {:.0}% of the optimal quality gain; FC recovers {:.0}%.",
        100.0 * (fp.mean_quality - scenario.initial_quality())
            / (dp.mean_quality - scenario.initial_quality()).max(1e-9),
        100.0 * (fc.mean_quality - scenario.initial_quality())
            / (dp.mean_quality - scenario.initial_quality()).max(1e-9)
    );
}
