//! End-to-end determinism goldens for the `tagging-runtime` subsystem: the
//! three parallelised hot paths — corpus generation, the Figure 6 budget
//! sweep, and the DP optimum — must produce identical results at 1, 2 and 8
//! runtime threads, and identical to the explicitly sequential path.
//!
//! The CI thread-count matrix additionally runs this suite under
//! `TAGGING_THREADS=1,2,8`, which exercises the *implicit* (process-default)
//! runtime used by `generate`/`budget_sweep`/`QualityTable::from_posts`.

use delicious_sim::generator::{generate, generate_with, GeneratorConfig};
use tagging_core::stability::StabilityParams;
use tagging_runtime::Runtime;
use tagging_sim::engine::RunConfig;
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::sweep::{budget_sweep_with, sweep_fingerprint, SweepAlgorithms};
use tagging_strategies::dp::{optimal_allocation, QualityTable};
use tagging_strategies::StrategyKind;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn scenario(n: usize, seed: u64) -> Scenario {
    let corpus = generate(&GeneratorConfig::small(n, seed));
    Scenario::from_corpus(
        &corpus,
        &ScenarioParams {
            stability: StabilityParams::new(10, 0.995),
            under_tagged_threshold: 10,
        },
    )
}

#[test]
fn generate_is_identical_at_1_2_and_8_threads() {
    let config = GeneratorConfig::small(60, 20130408);
    let reference = generate_with(&config, &Runtime::sequential());
    for threads in THREAD_COUNTS {
        let corpus = generate_with(&config, &Runtime::new(threads));
        assert_eq!(corpus.popularity, reference.popularity, "threads {threads}");
        assert_eq!(corpus.initial_posts, reference.initial_posts);
        assert_eq!(corpus.corpus.tags.len(), reference.corpus.tags.len());
        for id in reference.resource_ids() {
            assert_eq!(
                corpus.full_sequence(id),
                reference.full_sequence(id),
                "threads {threads}, resource {id:?}"
            );
            assert_eq!(
                corpus.true_distribution(id),
                reference.true_distribution(id)
            );
            assert_eq!(
                corpus.taxonomy.assignment(id),
                reference.taxonomy.assignment(id)
            );
        }
    }
    // The implicit-runtime entry point agrees with the explicit one.
    let implicit = generate(&config);
    assert_eq!(implicit.initial_posts, reference.initial_posts);
    for id in reference.resource_ids() {
        assert_eq!(implicit.full_sequence(id), reference.full_sequence(id));
    }
}

#[test]
fn budget_sweep_is_identical_at_1_2_and_8_threads() {
    let s = scenario(30, 7);
    let algorithms = SweepAlgorithms::default()
        .with_strategies(StrategyKind::ALL)
        .with_dp_table_cap(60);
    let config = RunConfig {
        budget: 0,
        omega: 5,
        seed: 1,
    };
    let budgets = [0, 40, 80, 120, 160];
    let reference = sweep_fingerprint(&budget_sweep_with(
        &Runtime::sequential(),
        &s,
        &budgets,
        &algorithms,
        &config,
    ));
    for threads in THREAD_COUNTS {
        let points = budget_sweep_with(&Runtime::new(threads), &s, &budgets, &algorithms, &config);
        assert_eq!(
            sweep_fingerprint(&points),
            reference,
            "threads {threads}: sweep metrics diverged"
        );
    }
}

#[test]
fn optimal_allocation_is_identical_at_1_2_and_8_threads() {
    let s = scenario(20, 13);
    let budget = 50;
    let reference_table = QualityTable::par_from_posts(
        &Runtime::sequential(),
        &s.initial,
        &s.future,
        &s.references,
        budget,
    );
    let reference = optimal_allocation(&reference_table, budget);
    for threads in THREAD_COUNTS {
        let table = QualityTable::par_from_posts(
            &Runtime::new(threads),
            &s.initial,
            &s.future,
            &s.references,
            budget,
        );
        let result = optimal_allocation(&table, budget);
        assert_eq!(result.allocation, reference.allocation, "threads {threads}");
        assert_eq!(
            result.total_quality.to_bits(),
            reference.total_quality.to_bits(),
            "threads {threads}: DP value diverged bitwise"
        );
    }
}
