//! End-to-end determinism goldens for the `tagging-runtime` subsystem: the
//! parallelised hot paths — corpus generation, the Figure 6 budget sweep,
//! the DP optimum (quality table *and* the chunked recurrence), and the
//! tiled pairwise/Kendall ranking kernels — must produce identical results
//! at 1, 2 and 8 runtime threads, and identical to the explicitly sequential
//! path.
//!
//! The CI thread-count matrix additionally runs this suite under
//! `TAGGING_THREADS=1,2,8`, which exercises the *implicit* (process-default)
//! runtime used by `generate`/`budget_sweep`/`QualityTable::from_posts`.

use delicious_sim::generator::{generate, generate_with, GeneratorConfig};
use tagging_analysis::accuracy::{
    ground_truth_similarities_with, pairwise_similarities_with, ranking_accuracy_with,
};
use tagging_analysis::correlation::{
    kendall_tau_a_naive, kendall_tau_a_with, kendall_tau_naive, kendall_tau_with,
};
use tagging_core::rfd::Rfd;
use tagging_core::stability::StabilityParams;
use tagging_runtime::Runtime;
use tagging_sim::engine::RunConfig;
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::sweep::{budget_sweep_with, sweep_fingerprint, SweepAlgorithms};
use tagging_strategies::dp::{optimal_allocation, par_optimal_allocation, QualityTable};
use tagging_strategies::StrategyKind;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn scenario(n: usize, seed: u64) -> Scenario {
    let corpus = generate(&GeneratorConfig::small(n, seed));
    Scenario::from_corpus(
        &corpus,
        &ScenarioParams {
            stability: StabilityParams::new(10, 0.995),
            under_tagged_threshold: 10,
        },
    )
}

#[test]
fn generate_is_identical_at_1_2_and_8_threads() {
    let config = GeneratorConfig::small(60, 20130408);
    let reference = generate_with(&config, &Runtime::sequential());
    for threads in THREAD_COUNTS {
        let corpus = generate_with(&config, &Runtime::new(threads));
        assert_eq!(corpus.popularity, reference.popularity, "threads {threads}");
        assert_eq!(corpus.initial_posts, reference.initial_posts);
        assert_eq!(corpus.corpus.tags.len(), reference.corpus.tags.len());
        for id in reference.resource_ids() {
            assert_eq!(
                corpus.full_sequence(id),
                reference.full_sequence(id),
                "threads {threads}, resource {id:?}"
            );
            assert_eq!(
                corpus.true_distribution(id),
                reference.true_distribution(id)
            );
            assert_eq!(
                corpus.taxonomy.assignment(id),
                reference.taxonomy.assignment(id)
            );
        }
    }
    // The implicit-runtime entry point agrees with the explicit one.
    let implicit = generate(&config);
    assert_eq!(implicit.initial_posts, reference.initial_posts);
    for id in reference.resource_ids() {
        assert_eq!(implicit.full_sequence(id), reference.full_sequence(id));
    }
}

#[test]
fn budget_sweep_is_identical_at_1_2_and_8_threads() {
    let s = scenario(30, 7);
    let algorithms = SweepAlgorithms::default()
        .with_strategies(StrategyKind::ALL)
        .with_dp_table_cap(60);
    let config = RunConfig {
        budget: 0,
        omega: 5,
        seed: 1,
    };
    let budgets = [0, 40, 80, 120, 160];
    let reference = sweep_fingerprint(&budget_sweep_with(
        &Runtime::sequential(),
        &s,
        &budgets,
        &algorithms,
        &config,
    ));
    for threads in THREAD_COUNTS {
        let points = budget_sweep_with(&Runtime::new(threads), &s, &budgets, &algorithms, &config);
        assert_eq!(
            sweep_fingerprint(&points),
            reference,
            "threads {threads}: sweep metrics diverged"
        );
    }
}

#[test]
fn par_dp_recurrence_is_identical_at_1_2_and_8_threads() {
    // A budget wide enough to clear the chunked layer fill's sequential
    // cutoff (PAR_DP_MIN_CELLS), so the parallel recurrence itself is
    // exercised (not just the parallel table build).
    let s = scenario(10, 17);
    let budget = tagging_strategies::dp::PAR_DP_MIN_CELLS + 88;
    let table = QualityTable::par_from_posts(
        &Runtime::sequential(),
        &s.initial,
        &s.future,
        &s.references,
        budget,
    );
    let reference = par_optimal_allocation(&Runtime::sequential(), &table, budget);
    assert_eq!(
        reference.allocation.iter().sum::<u32>() as usize,
        budget,
        "DP must spend the whole budget"
    );
    for threads in THREAD_COUNTS {
        let result = par_optimal_allocation(&Runtime::new(threads), &table, budget);
        assert_eq!(result.allocation, reference.allocation, "threads {threads}");
        assert_eq!(
            result.total_quality.to_bits(),
            reference.total_quality.to_bits(),
            "threads {threads}: DP value diverged bitwise"
        );
    }
}

#[test]
fn pairwise_ranking_kernels_are_identical_at_1_2_and_8_threads() {
    let corpus = generate(&GeneratorConfig::small(50, 99));
    let rfds: Vec<Rfd> = corpus
        .resource_ids()
        .map(|id| corpus.true_distribution(id).clone())
        .collect();
    let sequential = Runtime::sequential();
    let ref_pairs = pairwise_similarities_with(&sequential, &rfds);
    let ref_truth = ground_truth_similarities_with(&sequential, &corpus.taxonomy, rfds.len());
    let ref_accuracy = ranking_accuracy_with(&sequential, &rfds, &corpus.taxonomy);
    assert_eq!(ref_pairs.len(), rfds.len() * (rfds.len() - 1) / 2);
    for threads in THREAD_COUNTS {
        let rt = Runtime::new(threads);
        let pairs = pairwise_similarities_with(&rt, &rfds);
        let truth = ground_truth_similarities_with(&rt, &corpus.taxonomy, rfds.len());
        assert_eq!(pairs.len(), ref_pairs.len(), "threads {threads}");
        for (k, ((a, ra), (b, rb))) in pairs
            .iter()
            .zip(&ref_pairs)
            .zip(truth.iter().zip(&ref_truth))
            .enumerate()
        {
            assert_eq!(a.to_bits(), ra.to_bits(), "threads {threads}, pair {k}");
            assert_eq!(
                b.to_bits(),
                rb.to_bits(),
                "threads {threads}, truth pair {k}"
            );
        }
        assert_eq!(
            ranking_accuracy_with(&rt, &rfds, &corpus.taxonomy).to_bits(),
            ref_accuracy.to_bits(),
            "threads {threads}: ranking accuracy diverged bitwise"
        );
    }
}

#[test]
fn tiled_kendall_kernels_are_identical_at_1_2_and_8_threads() {
    // Deterministic pseudo-random data with plenty of ties — the hard case
    // for rank correlation; the naive O(m²) oracles are the reference.
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut state = 20130408u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 13) as f64
    };
    for _ in 0..500 {
        x.push(next());
        y.push(next());
    }
    let ref_tau_a = kendall_tau_a_naive(&x, &y);
    let ref_tau_b = kendall_tau_naive(&x, &y);
    for threads in THREAD_COUNTS {
        let rt = Runtime::new(threads);
        assert_eq!(
            kendall_tau_a_with(&rt, &x, &y).to_bits(),
            ref_tau_a.to_bits(),
            "threads {threads}: τ-a diverged bitwise from the naive oracle"
        );
        assert_eq!(
            kendall_tau_with(&rt, &x, &y).to_bits(),
            ref_tau_b.to_bits(),
            "threads {threads}: τ-b diverged bitwise from the naive oracle"
        );
    }
}

#[test]
fn optimal_allocation_is_identical_at_1_2_and_8_threads() {
    let s = scenario(20, 13);
    let budget = 50;
    let reference_table = QualityTable::par_from_posts(
        &Runtime::sequential(),
        &s.initial,
        &s.future,
        &s.references,
        budget,
    );
    let reference = optimal_allocation(&reference_table, budget);
    for threads in THREAD_COUNTS {
        let table = QualityTable::par_from_posts(
            &Runtime::new(threads),
            &s.initial,
            &s.future,
            &s.references,
            budget,
        );
        let result = optimal_allocation(&table, budget);
        assert_eq!(result.allocation, reference.allocation, "threads {threads}");
        assert_eq!(
            result.total_quality.to_bits(),
            reference.total_quality.to_bits(),
            "threads {threads}: DP value diverged bitwise"
        );
    }
}
