//! Shape assertions for the reproduced figures: for every panel of Figures 1,
//! 3, 5, 6 and 7 the tests check the *qualitative* relationship the paper
//! reports (who wins, what rises, where the crossovers are) on the smoke-scale
//! corpus.

use tagging_bench::casestudy::{fig7_accuracy_sweep, quality_accuracy_correlation};
use tagging_bench::experiments::{
    fig1a_tag_frequencies, fig1b_posts_distribution, fig3_stability_series, fig5_quality_curves,
    fig6_budget_sweep, fig6e_resource_sweep, fig6f_omega_sweep, intro_statistics,
};
use tagging_bench::setup::{scenario_params, smoke_corpus, smoke_scenario};
use tagging_core::stability::StabilityParams;
use tagging_sim::scenario::Scenario;

#[test]
fn fig1a_relative_frequencies_converge() {
    let corpus = smoke_corpus();
    let series = fig1a_tag_frequencies(corpus, 5, 10);
    assert!(series.rows.len() >= 5);
    // Total variation between consecutive sampled rows shrinks from the first
    // half to the second half of the sequence.
    let deltas: Vec<f64> = series
        .rows
        .windows(2)
        .map(|w| {
            w[0].1
                .iter()
                .zip(&w[1].1)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        })
        .collect();
    let half = deltas.len() / 2;
    let early: f64 = deltas[..half].iter().sum::<f64>() / half.max(1) as f64;
    let late: f64 = deltas[half..].iter().sum::<f64>() / (deltas.len() - half).max(1) as f64;
    assert!(
        late < early,
        "rfd movement should shrink as posts accumulate: early {early} late {late}"
    );
}

#[test]
fn fig1b_distribution_is_skewed() {
    let hist = fig1b_posts_distribution(800, 11);
    assert!(hist.is_heavy_tailed());
    // The first bin (rarely-tagged resources) holds the majority.
    assert!(hist.bins[0].2 * 2 > hist.total());
}

#[test]
fn fig3_ma_score_rises_to_stability() {
    let corpus = smoke_corpus();
    let series = fig3_stability_series(corpus, StabilityParams::new(20, 0.99));
    let stable = series
        .stable_point
        .expect("popular resource must stabilise");
    // The MA score at the stable point exceeds the threshold, and the mean MA
    // score before it is lower than after it.
    let before: Vec<f64> = series
        .rows
        .iter()
        .filter(|(k, _, ma)| *k < stable && ma.is_some())
        .map(|(_, _, ma)| ma.unwrap())
        .collect();
    let after: Vec<f64> = series
        .rows
        .iter()
        .filter(|(k, _, ma)| *k >= stable && ma.is_some())
        .map(|(_, _, ma)| ma.unwrap())
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(mean(&after) > mean(&before));
}

#[test]
fn fig5_simple_resource_stabilises_before_complex_one() {
    // Figure 5's message is that a resource with more significant tags needs
    // more posts before its description settles. Compare convergence relative
    // to each curve's *own* final quality (an absolute threshold is noisy:
    // the two resources converge to different asymptotes), and back it with
    // the paper's own notion of stability (Definition 8 stable points).
    let corpus = smoke_corpus();
    let pair = fig5_quality_curves(corpus);
    let convergence_point = |curve: &[f64]| {
        let final_quality = *curve.last().expect("non-empty curve");
        // Self-normalised convergence must still reach a real quality level —
        // without an absolute floor a degenerate flat curve (e.g. a broken
        // similarity metric) would "converge" immediately and pass.
        assert!(
            final_quality > 0.9,
            "fig5 curve must converge to high quality, got {final_quality}"
        );
        curve
            .iter()
            .position(|&q| q >= 0.99 * final_quality)
            .unwrap_or(curve.len())
    };
    assert!(convergence_point(&pair.simple.1) <= convergence_point(&pair.complex.1));

    let analyzer = tagging_core::stability::StabilityAnalyzer::new(scenario_params().stability);
    let stable = |id: tagging_core::model::ResourceId| {
        analyzer
            .stable_point(corpus.full_sequence(id))
            .unwrap_or(usize::MAX)
    };
    assert!(stable(pair.simple.0) <= stable(pair.complex.0));
}

#[test]
fn fig6_panel_relationships_hold() {
    let scenario = smoke_scenario();
    let budgets = [0usize, 300, 800];
    let points = fig6_budget_sweep(scenario, &budgets, true, 400, 5);

    // (a) Quality: DP dominates everything; FP/FP-MU close to DP; FC the worst
    //     improver at the largest budget.
    let last = &points[2];
    let q = |name: &str| last.metrics(name).unwrap().mean_quality;
    for name in ["FP", "FP-MU", "RR", "MU", "FC"] {
        assert!(q("DP") >= q(name) - 1e-9, "DP must dominate {name}");
    }
    assert!(q("FP") > q("FC"));
    assert!(q("FP-MU") > q("FC"));

    // (b)/(c) Over-tagging and waste: FC and RR are the only strategies whose
    //     wasted-post counts grow substantially.
    let wasted = |name: &str| last.metrics(name).unwrap().wasted_posts;
    assert_eq!(wasted("FP"), 0);
    assert_eq!(wasted("FP-MU"), 0);
    assert!(wasted("FC") > 0);

    // (d) Under-tagging: FP's curve stays flat for small budgets and then drops
    //     sharply (the paper's water-filling effect); once the budget exceeds
    //     the salvage requirement FP is at least as good as FC.
    let under = |name: &str| last.metrics(name).unwrap().under_tagged_fraction;
    let initial_under = points[0].metrics("FP").unwrap().under_tagged_fraction;
    assert!(
        under("FP") < initial_under,
        "FP should eventually cut under-tagging"
    );
    assert!(under("FP") <= under("FC") + 1e-9);
    // And the under-tagged fraction never increases with budget for FP.
    let fp_under: Vec<f64> = points
        .iter()
        .map(|p| p.metrics("FP").unwrap().under_tagged_fraction)
        .collect();
    assert!(fp_under.windows(2).all(|w| w[1] <= w[0] + 1e-9));

    // (g) Runtime: DP is the slowest algorithm at the largest budget.
    let runtime = |name: &str| last.metrics(name).unwrap().runtime_seconds;
    for name in ["FP", "RR", "FC"] {
        assert!(
            runtime("DP") > runtime(name),
            "DP should be slower than {name}"
        );
    }
}

#[test]
fn fig6e_quality_decreases_with_more_resources() {
    let scenario = smoke_scenario();
    let points = fig6e_resource_sweep(scenario, &[60, 200], 200, false, 0);
    let q = |idx: usize| points[idx].metrics("FP").unwrap().mean_quality;
    assert!(
        q(1) <= q(0) + 0.02,
        "with a fixed budget, quality should not rise when resources are added"
    );
}

#[test]
fn fig6f_large_omega_reduces_fpmu_to_fp_and_hurts_mu() {
    let scenario = smoke_scenario();
    let points = fig6f_omega_sweep(scenario, &[2, 8, 16], 200);
    // At the largest ω, FP-MU equals FP exactly (warm-up never completes).
    let last = &points[2];
    let fp = last.metrics("FP").unwrap().mean_quality;
    let fpmu = last.metrics("FP-MU").unwrap().mean_quality;
    assert!((fp - fpmu).abs() < 1e-9, "FP-MU should equal FP at large ω");
    // MU's quality does not improve as ω grows (it ignores ever more resources).
    let mu: Vec<f64> = points
        .iter()
        .map(|p| p.metrics("MU").unwrap().mean_quality)
        .collect();
    assert!(
        mu[2] <= mu[0] + 1e-6,
        "MU quality should not rise with ω: {mu:?}"
    );
}

#[test]
fn fig7_accuracy_tracks_quality() {
    let corpus = smoke_corpus();
    let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(60);
    let points = fig7_accuracy_sweep(corpus, &scenario, &[0, 150, 400], 5, false, 0);
    let corr = quality_accuracy_correlation(&points);
    assert!(
        corr > 0.5,
        "ranking accuracy should correlate positively with tagging quality, got {corr}"
    );
    // FP's accuracy at the largest budget beats its accuracy at budget 0.
    let fp_acc = |budget: usize| {
        points
            .iter()
            .find(|p| p.strategy == "FP" && p.budget == budget)
            .unwrap()
            .accuracy
    };
    assert!(fp_acc(400) > fp_acc(0));
}

#[test]
fn intro_headline_statistics_have_the_papers_shape() {
    let stats = intro_statistics(smoke_corpus());
    // A minority of resources is over-tagged, yet they absorb a large share of
    // all posts ("wasted"); a substantial share of resources is under-tagged;
    // salvaging them needs only a small fraction of the wasted posts.
    assert!(stats.over_tagged_fraction() < 0.5);
    assert!(stats.wasted_fraction > 0.2);
    assert!(stats.under_tagged_fraction() > 0.1);
    assert!(stats.salvage_ratio() < 0.25);
}
