//! End-to-end integration tests: generate a corpus, freeze it into a scenario,
//! run every allocation strategy plus the DP optimum, and check the paper's
//! headline relationships between them.

use tagging_bench::setup::{scenario_params, smoke_corpus};
use tagging_sim::engine::{run_dp_capped, run_strategy, RunConfig};
use tagging_sim::scenario::Scenario;
use tagging_strategies::StrategyKind;

fn scenario(n: usize) -> Scenario {
    Scenario::from_corpus(smoke_corpus(), &scenario_params()).take(n)
}

#[test]
fn all_strategies_spend_the_budget_and_stay_in_bounds() {
    let scenario = scenario(120);
    let config = RunConfig {
        budget: 500,
        omega: 5,
        seed: 3,
    };
    for kind in StrategyKind::ALL {
        let metrics = run_strategy(&scenario, kind, &config);
        assert_eq!(
            metrics
                .allocation
                .iter()
                .map(|&x| x as usize)
                .sum::<usize>(),
            500,
            "{} must spend the whole budget",
            kind.name()
        );
        assert!(
            (0.0..=1.0).contains(&metrics.mean_quality),
            "{} quality out of range",
            kind.name()
        );
        assert!(metrics.over_tagged <= scenario.len());
        assert!(metrics.wasted_posts <= 500);
        assert!((0.0..=1.0).contains(&metrics.under_tagged_fraction));
    }
}

#[test]
fn paper_ordering_dp_fp_beat_rr_beat_fc() {
    // The paper's Figure 6(a): DP ≥ FP-MU ≈ FP > RR > FC (MU sits low because it
    // ignores the heavily under-tagged resources).
    let scenario = scenario(150);
    let config = RunConfig {
        budget: 600,
        omega: 5,
        seed: 11,
    };
    let quality = |kind: StrategyKind| run_strategy(&scenario, kind, &config).mean_quality;
    let dp = run_dp_capped(&scenario, &config, 400).mean_quality;
    let fp = quality(StrategyKind::Fp);
    let fpmu = quality(StrategyKind::FpMu);
    let rr = quality(StrategyKind::Rr);
    let fc = quality(StrategyKind::Fc);
    let initial = scenario.initial_quality();

    assert!(dp >= fp - 1e-9, "DP ({dp}) must dominate FP ({fp})");
    assert!(dp >= fpmu - 1e-9, "DP ({dp}) must dominate FP-MU ({fpmu})");
    assert!(fp > rr, "FP ({fp}) should beat RR ({rr})");
    assert!(fpmu > rr, "FP-MU ({fpmu}) should beat RR ({rr})");
    assert!(rr > fc, "RR ({rr}) should beat FC ({fc})");
    assert!(
        fp > initial + 0.01,
        "FP should clearly improve over the initial state"
    );
    // At smoke scale the budget is large relative to the corpus, so FC improves
    // more than in the paper's full-scale setting; it must still trail FP by a
    // clear margin.
    assert!(
        fc - initial < 0.7 * (fp - initial),
        "FC's improvement ({}) should be clearly smaller than FP's ({})",
        fc - initial,
        fp - initial
    );
}

#[test]
fn fp_recovers_most_of_the_optimal_gain() {
    // The paper's summary: FP / FP-MU are close to the DP optimum.
    let scenario = scenario(80);
    let config = RunConfig {
        budget: 300,
        omega: 5,
        seed: 5,
    };
    let initial = scenario.initial_quality();
    let dp = run_dp_capped(&scenario, &config, 300).mean_quality;
    let fp = run_strategy(&scenario, StrategyKind::Fp, &config).mean_quality;
    let gain_ratio = (fp - initial) / (dp - initial).max(1e-9);
    assert!(
        gain_ratio > 0.6,
        "FP should recover most of the optimal quality gain, got {gain_ratio:.2}"
    );
}

#[test]
fn fc_wastes_a_large_share_of_its_budget() {
    // The paper: FC wastes ~48% of its post tasks on over-tagged resources while
    // FP wastes none.
    let scenario = scenario(150);
    let config = RunConfig {
        budget: 600,
        omega: 5,
        seed: 9,
    };
    let fc = run_strategy(&scenario, StrategyKind::Fc, &config);
    let fp = run_strategy(&scenario, StrategyKind::Fp, &config);
    assert!(
        fc.wasted_posts as f64 > 0.2 * 600.0,
        "FC should waste a sizeable share of its tasks, wasted only {}",
        fc.wasted_posts
    );
    assert_eq!(
        fp.wasted_posts, 0,
        "FP must not waste tasks on over-tagged resources"
    );
}

#[test]
fn quality_is_monotone_in_budget_for_fp() {
    let scenario = scenario(100);
    let mut last = scenario.initial_quality();
    for budget in [100usize, 300, 600, 900] {
        let config = RunConfig {
            budget,
            omega: 5,
            seed: 1,
        };
        let q = run_strategy(&scenario, StrategyKind::Fp, &config).mean_quality;
        assert!(
            q >= last - 1e-6,
            "FP quality decreased from {last} to {q} at budget {budget}"
        );
        last = q;
    }
}

#[test]
fn runs_are_deterministic_for_fixed_seeds() {
    let scenario = scenario(60);
    let config = RunConfig {
        budget: 200,
        omega: 5,
        seed: 21,
    };
    for kind in StrategyKind::ALL {
        let a = run_strategy(&scenario, kind, &config);
        let b = run_strategy(&scenario, kind, &config);
        assert_eq!(
            a.allocation,
            b.allocation,
            "{} not deterministic",
            kind.name()
        );
        assert_eq!(a.mean_quality, b.mean_quality);
    }
}
