//! Integration tests for the §V-C case studies: the Table VI/VII top-k
//! comparisons and the Figure 7 similarity-ranking accuracy experiment.

use tagging_analysis::topk::{category_hits, top_k_similar};
use tagging_bench::casestudy::{pick_case_study_subjects, top_k_comparison};
use tagging_bench::setup::{scenario_params, smoke_corpus};
use tagging_core::model::ResourceId;
use tagging_core::rfd::rfd_of_prefix;
use tagging_sim::scenario::Scenario;

#[test]
fn table6_fp_list_is_closer_to_ideal_than_initial_list() {
    let corpus = smoke_corpus();
    let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(80);
    let subjects = pick_case_study_subjects(&scenario, 3);
    assert_eq!(subjects.len(), 3);

    let mut fp_better_or_equal = 0;
    for subject in &subjects {
        let comparison = top_k_comparison(corpus, &scenario, *subject, 10, 300);
        assert_eq!(comparison.ideal.len(), 10);
        assert_eq!(comparison.fp.len(), 10);
        if comparison.fp_overlap() >= comparison.initial_overlap() {
            fp_better_or_equal += 1;
        }
    }
    assert!(
        fp_better_or_equal >= 2,
        "FP should not degrade the top-10 list for most subjects"
    );
}

#[test]
fn table7_ideal_lists_are_dominated_by_the_subjects_topic() {
    // With the full data, a subject's top-10 most similar resources should
    // mostly share its primary topic — the paper's "Dec 31" column.
    let corpus = smoke_corpus();
    let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(120);
    let subjects = pick_case_study_subjects(&scenario, 3);

    for subject in subjects {
        let ideal_rfds: Vec<_> = (0..scenario.len())
            .map(|i| {
                let full = corpus.full_sequence(ResourceId(i as u32));
                rfd_of_prefix(full, full.len())
            })
            .collect();
        let ideal = top_k_similar(subject, &ideal_rfds, 10);
        let topic = corpus.profiles[subject.index()].primary_topic;
        let same_topic = category_hits(&ideal, |r| {
            corpus.profiles[r.index()].primary_topic == topic
        });
        // The subject's topic covers only ~1/20 of all resources, so 4+ hits in
        // the top-10 indicates genuine topical retrieval rather than chance.
        assert!(
            same_topic >= 4,
            "only {same_topic}/10 ideal results share the subject's topic"
        );
    }
}

#[test]
fn case_study_subjects_have_room_to_improve() {
    let corpus = smoke_corpus();
    let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(100);
    let subjects = pick_case_study_subjects(&scenario, 5);
    for subject in subjects {
        // Subjects are under-tagged initially but have future posts to draw on.
        assert!(scenario.initial[subject.index()].len() <= 20);
        assert!(!scenario.future[subject.index()].is_empty());
    }
}

#[test]
fn top_k_comparison_is_deterministic() {
    let corpus = smoke_corpus();
    let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(60);
    let subject = pick_case_study_subjects(&scenario, 1)[0];
    let a = top_k_comparison(corpus, &scenario, subject, 10, 200);
    let b = top_k_comparison(corpus, &scenario, subject, 10, 200);
    let ids = |list: &[tagging_analysis::topk::RankedResource]| {
        list.iter().map(|r| r.resource).collect::<Vec<_>>()
    };
    assert_eq!(ids(&a.fp), ids(&b.fp));
    assert_eq!(ids(&a.fc), ids(&b.fc));
    assert_eq!(ids(&a.ideal), ids(&b.ideal));
}
