//! Integration tests for corpus persistence: a corpus saved to JSON and loaded
//! back must drive every downstream computation (scenario, strategies, quality)
//! to identical results.

use delicious_sim::generator::{generate, GeneratorConfig};
use delicious_sim::io::{load_corpus, save_corpus};
use tagging_bench::setup::scenario_params;
use tagging_sim::engine::{run_strategy, RunConfig};
use tagging_sim::scenario::Scenario;
use tagging_strategies::StrategyKind;

#[test]
fn corpus_roundtrip_preserves_experiment_results() {
    let corpus = generate(&GeneratorConfig::small(50, 404));
    let dir = std::env::temp_dir().join("incentive-tagging-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.json");
    save_corpus(&corpus, &path).expect("save");
    let reloaded = load_corpus(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let scenario_a = Scenario::from_corpus(&corpus, &scenario_params());
    let scenario_b = Scenario::from_corpus(&reloaded, &scenario_params());
    assert_eq!(scenario_a.len(), scenario_b.len());
    assert!((scenario_a.initial_quality() - scenario_b.initial_quality()).abs() < 1e-12);

    let config = RunConfig {
        budget: 150,
        omega: 5,
        seed: 7,
    };
    for kind in [StrategyKind::Fp, StrategyKind::FpMu, StrategyKind::Rr] {
        let a = run_strategy(&scenario_a, kind, &config);
        let b = run_strategy(&scenario_b, kind, &config);
        assert_eq!(
            a.allocation,
            b.allocation,
            "{} diverged after reload",
            kind.name()
        );
        assert!((a.mean_quality - b.mean_quality).abs() < 1e-12);
    }
}

#[test]
fn reloaded_corpus_preserves_taxonomy_and_profiles() {
    let corpus = generate(&GeneratorConfig::small(30, 505));
    let dir = std::env::temp_dir().join("incentive-tagging-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("taxonomy.json");
    save_corpus(&corpus, &path).expect("save");
    let reloaded = load_corpus(&path).expect("load");
    std::fs::remove_file(&path).ok();

    for id in corpus.resource_ids() {
        assert_eq!(
            corpus.taxonomy.assignment(id),
            reloaded.taxonomy.assignment(id)
        );
        // Float values may wobble in the last ULP across the JSON text
        // round-trip; the distributions must agree to within numerical noise.
        let original = corpus.true_distribution(id);
        let restored = reloaded.true_distribution(id);
        assert_eq!(original.support(), restored.support());
        for ((tag_a, weight_a), (tag_b, weight_b)) in original.iter().zip(restored.iter()) {
            assert_eq!(tag_a, tag_b);
            assert!((weight_a - weight_b).abs() < 1e-12);
        }
        assert_eq!(
            corpus.profiles[id.index()].primary_topic,
            reloaded.profiles[id.index()].primary_topic
        );
    }
}
