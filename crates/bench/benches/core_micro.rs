//! Micro-benchmarks of the core metric machinery: rfd updates, cosine
//! similarity over sparse vectors, MA-score maintenance and stable-point
//! detection. These are the inner loops every strategy and every experiment in
//! the paper rests on (Table V's per-operation costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tagging_bench::setup::smoke_corpus;
use tagging_core::rfd::{rfd_of_prefix, FrequencyTracker};
use tagging_core::similarity::cosine;
use tagging_core::stability::{MaTracker, StabilityAnalyzer, StabilityParams};

/// Incremental frequency tracking and rfd construction over a real sequence.
fn rfd_updates(c: &mut Criterion) {
    let corpus = smoke_corpus();
    let resource = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .unwrap();
    let posts = corpus.full_sequence(resource);

    let mut group = c.benchmark_group("core_rfd");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("incremental_tracker_full_sequence", |b| {
        b.iter(|| {
            let mut tracker = FrequencyTracker::new();
            for post in posts {
                tracker.push(post);
            }
            tracker.rfd()
        })
    });
    group.bench_function("rfd_of_prefix_half_sequence", |b| {
        b.iter(|| rfd_of_prefix(posts, posts.len() / 2))
    });
    group.finish();
}

/// Cosine similarity between rfds of increasing support size.
fn cosine_similarity(c: &mut Criterion) {
    let corpus = smoke_corpus();
    let mut ids: Vec<_> = corpus.resource_ids().collect();
    ids.sort_by_key(|id| corpus.full_sequence(*id).len());
    let small = {
        let posts = corpus.full_sequence(ids[0]);
        rfd_of_prefix(posts, posts.len())
    };
    let large = {
        let posts = corpus.full_sequence(*ids.last().unwrap());
        rfd_of_prefix(posts, posts.len())
    };

    let mut group = c.benchmark_group("core_cosine");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("small_vs_small", |b| b.iter(|| cosine(&small, &small)));
    group.bench_function("small_vs_large", |b| b.iter(|| cosine(&small, &large)));
    group.bench_function("large_vs_large", |b| b.iter(|| cosine(&large, &large)));
    group.finish();
}

/// MA-score maintenance: incremental tracker vs full offline re-analysis, for
/// several window sizes. This is the Appendix C optimisation the MU strategy
/// depends on.
fn ma_score_maintenance(c: &mut Criterion) {
    let corpus = smoke_corpus();
    let resource = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .unwrap();
    let posts = corpus.full_sequence(resource);

    let mut group = c.benchmark_group("core_ma_score");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &omega in &[5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("incremental", omega),
            &omega,
            |b, &omega| {
                b.iter(|| {
                    let mut tracker = MaTracker::new(omega);
                    let mut last = None;
                    for post in posts {
                        last = tracker.push(post);
                    }
                    last
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("offline_analyzer", omega),
            &omega,
            |b, &omega| {
                let analyzer = StabilityAnalyzer::new(StabilityParams::new(omega, 0.9999));
                b.iter(|| analyzer.analyze(posts).ma_scores.last().copied())
            },
        );
    }
    group.finish();
}

/// Stable-point detection over the whole smoke corpus — the dataset-preparation
/// step of §V-A.
fn stable_point_detection(c: &mut Criterion) {
    let corpus = smoke_corpus();
    let analyzer = StabilityAnalyzer::new(StabilityParams::new(15, 0.999));
    c.bench_function("dataset_stable_point_scan", |b| {
        b.iter(|| {
            corpus
                .resource_ids()
                .filter(|id| analyzer.stable_point(corpus.full_sequence(*id)).is_some())
                .count()
        })
    });
}

criterion_group!(
    benches,
    rfd_updates,
    cosine_similarity,
    ma_score_maintenance,
    stable_point_detection
);
criterion_main!(benches);
