//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * similarity metric (cosine, as fixed by the paper, vs Jaccard / Hellinger /
//!   total-variation) — both the cost of the metric and the tagging quality the
//!   MU-style machinery reaches with it;
//! * priority-queue CHOOSE (the paper's Algorithm 3/4) vs a naive linear scan;
//! * quality-table construction for DP with narrow vs wide per-resource caps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tagging_bench::setup::{scenario_params, smoke_corpus};
use tagging_core::model::{Post, ResourceId};
use tagging_core::rfd::rfd_of_prefix;
use tagging_core::similarity::MetricKind;
use tagging_sim::scenario::Scenario;
use tagging_strategies::dp::QualityTable;
use tagging_strategies::framework::{
    run_allocation, AllocationStrategy, AllocationView, ReplaySource,
};

/// Cost of the different similarity metrics on realistic rfds.
fn similarity_metric_cost(c: &mut Criterion) {
    let corpus = smoke_corpus();
    let resource = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .unwrap();
    let posts = corpus.full_sequence(resource);
    let a = rfd_of_prefix(posts, posts.len() / 2);
    let b = rfd_of_prefix(posts, posts.len());

    let mut group = c.benchmark_group("ablation_similarity_metric");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in MetricKind::ALL {
        let metric = kind.build();
        group.bench_function(metric.name(), |bencher| {
            bencher.iter(|| metric.similarity(&a, &b))
        });
    }
    group.finish();
}

/// A Fewest-Posts-First variant that scans all resources on every CHOOSE instead
/// of maintaining a priority queue — the structure the paper's complexity
/// analysis (Table V) argues against.
struct FewestPostsScan;

impl AllocationStrategy for FewestPostsScan {
    fn name(&self) -> &'static str {
        "FP-scan"
    }
    fn init(&mut self, _view: &AllocationView<'_>) {}
    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        (0..view.len())
            .map(|i| ResourceId(i as u32))
            .min_by_key(|id| (view.total_count(*id), id.0))
            .expect("at least one resource")
    }
    fn update(&mut self, _view: &AllocationView<'_>, _resource: ResourceId, _post: Option<&Post>) {}
}

/// Heap-based FP vs linear-scan FP at growing budgets.
fn heap_vs_scan(c: &mut Criterion) {
    let scenario = Scenario::from_corpus(smoke_corpus(), &scenario_params());
    let mut group = c.benchmark_group("ablation_heap_vs_scan");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &budget in &[200usize, 800] {
        group.bench_with_input(BenchmarkId::new("heap", budget), &budget, |b, &budget| {
            b.iter(|| {
                let mut fp = tagging_strategies::FewestPostsFirst::new();
                let mut source = ReplaySource::new(scenario.future.clone());
                run_allocation(
                    &mut fp,
                    &mut source,
                    &scenario.initial,
                    &scenario.popularity,
                    budget,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", budget), &budget, |b, &budget| {
            b.iter(|| {
                let mut fp = FewestPostsScan;
                let mut source = ReplaySource::new(scenario.future.clone());
                run_allocation(
                    &mut fp,
                    &mut source,
                    &scenario.initial,
                    &scenario.popularity,
                    budget,
                )
            })
        });
    }
    group.finish();
}

/// DP quality-table construction with narrow vs wide per-resource caps — the
/// `O(n·|T|·B)` term of the paper's DP complexity.
fn dp_table_construction(c: &mut Criterion) {
    let scenario = Scenario::from_corpus(smoke_corpus(), &scenario_params()).take(100);
    let mut group = c.benchmark_group("ablation_dp_table");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &cap in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::new("cap", cap), &cap, |b, &cap| {
            b.iter(|| {
                QualityTable::from_posts(
                    &scenario.initial,
                    &scenario.future,
                    &scenario.references,
                    cap,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    similarity_metric_cost,
    heap_vs_scan,
    dp_table_construction
);
criterion_main!(benches);
