//! Criterion benchmarks behind the paper's Figures 6(g) and 6(h): the runtime
//! of every incentive allocation strategy as a function of the budget and of the
//! number of resources, plus the DP optimum on reduced instances.
//!
//! Absolute numbers differ from the paper's C++ prototype, but the shape is the
//! point: DP grows super-linearly with the budget while the practical strategies
//! stay near-linear, RR/FC are the cheapest, and MU/FP-MU pay for maintaining MA
//! scores (Table V's complexity analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tagging_bench::setup::{scenario_params, smoke_corpus};
use tagging_sim::engine::{run_dp_capped, run_strategy, RunConfig};
use tagging_sim::scenario::Scenario;
use tagging_strategies::StrategyKind;

/// Figure 6(g): runtime vs budget at a fixed number of resources.
fn runtime_vs_budget(c: &mut Criterion) {
    let scenario = Scenario::from_corpus(smoke_corpus(), &scenario_params());
    let mut group = c.benchmark_group("fig6g_runtime_vs_budget");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for &budget in &[100usize, 400, 800] {
        for kind in StrategyKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), budget),
                &budget,
                |b, &budget| {
                    let config = RunConfig {
                        budget,
                        omega: 5,
                        seed: 1,
                    };
                    b.iter(|| run_strategy(&scenario, kind, &config));
                },
            );
        }
    }
    // DP only on the smallest budgets: it is the paper's offline reference and
    // becomes orders of magnitude slower than the practical strategies.
    for &budget in &[100usize, 200] {
        group.bench_with_input(BenchmarkId::new("DP", budget), &budget, |b, &budget| {
            let config = RunConfig {
                budget,
                omega: 5,
                seed: 1,
            };
            b.iter(|| run_dp_capped(&scenario, &config, 200));
        });
    }
    group.finish();
}

/// Figure 6(h): runtime vs number of resources at a fixed budget.
fn runtime_vs_resources(c: &mut Criterion) {
    let full = Scenario::from_corpus(smoke_corpus(), &scenario_params());
    let mut group = c.benchmark_group("fig6h_runtime_vs_resources");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);

    for &n in &[50usize, 100, 200] {
        let scenario = full.take(n);
        for kind in StrategyKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                let config = RunConfig {
                    budget: 400,
                    omega: 5,
                    seed: 1,
                };
                b.iter(|| run_strategy(&scenario, kind, &config));
            });
        }
        group.bench_with_input(BenchmarkId::new("DP", n), &n, |b, _| {
            let config = RunConfig {
                budget: 100,
                omega: 5,
                seed: 1,
            };
            b.iter(|| run_dp_capped(&scenario, &config, 100));
        });
    }
    group.finish();
}

criterion_group!(benches, runtime_vs_budget, runtime_vs_resources);
criterion_main!(benches);
