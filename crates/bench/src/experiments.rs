//! Experiment drivers for the paper's Figures 1, 3, 5 and 6.
//!
//! Each function returns plain data (series of numbers) so the same code is
//! used by the `repro_*` binaries (which print the series), the Criterion
//! benches (which time the underlying algorithms) and the integration tests
//! (which assert the qualitative shape of each figure).

use delicious_sim::generator::{generate, GeneratorConfig, SyntheticCorpus};
use delicious_sim::stats::{CorpusStatistics, PostCountHistogram, StatisticsParams};
use tagging_core::model::ResourceId;
use tagging_core::quality::quality_curve;
use tagging_core::rfd::FrequencyTracker;
use tagging_core::stability::{StabilityAnalyzer, StabilityParams};
use tagging_sim::engine::RunConfig;
use tagging_sim::scenario::Scenario;
use tagging_sim::sweep::{budget_sweep, omega_sweep, resource_sweep, SweepAlgorithms, SweepPoint};
use tagging_strategies::StrategyKind;

use crate::setup::{reference_stability_params, Scale};

/// Data behind Figure 1(a): the relative frequencies of the most frequent tags
/// of one (popular) resource as its post count grows.
#[derive(Debug, Clone)]
pub struct TagFrequencySeries {
    /// The resource the series was computed on.
    pub resource: ResourceId,
    /// Names of the tracked tags (most frequent overall first).
    pub tag_names: Vec<String>,
    /// One row per sampled post count: `(k, relative frequency of each tag)`.
    pub rows: Vec<(usize, Vec<f64>)>,
}

/// Computes the Figure 1(a) series on the most-tagged resource of the corpus.
///
/// `num_tags` tags are tracked (the paper tracks five: google, maps, earth,
/// software, travel) and the series is sampled every `step` posts.
pub fn fig1a_tag_frequencies(
    corpus: &SyntheticCorpus,
    num_tags: usize,
    step: usize,
) -> TagFrequencySeries {
    let resource = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .expect("corpus is non-empty");
    let posts = corpus.full_sequence(resource);

    // Pick the overall most frequent tags of the full sequence.
    let full = FrequencyTracker::from_posts(posts.iter());
    let mut counts: Vec<(tagging_core::model::TagId, u64)> = full.counts().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let tracked: Vec<_> = counts.into_iter().take(num_tags).map(|(t, _)| t).collect();
    let tag_names = tracked
        .iter()
        .map(|t| {
            corpus
                .corpus
                .tags
                .name(*t)
                .unwrap_or("<unknown>")
                .to_string()
        })
        .collect();

    let mut rows = Vec::new();
    let mut tracker = FrequencyTracker::new();
    for (idx, post) in posts.iter().enumerate() {
        tracker.push(post);
        let k = idx + 1;
        if k % step.max(1) == 0 || k == posts.len() {
            let rfd = tracker.rfd();
            rows.push((k, tracked.iter().map(|t| rfd.get(*t)).collect()));
        }
    }

    TagFrequencySeries {
        resource,
        tag_names,
        rows,
    }
}

/// Data behind Figure 1(b): the log-binned posts-per-resource histogram of a
/// "whole crawl" style corpus.
pub fn fig1b_posts_distribution(num_resources: usize, seed: u64) -> PostCountHistogram {
    let corpus = generate(&GeneratorConfig::full_web(num_resources, seed));
    PostCountHistogram::from_corpus(&corpus, 10)
}

/// Data behind Figure 3: adjacent similarity and MA score of one resource as a
/// function of its post count, with the paper's illustration parameters
/// (ω = 20 unless overridden).
#[derive(Debug, Clone)]
pub struct StabilitySeries {
    /// The resource the series was computed on.
    pub resource: ResourceId,
    /// `(k, adjacent similarity at post k, MA score at k if defined)`.
    pub rows: Vec<(usize, f64, Option<f64>)>,
    /// The stable point under the supplied parameters, if reached.
    pub stable_point: Option<usize>,
}

/// Computes the Figure 3 series on the most-tagged resource of the corpus.
pub fn fig3_stability_series(corpus: &SyntheticCorpus, params: StabilityParams) -> StabilitySeries {
    let resource = corpus
        .resource_ids()
        .max_by_key(|id| corpus.full_sequence(*id).len())
        .expect("corpus is non-empty");
    let posts = corpus.full_sequence(resource);
    let profile = StabilityAnalyzer::new(params).analyze(posts);
    let rows = (1..=posts.len())
        .map(|k| (k, profile.adjacent_similarity[k - 1], profile.ma_at(k)))
        .collect();
    StabilitySeries {
        resource,
        rows,
        stable_point: profile.stable_point,
    }
}

/// Data behind Figure 5: the tagging-quality curves of two resources — one that
/// stabilises quickly (few significant tags) and one that needs many more posts
/// (complex content) — illustrating why giving a post to a sparsely-tagged
/// resource buys a much larger quality improvement.
#[derive(Debug, Clone)]
pub struct QualityCurvePair {
    /// The quickly-stabilising resource and its quality at each post count.
    pub simple: (ResourceId, Vec<f64>),
    /// The slowly-stabilising resource and its quality at each post count.
    pub complex: (ResourceId, Vec<f64>),
}

/// Computes the Figure 5 curves by picking the least and most complex resources
/// (by latent-profile complexity) that both have reasonably long sequences.
pub fn fig5_quality_curves(corpus: &SyntheticCorpus) -> QualityCurvePair {
    let analyzer = StabilityAnalyzer::new(reference_stability_params());
    let eligible: Vec<ResourceId> = corpus
        .resource_ids()
        .filter(|id| corpus.full_sequence(*id).len() >= 60)
        .collect();
    assert!(
        eligible.len() >= 2,
        "need at least two resources with 60+ posts for Figure 5"
    );
    let simple = *eligible
        .iter()
        .min_by_key(|id| corpus.profiles[id.index()].complexity)
        .expect("non-empty");
    let complex = *eligible
        .iter()
        .max_by_key(|id| corpus.profiles[id.index()].complexity)
        .expect("non-empty");

    let curve_of = |id: ResourceId| {
        let posts = corpus.full_sequence(id);
        let reference = analyzer
            .analyze(posts)
            .stable_rfd
            .unwrap_or_else(|| tagging_core::rfd::rfd_of_prefix(posts, posts.len()));
        quality_curve(posts, &reference)
    };

    QualityCurvePair {
        simple: (simple, curve_of(simple)),
        complex: (complex, curve_of(complex)),
    }
}

/// Whether the Figure 6 experiments include the DP optimum at a given scale:
/// everywhere except paper scale, where it dominates the wall-clock time
/// (exactly as in the paper's Figure 6(g)). `repro_fig6` and `repro_bench`
/// must agree on this rule — `repro_bench` times the Figure 6 workload.
pub fn fig6_include_dp(scale: crate::Scale) -> bool {
    scale != crate::Scale::Paper
}

/// The canonical Figure 6 sweep configuration — every strategy, DP per
/// `include_dp`, `seed = 1` — shared by [`fig6_budget_sweep`] and
/// `repro_bench` so the benchmark always times exactly the Figure 6 workload.
pub fn fig6_sweep_setup(
    include_dp: bool,
    dp_table_cap: usize,
    omega: usize,
) -> (SweepAlgorithms, RunConfig) {
    (
        SweepAlgorithms {
            strategies: StrategyKind::ALL.to_vec(),
            include_dp,
            dp_table_cap,
        },
        RunConfig {
            budget: 0,
            omega,
            seed: 1,
        },
    )
}

/// Runs the Figure 6(a)–(d)/(g) budget sweep on a scenario.
///
/// DP is included only when `include_dp` is set (at paper scale it dominates
/// the wall-clock time, exactly as in the paper's Figure 6(g)).
pub fn fig6_budget_sweep(
    scenario: &Scenario,
    budgets: &[usize],
    include_dp: bool,
    dp_table_cap: usize,
    omega: usize,
) -> Vec<SweepPoint> {
    let (algorithms, config) = fig6_sweep_setup(include_dp, dp_table_cap, omega);
    budget_sweep(scenario, budgets, &algorithms, &config)
}

/// Runs the Figure 6(e)/(h) resource-count sweep.
pub fn fig6e_resource_sweep(
    scenario: &Scenario,
    resource_counts: &[usize],
    budget: usize,
    include_dp: bool,
    dp_table_cap: usize,
) -> Vec<SweepPoint> {
    let algorithms = SweepAlgorithms {
        strategies: StrategyKind::ALL.to_vec(),
        include_dp,
        dp_table_cap,
    };
    let config = RunConfig {
        budget,
        omega: 5,
        seed: 1,
    };
    resource_sweep(scenario, resource_counts, &algorithms, &config)
}

/// Runs the Figure 6(f) ω sweep (MU, FP-MU, FP).
pub fn fig6f_omega_sweep(scenario: &Scenario, omegas: &[usize], budget: usize) -> Vec<SweepPoint> {
    let config = RunConfig {
        budget,
        omega: 5,
        seed: 1,
    };
    omega_sweep(scenario, omegas, &config)
}

/// The introduction's headline statistics on a corpus (over-tagged share,
/// wasted posts, under-tagged share, salvage ratio).
pub fn intro_statistics(corpus: &SyntheticCorpus) -> CorpusStatistics {
    CorpusStatistics::compute(
        corpus,
        &StatisticsParams {
            stability: reference_stability_params(),
            under_tagged_threshold: 10,
        },
    )
}

/// Convenience: the strategy names included in a Figure 6 sweep, in the order
/// the metrics appear inside each [`SweepPoint`].
pub fn sweep_strategy_names(include_dp: bool) -> Vec<&'static str> {
    let mut names = Vec::new();
    if include_dp {
        names.push("DP");
    }
    names.extend(StrategyKind::ALL.iter().map(|k| k.name()));
    names
}

/// Returns the default scale used when a binary receives no `--scale` argument.
pub fn default_scale() -> Scale {
    Scale::Default
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{smoke_corpus, smoke_scenario};

    #[test]
    fn fig1a_series_tracks_requested_tags_and_converges() {
        let corpus = smoke_corpus();
        let series = fig1a_tag_frequencies(corpus, 5, 10);
        assert_eq!(series.tag_names.len(), 5);
        assert!(!series.rows.is_empty());
        // Frequencies are valid probabilities.
        for (_, freqs) in &series.rows {
            assert_eq!(freqs.len(), 5);
            for &f in freqs {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // The change between the last two sampled rows is smaller than between
        // the first two: the rfd converges (Figure 1(a)'s message).
        if series.rows.len() >= 4 {
            let delta = |a: &Vec<f64>, b: &Vec<f64>| -> f64 {
                a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
            };
            let early = delta(&series.rows[0].1, &series.rows[1].1);
            let late = delta(
                &series.rows[series.rows.len() - 2].1,
                &series.rows[series.rows.len() - 1].1,
            );
            assert!(late <= early + 1e-9, "early {early} late {late}");
        }
    }

    #[test]
    fn fig1b_histogram_is_heavy_tailed() {
        let hist = fig1b_posts_distribution(400, 3);
        assert_eq!(hist.total(), 400);
        assert!(hist.is_heavy_tailed());
    }

    #[test]
    fn fig3_series_reaches_stability() {
        let corpus = smoke_corpus();
        let series = fig3_stability_series(corpus, StabilityParams::new(20, 0.99));
        assert!(!series.rows.is_empty());
        // MA is undefined before ω posts.
        assert!(series.rows[0].2.is_none());
        // The most popular synthetic resource accumulates hundreds of posts, so
        // it must reach its stable point.
        assert!(series.stable_point.is_some());
    }

    #[test]
    fn fig5_complex_resource_needs_more_posts() {
        let corpus = smoke_corpus();
        let pair = fig5_quality_curves(corpus);
        let (simple_id, simple_curve) = &pair.simple;
        let (complex_id, complex_curve) = &pair.complex;
        assert_ne!(simple_id, complex_id);
        // Early in the sequence the simple resource reaches high quality sooner
        // than the complex one (compare the first index where quality > 0.95).
        let first_above =
            |curve: &[f64]| curve.iter().position(|&q| q > 0.95).unwrap_or(curve.len());
        assert!(first_above(simple_curve) <= first_above(complex_curve));
    }

    #[test]
    fn fig6_budget_sweep_shapes() {
        let scenario = smoke_scenario();
        let budgets = [0, 150, 300];
        let points = fig6_budget_sweep(scenario, &budgets, true, 300, 5);
        assert_eq!(points.len(), budgets.len());
        let names = sweep_strategy_names(true);
        for point in &points {
            for name in &names {
                assert!(point.metrics(name).is_some(), "{name} missing");
            }
        }
        // At the largest budget: DP ≥ FP ≥ FC in quality (the paper's ordering).
        let last = &points[points.len() - 1];
        let q = |name: &str| last.metrics(name).unwrap().mean_quality;
        assert!(q("DP") >= q("FP") - 1e-9);
        assert!(q("FP") > q("FC"));
        // FC wastes more posts than FP.
        let wasted = |name: &str| last.metrics(name).unwrap().wasted_posts;
        assert!(wasted("FC") >= wasted("FP"));
    }

    #[test]
    fn fig6f_omega_sweep_fp_is_flat() {
        let scenario = smoke_scenario();
        let points = fig6f_omega_sweep(scenario, &[2, 6, 10], 150);
        assert_eq!(points.len(), 3);
        let fp: Vec<f64> = points
            .iter()
            .map(|p| p.metrics("FP").unwrap().mean_quality)
            .collect();
        assert!((fp[0] - fp[2]).abs() < 1e-12);
    }

    #[test]
    fn intro_statistics_report_waste_and_under_tagging() {
        let corpus = smoke_corpus();
        let stats = intro_statistics(corpus);
        assert!(stats.wasted_fraction > 0.0);
        assert!(stats.under_tagged_fraction() > 0.0);
        assert!(stats.mean_stable_point > 0.0);
    }
}
