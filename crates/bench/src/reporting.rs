//! Reporting helpers for the `repro_*` binaries: aligned plain-text tables and
//! x/y series that can be compared line-by-line with the corresponding table
//! or figure in the paper, plus machine-readable JSON reports ([`json_report`])
//! for the `--json` flag and the perf-tracking `repro_bench` harness.

use std::fmt::Write as _;

use serde::Value;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it is padded or truncated to the header width.
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render_row(&mut out, &separator);
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a floating point value with a fixed number of decimals.
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Renders an `(x, series…)` data block, one line per x value — the plain-text
/// equivalent of one figure panel.
pub fn render_series(x_label: &str, series_labels: &[&str], rows: &[(usize, Vec<f64>)]) -> String {
    let mut table = TextTable::new(
        std::iter::once(x_label.to_string()).chain(series_labels.iter().map(|s| s.to_string())),
    );
    for (x, values) in rows {
        let mut cells = vec![x.to_string()];
        cells.extend(values.iter().map(|v| fmt_f64(*v, 4)));
        table.add_row(cells);
    }
    table.render()
}

/// Builds the JSON tree of one `(x, series…)` data block — the
/// machine-readable counterpart of [`render_series`]. `NaN` values (a series
/// missing at a point) become JSON `null`.
pub fn json_series(x_label: &str, series_labels: &[&str], rows: &[(usize, Vec<f64>)]) -> Value {
    Value::Object(vec![
        ("x_label".to_string(), Value::String(x_label.to_string())),
        (
            "series".to_string(),
            Value::Array(
                series_labels
                    .iter()
                    .map(|s| Value::String(s.to_string()))
                    .collect(),
            ),
        ),
        (
            "rows".to_string(),
            Value::Array(
                rows.iter()
                    .map(|(x, values)| {
                        Value::Object(vec![
                            ("x".to_string(), Value::UInt(*x as u64)),
                            (
                                "values".to_string(),
                                Value::Array(values.iter().map(|&v| Value::Float(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Renders a named report — metadata plus a list of named panels — as
/// pretty-printed JSON. This is the common shape behind every `--json` flag:
///
/// ```json
/// {
///   "report": "fig6",
///   "scale": "small",
///   "panels": { "a": { "x_label": "budget", "series": [...], "rows": [...] } }
/// }
/// ```
pub fn json_report<K: AsRef<str>>(
    name: &str,
    meta: &[(&str, Value)],
    panels: &[(K, Value)],
) -> String {
    let mut fields = vec![("report".to_string(), Value::String(name.to_string()))];
    for (key, value) in meta {
        fields.push((key.to_string(), value.clone()));
    }
    fields.push((
        "panels".to_string(),
        Value::Object(
            panels
                .iter()
                .map(|(key, value)| (key.as_ref().to_string(), value.clone()))
                .collect(),
        ),
    ));
    serde_json::to_string_pretty(&Value::Object(fields)).expect("Value serialization is total")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["name", "value"]);
        table.add_row(["FP", "0.95"]);
        table.add_row(["FP-MU", "0.96"]);
        let out = table.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
        // Columns are aligned: "value" column starts at the same offset.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(lines[2].len().max(offset), lines[2].len());
        assert!(!table.is_empty());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut table = TextTable::new(["a", "b"]);
        table.add_row(["1"]);
        table.add_row(["1", "2", "3"]);
        let out = table.render();
        assert!(out.contains('1'));
        assert!(!out.contains('3'), "extra cells must be dropped");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(0.86549, 3), "0.865");
        assert_eq!(fmt_percent(0.253), "25.3%");
    }

    #[test]
    fn series_rendering_contains_every_row() {
        let rows = vec![(0, vec![0.86, 0.86]), (1000, vec![0.92, 0.88])];
        let out = render_series("budget", &["DP", "FC"], &rows);
        assert!(out.contains("budget"));
        assert!(out.contains("DP"));
        assert!(out.contains("1000"));
        assert!(out.contains("0.9200"));
    }

    #[test]
    fn json_report_is_valid_json_with_expected_shape() {
        let rows = vec![(0, vec![0.86, f64::NAN]), (1000, vec![0.92, 0.88])];
        let panel = json_series("budget", &["DP", "FC"], &rows);
        let out = json_report(
            "fig6",
            &[("scale", Value::String("small".to_string()))],
            &[("a", panel)],
        );
        let value: Value = serde_json::from_str(&out).expect("report must be valid JSON");
        assert_eq!(value.get("report"), Some(&Value::String("fig6".into())));
        assert_eq!(value.get("scale"), Some(&Value::String("small".into())));
        let panel = value
            .get("panels")
            .and_then(|p| p.get("a"))
            .expect("panel a present");
        assert_eq!(panel.get("x_label"), Some(&Value::String("budget".into())));
        // NaN series entries become null.
        assert!(out.contains("null"));
        assert!(out.contains("1000"));
    }
}
