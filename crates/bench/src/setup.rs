//! Shared experiment setup: corpus scale, scenario construction and caching.
//!
//! The paper's experiments use 5,000 resources, budgets up to 10,000 reward
//! units and an offline DP baseline. Reproducing that verbatim takes hours
//! (the paper itself reports > 3,000 s for DP at B = 10,000), so the harness
//! supports three scales:
//!
//! * [`Scale::Smoke`] — a few hundred resources, used by integration tests;
//! * [`Scale::Default`] — ~1,000 resources and budgets to 2,000: every figure's
//!   shape is visible in seconds to a few minutes;
//! * [`Scale::Paper`] — the full 5,000-resource / 10,000-budget setup
//!   (DP restricted, as in the paper, to the budget sweep only).
//!
//! Scale is selected on the command line of the `repro_*` binaries
//! (`--scale smoke|default|paper`).

use std::path::Path;
use std::sync::OnceLock;

use delicious_sim::generator::{generate, GeneratorConfig, SyntheticCorpus};
use delicious_sim::io::{load_corpus, save_corpus};
use tagging_core::stability::StabilityParams;
use tagging_sim::scenario::{Scenario, ScenarioParams};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny corpus for tests and CI smoke runs.
    Smoke,
    /// Reduced corpus that reproduces every figure's shape quickly.
    Default,
    /// The paper's full scale (slow; DP restricted to the budget sweep).
    Paper,
}

impl Scale {
    /// Parses a scale name (`small` is accepted as an alias for `smoke`).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" | "small" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of resources at this scale.
    pub fn num_resources(self) -> usize {
        match self {
            Scale::Smoke => 200,
            Scale::Default => 1_000,
            Scale::Paper => 5_000,
        }
    }

    /// The budgets swept in the Figure 6(a)–(d) experiments.
    pub fn budgets(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![0, 100, 200, 400],
            Scale::Default => vec![0, 250, 500, 1_000, 1_500, 2_000],
            Scale::Paper => vec![0, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 8_000, 10_000],
        }
    }

    /// The default single budget (the paper uses 5,000 ≈ 3.4% of initial posts).
    pub fn default_budget(self) -> usize {
        match self {
            Scale::Smoke => 200,
            Scale::Default => 1_000,
            Scale::Paper => 5_000,
        }
    }

    /// Resource counts swept in the Figure 6(e)/(h) experiments.
    pub fn resource_counts(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![50, 100, 200],
            Scale::Default => vec![200, 400, 600, 800, 1_000],
            Scale::Paper => vec![1_000, 2_000, 3_000, 4_000, 5_000],
        }
    }

    /// ω values swept in the Figure 6(f) experiment.
    pub fn omegas(self) -> Vec<usize> {
        vec![2, 4, 6, 8, 10, 12, 14, 16]
    }

    /// Cap on the DP quality-table width (per-resource allocation) at this scale.
    pub fn dp_table_cap(self) -> usize {
        match self {
            Scale::Smoke => 400,
            Scale::Default => 800,
            Scale::Paper => 2_000,
        }
    }

    /// Number of resources used for the pairwise-ranking accuracy experiment
    /// (Figure 7); kept lower than the corpus size because the experiment is
    /// quadratic in the number of resources.
    pub fn accuracy_resources(self) -> usize {
        match self {
            Scale::Smoke => 60,
            Scale::Default => 200,
            Scale::Paper => 400,
        }
    }

    /// The generator configuration at this scale.
    pub fn generator_config(self) -> GeneratorConfig {
        GeneratorConfig::paper_sample().with_resources(self.num_resources())
    }
}

/// The stability parameters used to derive reference rfds in the reproduction.
///
/// The paper prepares its dataset with (ω_s = 20, τ_s = 0.9999); those values
/// assume sequences of hundreds of posts. The synthetic sequences average ~112
/// posts (like the paper's sample), and a slightly relaxed threshold keeps the
/// fraction of never-stabilising resources small without changing any
/// qualitative result.
pub fn reference_stability_params() -> StabilityParams {
    StabilityParams::new(15, 0.999)
}

/// Builds the scenario parameters used across all experiments.
pub fn scenario_params() -> ScenarioParams {
    ScenarioParams {
        stability: reference_stability_params(),
        under_tagged_threshold: 10,
    }
}

/// Generates (or regenerates) the corpus for a scale. Deterministic per scale.
pub fn build_corpus(scale: Scale) -> SyntheticCorpus {
    generate(&scale.generator_config())
}

/// Builds the scenario for a scale.
pub fn build_scenario(scale: Scale) -> Scenario {
    Scenario::from_corpus(&build_corpus(scale), &scenario_params())
}

/// Builds the standard scenario over an already-obtained corpus.
pub fn build_scenario_from(corpus: &SyntheticCorpus) -> Scenario {
    Scenario::from_corpus(corpus, &scenario_params())
}

/// The corpus behind a `--corpus <path>` run: loaded from `path` when the
/// file exists, generated (at `scale`) and saved there when it does not, and
/// plain generation when no path was given. This is how the fixed corpus is
/// produced once and reused across every repro binary and the server.
pub fn load_or_generate_corpus(scale: Scale, path: Option<&Path>) -> SyntheticCorpus {
    let Some(path) = path else {
        return build_corpus(scale);
    };
    if path.exists() {
        match load_corpus(path) {
            Ok(corpus) => {
                eprintln!("loaded corpus from {}", path.display());
                if corpus.len() != scale.num_resources() {
                    eprintln!(
                        "note: corpus has {} resources but --scale expects {}",
                        corpus.len(),
                        scale.num_resources()
                    );
                }
                corpus
            }
            Err(e) => {
                eprintln!("cannot load corpus {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    } else {
        let corpus = build_corpus(scale);
        match save_corpus(&corpus, path) {
            Ok(()) => eprintln!("saved generated corpus to {}", path.display()),
            Err(e) => eprintln!("cannot save corpus to {}: {e}", path.display()),
        }
        corpus
    }
}

/// Cached smoke-scale corpus and scenario, shared by tests and benches to avoid
/// regenerating the same data repeatedly.
pub fn smoke_corpus() -> &'static SyntheticCorpus {
    static CORPUS: OnceLock<SyntheticCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| build_corpus(Scale::Smoke))
}

/// Cached smoke-scale scenario.
pub fn smoke_scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::from_corpus(smoke_corpus(), &scenario_params()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("small"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("DEFAULT"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Smoke.num_resources() < Scale::Default.num_resources());
        assert!(Scale::Default.num_resources() < Scale::Paper.num_resources());
        assert!(Scale::Paper.budgets().contains(&5_000));
        assert!(Scale::Paper.budgets().contains(&10_000));
    }

    #[test]
    fn smoke_scenario_is_cached_and_consistent() {
        let a = smoke_scenario();
        let b = smoke_scenario();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.len(), Scale::Smoke.num_resources());
        assert!(a.initial_quality() > 0.0);
    }

    #[test]
    fn budgets_and_resource_counts_are_increasing() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Paper] {
            let budgets = scale.budgets();
            assert!(budgets.windows(2).all(|w| w[0] < w[1]));
            let counts = scale.resource_counts();
            assert!(counts.windows(2).all(|w| w[0] < w[1]));
            assert!(counts.iter().all(|&n| n <= scale.num_resources()));
        }
    }
}
