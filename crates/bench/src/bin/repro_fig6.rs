//! Reproduces Figure 6 of the paper — the main evaluation of the incentive
//! allocation strategies:
//!
//! * (a) tagging quality vs budget,
//! * (b) number of over-tagged resources vs budget,
//! * (c) number of wasted post tasks vs budget,
//! * (d) percentage of under-tagged resources vs budget,
//! * (e) tagging quality vs number of resources,
//! * (f) effect of the MA window ω on MU / FP-MU / FP,
//! * (g) runtime vs budget,
//! * (h) runtime vs number of resources.
//!
//! Usage:
//! `cargo run --release -p tagging-bench --bin repro_fig6 -- [--scale S] [panels]`
//! where `panels` is any subset of the letters `abcdefgh` (default: all).

use tagging_bench::experiments::{
    fig6_budget_sweep, fig6e_resource_sweep, fig6f_omega_sweep, sweep_strategy_names,
};
use tagging_bench::reporting::render_series;
use tagging_bench::{scale_from_args, setup, Scale};
use tagging_sim::sweep::SweepPoint;

fn series_rows<F>(points: &[SweepPoint], names: &[&str], f: F) -> Vec<(usize, Vec<f64>)>
where
    F: Fn(&tagging_sim::metrics::RunMetrics) -> f64,
{
    points
        .iter()
        .map(|p| {
            (
                p.x,
                names
                    .iter()
                    .map(|n| p.metrics(n).map(&f).unwrap_or(f64::NAN))
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let panels: String = args
        .iter()
        .find(|a| a.chars().all(|c| "abcdefgh".contains(c)) && !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "abcdefgh".to_string());

    // DP is included except at paper scale for the very largest budgets, where
    // it dominates the wall-clock time (as the paper itself observes).
    let include_dp = scale != Scale::Paper;
    let names_owned = sweep_strategy_names(include_dp);
    let names: Vec<&str> = names_owned.clone();

    let scenario = setup::build_scenario(scale);
    println!(
        "corpus: {} resources, initial quality {:.4}, initially under-tagged {:.1}%, over-tagged {}",
        scenario.len(),
        scenario.initial_quality(),
        100.0 * scenario.initially_under_tagged() as f64 / scenario.len() as f64,
        scenario.initially_over_tagged()
    );

    if panels.chars().any(|c| "abcdg".contains(c)) {
        let budgets = scale.budgets();
        let points = fig6_budget_sweep(&scenario, &budgets, include_dp, scale.dp_table_cap(), 5);

        if panels.contains('a') {
            println!("\n=== Figure 6(a): Quality vs Budget ===");
            println!(
                "{}",
                render_series(
                    "budget",
                    &names,
                    &series_rows(&points, &names, |m| m.mean_quality)
                )
            );
        }
        if panels.contains('b') {
            println!("\n=== Figure 6(b): Over-tagged resources vs Budget ===");
            println!(
                "{}",
                render_series(
                    "budget",
                    &names,
                    &series_rows(&points, &names, |m| m.over_tagged as f64)
                )
            );
        }
        if panels.contains('c') {
            println!("\n=== Figure 6(c): Wasted posts vs Budget ===");
            println!(
                "{}",
                render_series(
                    "budget",
                    &names,
                    &series_rows(&points, &names, |m| m.wasted_posts as f64)
                )
            );
        }
        if panels.contains('d') {
            println!("\n=== Figure 6(d): Percentage of under-tagged resources vs Budget ===");
            println!(
                "{}",
                render_series(
                    "budget",
                    &names,
                    &series_rows(&points, &names, |m| m.under_tagged_fraction)
                )
            );
        }
        if panels.contains('g') {
            println!("\n=== Figure 6(g): Runtime (s) vs Budget ===");
            println!(
                "{}",
                render_series(
                    "budget",
                    &names,
                    &series_rows(&points, &names, |m| m.runtime_seconds)
                )
            );
        }
    }

    if panels.contains('e') || panels.contains('h') {
        let counts = scale.resource_counts();
        let points = fig6e_resource_sweep(
            &scenario,
            &counts,
            scale.default_budget(),
            include_dp,
            scale.dp_table_cap(),
        );
        if panels.contains('e') {
            println!(
                "\n=== Figure 6(e): Quality vs Number of Resources (B = {}) ===",
                scale.default_budget()
            );
            println!(
                "{}",
                render_series(
                    "resources",
                    &names,
                    &series_rows(&points, &names, |m| m.mean_quality)
                )
            );
        }
        if panels.contains('h') {
            println!("\n=== Figure 6(h): Runtime (s) vs Number of Resources ===");
            println!(
                "{}",
                render_series(
                    "resources",
                    &names,
                    &series_rows(&points, &names, |m| m.runtime_seconds)
                )
            );
        }
    }

    if panels.contains('f') {
        let omegas = scale.omegas();
        let points = fig6f_omega_sweep(&scenario, &omegas, scale.default_budget());
        let omega_names = ["FP-MU", "FP", "MU"];
        println!(
            "\n=== Figure 6(f): Effect of ω (B = {}) ===",
            scale.default_budget()
        );
        println!(
            "{}",
            render_series(
                "omega",
                &omega_names,
                &series_rows(&points, &omega_names, |m| m.mean_quality)
            )
        );
    }
}
