//! Reproduces Figure 6 of the paper — the main evaluation of the incentive
//! allocation strategies:
//!
//! * (a) tagging quality vs budget,
//! * (b) number of over-tagged resources vs budget,
//! * (c) number of wasted post tasks vs budget,
//! * (d) percentage of under-tagged resources vs budget,
//! * (e) tagging quality vs number of resources,
//! * (f) effect of the MA window ω on MU / FP-MU / FP,
//! * (g) runtime vs budget,
//! * (h) runtime vs number of resources.
//!
//! Usage:
//! `cargo run --release -p tagging-bench --bin repro_fig6 -- [--scale S] [--threads N] [--corpus PATH] [--json] [panels]`
//! where `panels` is any subset of the letters `abcdefgh` (default: all).
//!
//! Sweep points run in parallel on the tagging-runtime executor (`--threads`,
//! `TAGGING_THREADS`, or all available cores); every series except the
//! wall-clock runtime panels (g)/(h) is bit-identical at any thread count.
//! `--json` emits one machine-readable report instead of the text tables.

use serde::Value;
use tagging_bench::experiments::{
    fig6_budget_sweep, fig6_include_dp, fig6e_resource_sweep, fig6f_omega_sweep,
    sweep_strategy_names,
};
use tagging_bench::reporting::{json_report, json_series, render_series};
use tagging_bench::{corpus_path_from_args, has_flag, init_runtime, scale_from_args, setup};
use tagging_sim::sweep::SweepPoint;

fn series_rows<F>(points: &[SweepPoint], names: &[&str], f: F) -> Vec<(usize, Vec<f64>)>
where
    F: Fn(&tagging_sim::metrics::RunMetrics) -> f64,
{
    points
        .iter()
        .map(|p| {
            (
                p.x,
                names
                    .iter()
                    .map(|n| p.metrics(n).map(&f).unwrap_or(f64::NAN))
                    .collect(),
            )
        })
        .collect()
}

/// One `(x, series values…)` data block.
type Rows = Vec<(usize, Vec<f64>)>;

/// A rendered-panel record: letter, x label, title, series names, rows.
type Block = (char, &'static str, String, Vec<&'static str>, Rows);

/// Metric extractor for one panel.
type MetricFn = fn(&tagging_sim::metrics::RunMetrics) -> f64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let json = has_flag(&args, "--json");
    let panels: String = args
        .iter()
        .find(|a| a.chars().all(|c| "abcdefgh".contains(c)) && !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "abcdefgh".to_string());

    // DP is included except at paper scale for the very largest budgets, where
    // it dominates the wall-clock time (as the paper itself observes).
    let include_dp = fig6_include_dp(scale);
    let names_owned = sweep_strategy_names(include_dp);
    let names: Vec<&str> = names_owned.clone();

    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let scenario = setup::build_scenario_from(&corpus);
    // The thread count goes to stderr so the deterministic panels' stdout
    // stays byte-identical across `--threads` values — the contract the CI
    // matrix checks by diffing `abcdef` output. The runtime panels (g)/(h)
    // report measured wall-clock time and legitimately vary run to run.
    eprintln!("runtime threads: {}", runtime.threads());
    if !json {
        println!(
            "corpus: {} resources, initial quality {:.4}, initially under-tagged {:.1}%, over-tagged {}",
            scenario.len(),
            scenario.initial_quality(),
            100.0 * scenario.initially_under_tagged() as f64 / scenario.len() as f64,
            scenario.initially_over_tagged()
        );
    }

    // Collected (panel letter, x label, title, rows) blocks, rendered at the
    // end as either text tables or one JSON report.
    let mut blocks: Vec<Block> = Vec::new();

    if panels.chars().any(|c| "abcdg".contains(c)) {
        let budgets = scale.budgets();
        let points = fig6_budget_sweep(&scenario, &budgets, include_dp, scale.dp_table_cap(), 5);

        let budget_panels: [(char, &'static str, MetricFn); 5] = [
            ('a', "Figure 6(a): Quality vs Budget", |m| m.mean_quality),
            ('b', "Figure 6(b): Over-tagged resources vs Budget", |m| {
                m.over_tagged as f64
            }),
            ('c', "Figure 6(c): Wasted posts vs Budget", |m| {
                m.wasted_posts as f64
            }),
            (
                'd',
                "Figure 6(d): Percentage of under-tagged resources vs Budget",
                |m| m.under_tagged_fraction,
            ),
            ('g', "Figure 6(g): Runtime (s) vs Budget", |m| {
                m.runtime_seconds
            }),
        ];
        for (letter, title, metric) in budget_panels {
            if panels.contains(letter) {
                blocks.push((
                    letter,
                    "budget",
                    title.to_string(),
                    names.clone(),
                    series_rows(&points, &names, metric),
                ));
            }
        }
    }

    if panels.contains('e') || panels.contains('h') {
        let counts = scale.resource_counts();
        let points = fig6e_resource_sweep(
            &scenario,
            &counts,
            scale.default_budget(),
            include_dp,
            scale.dp_table_cap(),
        );
        if panels.contains('e') {
            blocks.push((
                'e',
                "resources",
                format!(
                    "Figure 6(e): Quality vs Number of Resources (B = {})",
                    scale.default_budget()
                ),
                names.clone(),
                series_rows(&points, &names, |m| m.mean_quality),
            ));
        }
        if panels.contains('h') {
            blocks.push((
                'h',
                "resources",
                "Figure 6(h): Runtime (s) vs Number of Resources".to_string(),
                names.clone(),
                series_rows(&points, &names, |m| m.runtime_seconds),
            ));
        }
    }

    if panels.contains('f') {
        let omegas = scale.omegas();
        let points = fig6f_omega_sweep(&scenario, &omegas, scale.default_budget());
        let omega_names = vec!["FP-MU", "FP", "MU"];
        blocks.push((
            'f',
            "omega",
            format!("Figure 6(f): Effect of ω (B = {})", scale.default_budget()),
            omega_names.clone(),
            series_rows(&points, &omega_names, |m| m.mean_quality),
        ));
    }

    blocks.sort_by_key(|(letter, ..)| *letter);

    if json {
        let panel_values: Vec<(String, Value)> = blocks
            .iter()
            .map(|(letter, x_label, _, block_names, rows)| {
                (letter.to_string(), json_series(x_label, block_names, rows))
            })
            .collect();
        println!(
            "{}",
            json_report(
                "fig6",
                &[
                    ("scale", Value::String(format!("{scale:?}").to_lowercase())),
                    ("threads", Value::UInt(runtime.threads() as u64)),
                    ("include_dp", Value::Bool(include_dp)),
                ],
                &panel_values,
            )
        );
    } else {
        for (_, x_label, title, block_names, rows) in &blocks {
            println!("\n=== {title} ===");
            println!("{}", render_series(x_label, block_names, rows));
        }
    }
}
