//! Machine-readable wall-clock benchmark of the parallelised hot paths — the
//! workspace's perf-trajectory anchor.
//!
//! Three timed stages, each run once on a single thread and once on the
//! configured thread count (after an untimed warm-up), with a
//! cross-thread-count determinism verdict (`null` when only one thread ran,
//! so nothing was compared):
//!
//! 1. the Figure 6 budget sweep (the workload `repro_fig6` plots),
//! 2. a DP layer-fill — `par_optimal_allocation` over a prebuilt quality
//!    table at the scale's default budget,
//! 3. a pairwise-ranking pass — `ranking_accuracy_with` over the Figure 7
//!    resource subset.
//!
//! Everything is written to `BENCH_sweep.json` (override with `--out PATH`).
//!
//! Usage:
//! `cargo run --release -p tagging-bench --bin repro_bench -- [--scale S] [--threads N] [--corpus PATH] [--out PATH]`

use std::time::Instant;

use serde::Value;
use tagging_analysis::accuracy::ranking_accuracy_with;
use tagging_bench::experiments::{fig6_include_dp, fig6_sweep_setup};
use tagging_bench::{corpus_path_from_args, init_runtime, scale_from_args, setup};
use tagging_core::rfd::{rfd_of_prefix, Rfd};
use tagging_runtime::Runtime;
use tagging_sim::sweep::{budget_sweep_with, sweep_fingerprint, SweepAlgorithms, SweepPoint};
use tagging_strategies::dp::{par_optimal_allocation, QualityTable};

/// One timed sweep execution.
struct TimedRun {
    threads: usize,
    total_seconds: f64,
    points: Vec<SweepPoint>,
}

fn run_once(
    threads: usize,
    scenario: &tagging_sim::scenario::Scenario,
    budgets: &[usize],
    algorithms: &SweepAlgorithms,
    config: &tagging_sim::engine::RunConfig,
) -> TimedRun {
    let start = Instant::now();
    let points = budget_sweep_with(
        &Runtime::new(threads),
        scenario,
        budgets,
        algorithms,
        config,
    );
    TimedRun {
        threads,
        total_seconds: start.elapsed().as_secs_f64(),
        points,
    }
}

/// One 1-vs-N-threads timing of a single parallel kernel, plus whether the
/// two runs produced bit-identical results (`None` when only one thread ran).
struct KernelBench {
    baseline_seconds: f64,
    parallel_seconds: Option<f64>,
    deterministic: Option<bool>,
}

impl KernelBench {
    /// Times `run` at 1 thread and (when `threads > 1`) at `threads`,
    /// comparing the two results with `identical`. `run` is invoked once
    /// untimed at `threads` first so neither timed run pays first-touch
    /// costs.
    fn measure<T>(
        threads: usize,
        run: impl Fn(&Runtime) -> T,
        identical: impl Fn(&T, &T) -> bool,
    ) -> Self {
        let _ = run(&Runtime::new(threads)); // warm-up
        let start = Instant::now();
        let baseline = run(&Runtime::new(1));
        let baseline_seconds = start.elapsed().as_secs_f64();
        let (parallel_seconds, deterministic) = if threads > 1 {
            let start = Instant::now();
            let parallel = run(&Runtime::new(threads));
            let seconds = start.elapsed().as_secs_f64();
            (Some(seconds), Some(identical(&baseline, &parallel)))
        } else {
            (None, None)
        };
        Self {
            baseline_seconds,
            parallel_seconds,
            deterministic,
        }
    }

    fn speedup(&self) -> Option<f64> {
        self.parallel_seconds
            .map(|p| self.baseline_seconds / p.max(f64::MIN_POSITIVE))
    }

    /// JSON object: `extra` fields first, then the timings and the verdict
    /// (`null` where nothing was compared).
    fn to_json(&self, extra: &[(&str, Value)]) -> Value {
        let mut fields: Vec<(String, Value)> = extra
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        fields.push((
            "baseline_seconds".to_string(),
            Value::Float(self.baseline_seconds),
        ));
        fields.push((
            "parallel_seconds".to_string(),
            self.parallel_seconds
                .map(Value::Float)
                .unwrap_or(Value::Null),
        ));
        fields.push((
            "speedup".to_string(),
            self.speedup().map(Value::Float).unwrap_or(Value::Null),
        ));
        fields.push((
            "deterministic".to_string(),
            self.deterministic.map(Value::Bool).unwrap_or(Value::Null),
        ));
        Value::Object(fields)
    }

    fn summary(&self, name: &str) -> String {
        format!(
            "{name}: 1 thread: {:.3}s{}",
            self.baseline_seconds,
            self.parallel_seconds
                .zip(self.speedup())
                .zip(self.deterministic)
                .map(|((p, s), d)| format!(
                    ", parallel: {p:.3}s (speedup {s:.2}x, deterministic: {d})"
                ))
                .unwrap_or_default()
        )
    }
}

fn run_to_json(run: &TimedRun) -> Value {
    Value::Object(vec![
        ("threads".to_string(), Value::UInt(run.threads as u64)),
        ("total_seconds".to_string(), Value::Float(run.total_seconds)),
        (
            "points".to_string(),
            Value::Array(
                run.points
                    .iter()
                    .map(|p| {
                        let algo_seconds: f64 = p.results.iter().map(|m| m.runtime_seconds).sum();
                        Value::Object(vec![
                            ("x".to_string(), Value::UInt(p.x as u64)),
                            ("algorithm_seconds".to_string(), Value::Float(algo_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_sweep.json".to_string(),
    };

    // Exactly the Figure 6 workload — shared with repro_fig6 via experiments,
    // so the timings anchor the figure the paper actually plots.
    let include_dp = fig6_include_dp(scale);
    let (algorithms, config) = fig6_sweep_setup(include_dp, scale.dp_table_cap(), 5);
    let budgets = scale.budgets();
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let scenario = setup::build_scenario_from(&corpus);

    eprintln!(
        "benchmarking budget sweep at scale {scale:?} ({} resources, {} budget points) \
         on 1 vs {} thread(s)",
        scenario.len(),
        budgets.len(),
        runtime.threads()
    );

    // Warm-up: one untimed sweep so neither timed run pays first-touch costs
    // (allocator growth, page faults) — otherwise the cold 1-thread baseline
    // would overstate the parallel speedup.
    let _ = run_once(runtime.threads(), &scenario, &budgets, &algorithms, &config);

    let baseline = run_once(1, &scenario, &budgets, &algorithms, &config);
    let parallel = if runtime.threads() > 1 {
        Some(run_once(
            runtime.threads(),
            &scenario,
            &budgets,
            &algorithms,
            &config,
        ))
    } else {
        None
    };

    // `None` = nothing to compare (single-threaded run), reported as JSON null
    // so a missing check is never mistaken for a passed one.
    let deterministic: Option<bool> = parallel
        .as_ref()
        .map(|p| sweep_fingerprint(&p.points) == sweep_fingerprint(&baseline.points));
    let speedup = parallel
        .as_ref()
        .map(|p| baseline.total_seconds / p.total_seconds.max(f64::MIN_POSITIVE));

    // --- DP layer-fill: the chunked recurrence over a prebuilt table --------
    let dp_budget = scale.default_budget();
    let dp_cap = scale.dp_table_cap().min(dp_budget);
    eprintln!(
        "benchmarking DP layer-fill at budget {dp_budget} ({} resources)",
        scenario.len()
    );
    let table = QualityTable::par_from_posts(
        &Runtime::new(runtime.threads()),
        &scenario.initial,
        &scenario.future,
        &scenario.references,
        dp_cap,
    );
    let dp = KernelBench::measure(
        runtime.threads(),
        |rt| par_optimal_allocation(rt, &table, dp_budget),
        |a, b| {
            a.allocation == b.allocation && a.total_quality.to_bits() == b.total_quality.to_bits()
        },
    );

    // --- Pairwise ranking: the tiled Figure 7 accuracy pass -----------------
    let accuracy_scenario = scenario.take(scale.accuracy_resources());
    let rfds: Vec<Rfd> = accuracy_scenario
        .initial
        .iter()
        .map(|posts| rfd_of_prefix(posts, posts.len()))
        .collect();
    eprintln!(
        "benchmarking pairwise ranking pass over {} resources ({} pairs)",
        rfds.len(),
        rfds.len() * rfds.len().saturating_sub(1) / 2
    );
    let pairwise = KernelBench::measure(
        runtime.threads(),
        |rt| ranking_accuracy_with(rt, &rfds, &corpus.taxonomy),
        |a, b| a.to_bits() == b.to_bits(),
    );

    let mut runs = vec![run_to_json(&baseline)];
    if let Some(p) = &parallel {
        runs.push(run_to_json(p));
    }
    let report = Value::Object(vec![
        (
            "report".to_string(),
            Value::String("bench_sweep".to_string()),
        ),
        (
            "scale".to_string(),
            Value::String(format!("{scale:?}").to_lowercase()),
        ),
        // The host's core count makes the artifact self-describing: a ~1.0x
        // speedup recorded on a single-core machine is expected, not a
        // regression (the tracked copy was taken on a 1-core dev container).
        (
            "available_cores".to_string(),
            Value::UInt(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        (
            "budgets".to_string(),
            Value::Array(budgets.iter().map(|&b| Value::UInt(b as u64)).collect()),
        ),
        ("include_dp".to_string(), Value::Bool(include_dp)),
        ("runs".to_string(), Value::Array(runs)),
        (
            "speedup".to_string(),
            speedup.map(Value::Float).unwrap_or(Value::Null),
        ),
        (
            "deterministic".to_string(),
            deterministic.map(Value::Bool).unwrap_or(Value::Null),
        ),
        (
            "dp".to_string(),
            dp.to_json(&[
                ("budget", Value::UInt(dp_budget as u64)),
                ("table_cap", Value::UInt(dp_cap as u64)),
                ("resources", Value::UInt(scenario.len() as u64)),
            ]),
        ),
        (
            "pairwise".to_string(),
            pairwise.to_json(&[
                ("resources", Value::UInt(rfds.len() as u64)),
                (
                    "pairs",
                    Value::UInt((rfds.len() * rfds.len().saturating_sub(1) / 2) as u64),
                ),
            ]),
        ),
    ]);

    let json = serde_json::to_string_pretty(&report).expect("Value serialization is total");
    std::fs::write(&out_path, format!("{json}\n")).expect("writing the benchmark report");

    println!(
        "wrote {out_path}: sweep 1 thread: {:.3}s{}{}",
        baseline.total_seconds,
        parallel
            .as_ref()
            .map(|p| format!(", {} threads: {:.3}s", p.threads, p.total_seconds))
            .unwrap_or_default(),
        speedup
            .zip(deterministic)
            .map(|(s, d)| format!(" (speedup {s:.2}x, deterministic: {d})"))
            .unwrap_or_default()
    );
    println!("{}", dp.summary("dp layer-fill"));
    println!("{}", pairwise.summary("pairwise ranking"));
    let mut failed = false;
    if deterministic == Some(false) {
        eprintln!("error: parallel sweep diverged from the single-threaded sweep");
        failed = true;
    }
    if dp.deterministic == Some(false) {
        eprintln!("error: parallel DP layer-fill diverged from the single-threaded run");
        failed = true;
    }
    if pairwise.deterministic == Some(false) {
        eprintln!("error: parallel pairwise ranking diverged from the single-threaded run");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
