//! Machine-readable wall-clock benchmark of the Figure 6 budget sweep — the
//! workspace's perf-trajectory anchor.
//!
//! Runs one untimed warm-up sweep, then the budget sweep once on a single
//! thread and once on the configured thread count, records per-sweep-point
//! and total wall-clock timings plus a cross-thread-count determinism verdict
//! (`null` when only one thread ran, so nothing was compared), and writes
//! everything to `BENCH_sweep.json` (override with `--out PATH`).
//!
//! Usage:
//! `cargo run --release -p tagging-bench --bin repro_bench -- [--scale S] [--threads N] [--corpus PATH] [--out PATH]`

use std::time::Instant;

use serde::Value;
use tagging_bench::experiments::{fig6_include_dp, fig6_sweep_setup};
use tagging_bench::{corpus_path_from_args, init_runtime, scale_from_args, setup};
use tagging_runtime::Runtime;
use tagging_sim::sweep::{budget_sweep_with, sweep_fingerprint, SweepAlgorithms, SweepPoint};

/// One timed sweep execution.
struct TimedRun {
    threads: usize,
    total_seconds: f64,
    points: Vec<SweepPoint>,
}

fn run_once(
    threads: usize,
    scenario: &tagging_sim::scenario::Scenario,
    budgets: &[usize],
    algorithms: &SweepAlgorithms,
    config: &tagging_sim::engine::RunConfig,
) -> TimedRun {
    let start = Instant::now();
    let points = budget_sweep_with(
        &Runtime::new(threads),
        scenario,
        budgets,
        algorithms,
        config,
    );
    TimedRun {
        threads,
        total_seconds: start.elapsed().as_secs_f64(),
        points,
    }
}

fn run_to_json(run: &TimedRun) -> Value {
    Value::Object(vec![
        ("threads".to_string(), Value::UInt(run.threads as u64)),
        ("total_seconds".to_string(), Value::Float(run.total_seconds)),
        (
            "points".to_string(),
            Value::Array(
                run.points
                    .iter()
                    .map(|p| {
                        let algo_seconds: f64 = p.results.iter().map(|m| m.runtime_seconds).sum();
                        Value::Object(vec![
                            ("x".to_string(), Value::UInt(p.x as u64)),
                            ("algorithm_seconds".to_string(), Value::Float(algo_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("error: --out requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_sweep.json".to_string(),
    };

    // Exactly the Figure 6 workload — shared with repro_fig6 via experiments,
    // so the timings anchor the figure the paper actually plots.
    let include_dp = fig6_include_dp(scale);
    let (algorithms, config) = fig6_sweep_setup(include_dp, scale.dp_table_cap(), 5);
    let budgets = scale.budgets();
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let scenario = setup::build_scenario_from(&corpus);

    eprintln!(
        "benchmarking budget sweep at scale {scale:?} ({} resources, {} budget points) \
         on 1 vs {} thread(s)",
        scenario.len(),
        budgets.len(),
        runtime.threads()
    );

    // Warm-up: one untimed sweep so neither timed run pays first-touch costs
    // (allocator growth, page faults) — otherwise the cold 1-thread baseline
    // would overstate the parallel speedup.
    let _ = run_once(runtime.threads(), &scenario, &budgets, &algorithms, &config);

    let baseline = run_once(1, &scenario, &budgets, &algorithms, &config);
    let parallel = if runtime.threads() > 1 {
        Some(run_once(
            runtime.threads(),
            &scenario,
            &budgets,
            &algorithms,
            &config,
        ))
    } else {
        None
    };

    // `None` = nothing to compare (single-threaded run), reported as JSON null
    // so a missing check is never mistaken for a passed one.
    let deterministic: Option<bool> = parallel
        .as_ref()
        .map(|p| sweep_fingerprint(&p.points) == sweep_fingerprint(&baseline.points));
    let speedup = parallel
        .as_ref()
        .map(|p| baseline.total_seconds / p.total_seconds.max(f64::MIN_POSITIVE));

    let mut runs = vec![run_to_json(&baseline)];
    if let Some(p) = &parallel {
        runs.push(run_to_json(p));
    }
    let report = Value::Object(vec![
        (
            "report".to_string(),
            Value::String("bench_sweep".to_string()),
        ),
        (
            "scale".to_string(),
            Value::String(format!("{scale:?}").to_lowercase()),
        ),
        // The host's core count makes the artifact self-describing: a ~1.0x
        // speedup recorded on a single-core machine is expected, not a
        // regression (the tracked copy was taken on a 1-core dev container).
        (
            "available_cores".to_string(),
            Value::UInt(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        (
            "budgets".to_string(),
            Value::Array(budgets.iter().map(|&b| Value::UInt(b as u64)).collect()),
        ),
        ("include_dp".to_string(), Value::Bool(include_dp)),
        ("runs".to_string(), Value::Array(runs)),
        (
            "speedup".to_string(),
            speedup.map(Value::Float).unwrap_or(Value::Null),
        ),
        (
            "deterministic".to_string(),
            deterministic.map(Value::Bool).unwrap_or(Value::Null),
        ),
    ]);

    let json = serde_json::to_string_pretty(&report).expect("Value serialization is total");
    std::fs::write(&out_path, format!("{json}\n")).expect("writing the benchmark report");

    println!(
        "wrote {out_path}: 1 thread: {:.3}s{}{}",
        baseline.total_seconds,
        parallel
            .as_ref()
            .map(|p| format!(", {} threads: {:.3}s", p.threads, p.total_seconds))
            .unwrap_or_default(),
        speedup
            .zip(deterministic)
            .map(|(s, d)| format!(" (speedup {s:.2}x, deterministic: {d})"))
            .unwrap_or_default()
    );
    if deterministic == Some(false) {
        eprintln!("error: parallel sweep diverged from the single-threaded sweep");
        std::process::exit(1);
    }
}
