//! Reproduces Figure 1 of the paper:
//! (a) relative frequencies of a popular resource's top tags vs its post count;
//! (b) the log-binned posts-per-resource distribution of a whole-crawl corpus.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_fig1 -- [--scale S] [--threads N] [--corpus PATH] [a|b]`

use tagging_bench::experiments::{fig1a_tag_frequencies, fig1b_posts_distribution};
use tagging_bench::reporting::{render_series, TextTable};
use tagging_bench::{corpus_path_from_args, scale_from_args, setup};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    tagging_bench::init_runtime(&args);
    let panel = args
        .iter()
        .find(|a| *a == "a" || *a == "b")
        .cloned()
        .unwrap_or_else(|| "ab".to_string());

    if panel.contains('a') {
        println!("=== Figure 1(a): tags' relative frequencies vs number of posts ===");
        let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
        let series = fig1a_tag_frequencies(&corpus, 5, 10);
        println!(
            "resource {} ({} posts), tracked tags: {}",
            series.resource,
            corpus.full_sequence(series.resource).len(),
            series.tag_names.join(", ")
        );
        let labels: Vec<&str> = series.tag_names.iter().map(String::as_str).collect();
        println!("{}", render_series("posts", &labels, &series.rows));
    }

    if panel.contains('b') {
        println!("=== Figure 1(b): posts-per-resource distribution (log bins) ===");
        let resources = match scale {
            setup::Scale::Smoke => 2_000,
            setup::Scale::Default => 20_000,
            setup::Scale::Paper => 100_000,
        };
        let hist = fig1b_posts_distribution(resources, 2007);
        let mut table = TextTable::new(["posts (bin)", "resources"]);
        for (lo, hi, count) in &hist.bins {
            table.add_row([format!("{lo}-{hi}"), count.to_string()]);
        }
        println!("{}", table.render());
        println!(
            "heavy-tailed: {} (head bin {} resources vs tail bin {})",
            hist.is_heavy_tailed(),
            hist.bins.first().map(|b| b.2).unwrap_or(0),
            hist.bins.last().map(|b| b.2).unwrap_or(0)
        );
    }
}
