//! Reproduces Figure 7 of the paper:
//! (a) overall accuracy of resource–resource similarity (Kendall's τ against the
//!     taxonomy ground truth) vs budget, per strategy;
//! (b) the correlation between tagging quality and ranking accuracy across all
//!     runs (the paper reports > 98%).
//!
//! The quadratic pairwise-ranking pass and the DP runs execute on the
//! tagging-runtime executor (`--threads`, `TAGGING_THREADS`, or all available
//! cores); all output is bit-identical at any thread count. `--json` emits one
//! machine-readable report instead of the text tables — it carries no thread
//! count or timings (those go to stderr), so the CI matrix can diff it
//! byte-for-byte across thread counts.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_fig7 -- [--scale S] [--threads N] [--corpus PATH] [--json] [a|b]`

use serde::Value;
use tagging_bench::casestudy::{fig7_accuracy_sweep_with, quality_accuracy_correlation};
use tagging_bench::reporting::{fmt_f64, json_report, TextTable};
use tagging_bench::{corpus_path_from_args, has_flag, init_runtime, scale_from_args, setup, Scale};
use tagging_sim::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let json = has_flag(&args, "--json");
    let panel = args
        .iter()
        .find(|a| *a == "a" || *a == "b")
        .cloned()
        .unwrap_or_else(|| "ab".to_string());

    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    // The pairwise ranking is quadratic in the number of resources, so the
    // accuracy experiment runs on a prefix of the corpus (like the paper, which
    // uses the subset of resources categorised in the ODP).
    let scenario =
        Scenario::from_corpus(&corpus, &setup::scenario_params()).take(scale.accuracy_resources());
    // Budgets are scaled down proportionally to the resource subset.
    let ratio = scenario.len() as f64 / scale.num_resources() as f64;
    let budgets: Vec<usize> = scale
        .budgets()
        .iter()
        .map(|&b| ((b as f64) * ratio).round() as usize)
        .collect();
    let include_dp = scale != Scale::Paper;

    // Thread count on stderr only: stdout (text and JSON alike) must stay
    // byte-identical across `--threads` values — the contract the CI matrix
    // checks by diffing the fig7 JSON.
    eprintln!(
        "accuracy experiment on {} resources, budgets {budgets:?}, {} runtime thread(s)",
        scenario.len(),
        runtime.threads()
    );
    let points = fig7_accuracy_sweep_with(
        &runtime,
        &corpus,
        &scenario,
        &budgets,
        5,
        include_dp,
        scale.dp_table_cap(),
    );
    let corr = quality_accuracy_correlation(&points);

    if json {
        let json_points: Vec<Value> = points
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("strategy".to_string(), Value::String(p.strategy.clone())),
                    ("budget".to_string(), Value::UInt(p.budget as u64)),
                    ("quality".to_string(), Value::Float(p.quality)),
                    ("accuracy".to_string(), Value::Float(p.accuracy)),
                ])
            })
            .collect();
        println!(
            "{}",
            json_report(
                "fig7",
                &[
                    ("scale", Value::String(format!("{scale:?}").to_lowercase())),
                    ("resources", Value::UInt(scenario.len() as u64)),
                    (
                        "budgets",
                        Value::Array(budgets.iter().map(|&b| Value::UInt(b as u64)).collect()),
                    ),
                    ("include_dp", Value::Bool(include_dp)),
                ],
                &[
                    ("a", Value::Array(json_points)),
                    (
                        "b",
                        Value::Object(vec![(
                            "quality_accuracy_correlation".to_string(),
                            Value::Float(corr),
                        )]),
                    ),
                ],
            )
        );
        return;
    }

    println!(
        "accuracy experiment on {} resources, budgets {:?}",
        scenario.len(),
        budgets
    );

    if panel.contains('a') {
        println!("\n=== Figure 7(a): Kendall's τ accuracy vs Budget ===");
        let mut table = TextTable::new(["budget", "strategy", "accuracy (τ)", "quality"]);
        for p in &points {
            table.add_row([
                p.budget.to_string(),
                p.strategy.clone(),
                fmt_f64(p.accuracy, 4),
                fmt_f64(p.quality, 4),
            ]);
        }
        println!("{}", table.render());
    }

    if panel.contains('b') {
        println!("\n=== Figure 7(b): Accuracy vs Tagging Quality ===");
        let mut table = TextTable::new(["quality", "accuracy (τ)"]);
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.quality.partial_cmp(&b.quality).unwrap());
        for p in &sorted {
            table.add_row([fmt_f64(p.quality, 4), fmt_f64(p.accuracy, 4)]);
        }
        println!("{}", table.render());
        println!(
            "Pearson correlation between tagging quality and ranking accuracy: {corr:.3} \
             (paper reports > 0.98)"
        );
    }
}
