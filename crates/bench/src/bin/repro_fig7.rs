//! Reproduces Figure 7 of the paper:
//! (a) overall accuracy of resource–resource similarity (Kendall's τ against the
//!     taxonomy ground truth) vs budget, per strategy;
//! (b) the correlation between tagging quality and ranking accuracy across all
//!     runs (the paper reports > 98%).
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_fig7 -- [--scale S] [--threads N] [--corpus PATH] [a|b]`

use tagging_bench::casestudy::{fig7_accuracy_sweep, quality_accuracy_correlation};
use tagging_bench::reporting::{fmt_f64, TextTable};
use tagging_bench::{corpus_path_from_args, scale_from_args, setup, Scale};
use tagging_sim::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    tagging_bench::init_runtime(&args);
    let panel = args
        .iter()
        .find(|a| *a == "a" || *a == "b")
        .cloned()
        .unwrap_or_else(|| "ab".to_string());

    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    // The pairwise ranking is quadratic in the number of resources, so the
    // accuracy experiment runs on a prefix of the corpus (like the paper, which
    // uses the subset of resources categorised in the ODP).
    let scenario =
        Scenario::from_corpus(&corpus, &setup::scenario_params()).take(scale.accuracy_resources());
    // Budgets are scaled down proportionally to the resource subset.
    let ratio = scenario.len() as f64 / scale.num_resources() as f64;
    let budgets: Vec<usize> = scale
        .budgets()
        .iter()
        .map(|&b| ((b as f64) * ratio).round() as usize)
        .collect();
    let include_dp = scale != Scale::Paper;

    println!(
        "accuracy experiment on {} resources, budgets {:?}",
        scenario.len(),
        budgets
    );
    let points = fig7_accuracy_sweep(
        &corpus,
        &scenario,
        &budgets,
        5,
        include_dp,
        scale.dp_table_cap(),
    );

    if panel.contains('a') {
        println!("\n=== Figure 7(a): Kendall's τ accuracy vs Budget ===");
        let mut table = TextTable::new(["budget", "strategy", "accuracy (τ)", "quality"]);
        for p in &points {
            table.add_row([
                p.budget.to_string(),
                p.strategy.clone(),
                fmt_f64(p.accuracy, 4),
                fmt_f64(p.quality, 4),
            ]);
        }
        println!("{}", table.render());
    }

    if panel.contains('b') {
        println!("\n=== Figure 7(b): Accuracy vs Tagging Quality ===");
        let mut table = TextTable::new(["quality", "accuracy (τ)"]);
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.quality.partial_cmp(&b.quality).unwrap());
        for p in &sorted {
            table.add_row([fmt_f64(p.quality, 4), fmt_f64(p.accuracy, 4)]);
        }
        println!("{}", table.render());
        let corr = quality_accuracy_correlation(&points);
        println!(
            "Pearson correlation between tagging quality and ranking accuracy: {corr:.3} \
             (paper reports > 0.98)"
        );
    }
}
