//! Reproduces the dataset statistics quoted in the paper's introduction and
//! §V-A: the skew of posts across resources, the share of over-tagged resources
//! and wasted posts, the share of under-tagged resources, and how few posts
//! would be needed to salvage them.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_intro_stats -- [--scale S] [--threads N] [--corpus PATH]`

use tagging_bench::experiments::intro_statistics;
use tagging_bench::reporting::{fmt_f64, fmt_percent, TextTable};
use tagging_bench::{corpus_path_from_args, scale_from_args, setup};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    tagging_bench::init_runtime(&args);
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let stats = intro_statistics(&corpus);

    println!("=== Introduction / §V-A dataset statistics ===");
    let mut table = TextTable::new(["statistic", "this reproduction", "paper"]);
    table.add_row([
        "resources".to_string(),
        stats.num_resources.to_string(),
        "5,000".to_string(),
    ]);
    table.add_row([
        "total posts".to_string(),
        stats.total_posts.to_string(),
        "562,048".to_string(),
    ]);
    table.add_row([
        "initial (January) posts".to_string(),
        stats.total_initial_posts.to_string(),
        "148,471".to_string(),
    ]);
    table.add_row([
        "mean posts per resource".to_string(),
        fmt_f64(stats.mean_posts, 1),
        "112".to_string(),
    ]);
    table.add_row([
        "mean initial posts per resource".to_string(),
        fmt_f64(stats.mean_initial_posts, 1),
        "29.7".to_string(),
    ]);
    table.add_row([
        "mean stable point".to_string(),
        fmt_f64(stats.mean_stable_point, 1),
        "112 (range 50-200)".to_string(),
    ]);
    table.add_row([
        "resources that stabilise".to_string(),
        fmt_percent(stats.stabilised_fraction()),
        "100% (by sample construction)".to_string(),
    ]);
    table.add_row([
        "over-tagged resources (initially)".to_string(),
        format!(
            "{} ({})",
            stats.over_tagged_initial,
            fmt_percent(stats.over_tagged_fraction())
        ),
        "~7%".to_string(),
    ]);
    table.add_row([
        "posts wasted on over-tagged resources".to_string(),
        format!(
            "{} ({})",
            stats.wasted_posts,
            fmt_percent(stats.wasted_fraction)
        ),
        "~48%".to_string(),
    ]);
    table.add_row([
        "under-tagged resources (<= 10 posts initially)".to_string(),
        format!(
            "{} ({})",
            stats.under_tagged_initial,
            fmt_percent(stats.under_tagged_fraction())
        ),
        "~25%".to_string(),
    ]);
    table.add_row([
        "posts needed to salvage all under-tagged".to_string(),
        format!(
            "{} ({} of wasted posts)",
            stats.salvage_posts_needed,
            fmt_percent(stats.salvage_ratio())
        ),
        "~1% of wasted posts".to_string(),
    ]);
    println!("{}", table.render());
}
