//! Reproduces Table VII of the paper: for several subject resources, the
//! composition of the top-10 similar-resources lists (how many hits fall in the
//! subject's own category) under the initial rfds, FC, FP and the full data.
//!
//! Usage:
//! `cargo run --release -p tagging-bench --bin repro_table7 -- [--scale S] [--threads N] [--corpus PATH] [--json]`

use serde::Value;
use tagging_analysis::topk::category_hits;
use tagging_bench::casestudy::{pick_case_study_subjects, top_k_comparison_with};
use tagging_bench::reporting::{json_report, TextTable};
use tagging_bench::{corpus_path_from_args, has_flag, init_runtime, scale_from_args, setup};
use tagging_core::model::ResourceId;
use tagging_sim::scenario::Scenario;

/// One data row of the table, computed once and rendered as text or JSON at
/// the end (the blocks-then-render pattern of `repro_fig6`).
struct Row {
    subject: String,
    description: String,
    /// Same-topic hits under the initial rfds, FC, FP and the full data.
    hits: [usize; 4],
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let json = has_flag(&args, "--json");

    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let scenario =
        Scenario::from_corpus(&corpus, &setup::scenario_params()).take(scale.accuracy_resources());
    let budget = (scale.default_budget() as f64 * scenario.len() as f64
        / scale.num_resources() as f64)
        .round() as usize;

    let subjects = pick_case_study_subjects(&scenario, 4);
    let rows: Vec<Row> = subjects
        .into_iter()
        .map(|subject| {
            // Each comparison's rfd snapshots run on the runtime's threads.
            let comparison =
                top_k_comparison_with(&runtime, &corpus, &scenario, subject, 10, budget);
            let subject_topic = corpus.profiles[subject.index()].primary_topic;
            let same_topic =
                |id: ResourceId| corpus.profiles[id.index()].primary_topic == subject_topic;
            Row {
                subject: comparison.subject_name.clone(),
                description: corpus
                    .corpus
                    .resource(subject)
                    .map(|r| r.description.clone())
                    .unwrap_or_default(),
                hits: [
                    category_hits(&comparison.initial, same_topic),
                    category_hits(&comparison.fc, same_topic),
                    category_hits(&comparison.fp, same_topic),
                    category_hits(&comparison.ideal, same_topic),
                ],
            }
        })
        .collect();

    if json {
        let json_rows: Vec<Value> = rows
            .iter()
            .map(|row| {
                Value::Object(vec![
                    ("subject".to_string(), Value::String(row.subject.clone())),
                    (
                        "description".to_string(),
                        Value::String(row.description.clone()),
                    ),
                    ("initial".to_string(), Value::UInt(row.hits[0] as u64)),
                    ("fc".to_string(), Value::UInt(row.hits[1] as u64)),
                    ("fp".to_string(), Value::UInt(row.hits[2] as u64)),
                    ("ideal".to_string(), Value::UInt(row.hits[3] as u64)),
                ])
            })
            .collect();
        println!(
            "{}",
            json_report(
                "table7",
                &[
                    ("scale", Value::String(format!("{scale:?}").to_lowercase())),
                    ("threads", Value::UInt(runtime.threads() as u64)),
                    ("budget", Value::UInt(budget as u64)),
                ],
                &[("top10_composition", Value::Array(json_rows))],
            )
        );
    } else {
        let mut table = TextTable::new([
            "subject",
            "description",
            "same-topic hits: Jan 31",
            "FC",
            "FP",
            "Dec 31",
        ]);
        for row in &rows {
            table.add_row([
                row.subject.clone(),
                row.description.clone(),
                row.hits[0].to_string(),
                row.hits[1].to_string(),
                row.hits[2].to_string(),
                row.hits[3].to_string(),
            ]);
        }
        println!(
            "=== Table VII: top-10 composition for several subject resources (budget {budget}) ==="
        );
        println!("{}", table.render());
        println!(
            "Each cell counts how many of the subject's top-10 most similar resources\n\
             share its primary topic. The paper's Table VII shows the same pattern:\n\
             FP's composition closely matches the ideal (Dec 31) one, FC's does not."
        );
    }
}
