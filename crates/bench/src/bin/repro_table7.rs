//! Reproduces Table VII of the paper: for several subject resources, the
//! composition of the top-10 similar-resources lists (how many hits fall in the
//! subject's own category) under the initial rfds, FC, FP and the full data.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_table7 -- [--scale S]`

use tagging_analysis::topk::category_hits;
use tagging_bench::casestudy::{pick_case_study_subjects, top_k_comparison};
use tagging_bench::reporting::TextTable;
use tagging_bench::{scale_from_args, setup};
use tagging_core::model::ResourceId;
use tagging_sim::scenario::Scenario;

fn main() {
    let scale = scale_from_args(std::env::args().skip(1));
    let corpus = setup::build_corpus(scale);
    let scenario =
        Scenario::from_corpus(&corpus, &setup::scenario_params()).take(scale.accuracy_resources());
    let budget = (scale.default_budget() as f64 * scenario.len() as f64
        / scale.num_resources() as f64)
        .round() as usize;

    let subjects = pick_case_study_subjects(&scenario, 4);

    println!(
        "=== Table VII: top-10 composition for several subject resources (budget {budget}) ==="
    );
    let mut table = TextTable::new([
        "subject",
        "description",
        "same-topic hits: Jan 31",
        "FC",
        "FP",
        "Dec 31",
    ]);

    for subject in subjects {
        let comparison = top_k_comparison(&corpus, &scenario, subject, 10, budget);
        let subject_topic = corpus.profiles[subject.index()].primary_topic;
        let same_topic =
            |id: ResourceId| corpus.profiles[id.index()].primary_topic == subject_topic;
        table.add_row([
            comparison.subject_name.clone(),
            corpus
                .corpus
                .resource(subject)
                .map(|r| r.description.clone())
                .unwrap_or_default(),
            category_hits(&comparison.initial, same_topic).to_string(),
            category_hits(&comparison.fc, same_topic).to_string(),
            category_hits(&comparison.fp, same_topic).to_string(),
            category_hits(&comparison.ideal, same_topic).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Each cell counts how many of the subject's top-10 most similar resources\n\
         share its primary topic. The paper's Table VII shows the same pattern:\n\
         FP's composition closely matches the ideal (Dec 31) one, FC's does not."
    );
}
