//! Reproduces Table VI of the paper: the top-10 most similar resources for a
//! single under-tagged subject resource, comparing four rfd snapshots —
//! the initial posts ("Jan 31"), FC with a budget, FP with the same budget, and
//! the full data ("Dec 31", the ideal list).
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_table6 -- [--scale S] [--threads N] [--corpus PATH]`

use tagging_bench::casestudy::{pick_case_study_subjects, top_k_comparison_with};
use tagging_bench::reporting::{fmt_percent, TextTable};
use tagging_bench::{corpus_path_from_args, init_runtime, scale_from_args, setup};
use tagging_sim::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    let runtime = init_runtime(&args);
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let scenario =
        Scenario::from_corpus(&corpus, &setup::scenario_params()).take(scale.accuracy_resources());
    let budget = (scale.default_budget() as f64 * scenario.len() as f64
        / scale.num_resources() as f64)
        .round() as usize;

    let subject = pick_case_study_subjects(&scenario, 1)[0];
    // The rfd snapshots behind the comparison run on the runtime's threads;
    // the table itself is bit-identical at any thread count.
    let comparison = top_k_comparison_with(&runtime, &corpus, &scenario, subject, 10, budget);

    println!("=== Table VI: top-10 similar resources ===");
    println!(
        "subject: {} ({}), initial posts: {}, budget: {budget}",
        comparison.subject_name,
        corpus
            .corpus
            .resource(subject)
            .map(|r| r.description.clone())
            .unwrap_or_default(),
        scenario.initial[subject.index()].len()
    );

    let name_of = |id: tagging_core::model::ResourceId| -> String {
        corpus
            .corpus
            .resource(id)
            .map(|r| format!("{} [{}]", r.name, r.description))
            .unwrap_or_default()
    };

    let mut table = TextTable::new(["rank", "Jan 31 (initial)", "FC", "FP", "Dec 31 (ideal)"]);
    for rank in 0..10 {
        let cell = |list: &[tagging_analysis::topk::RankedResource]| {
            list.get(rank)
                .map(|r| name_of(r.resource))
                .unwrap_or_default()
        };
        table.add_row([
            (rank + 1).to_string(),
            cell(&comparison.initial),
            cell(&comparison.fc),
            cell(&comparison.fp),
            cell(&comparison.ideal),
        ]);
    }
    println!("{}", table.render());
    println!(
        "overlap with the ideal list: initial {}, FC {}, FP {}",
        fmt_percent(comparison.initial_overlap()),
        fmt_percent(comparison.fc_overlap()),
        fmt_percent(comparison.fp_overlap()),
    );
    println!(
        "(paper: FC matches 4/10 of the ideal list, FP matches 9/10 for www.myphysicslab.com)"
    );
}
