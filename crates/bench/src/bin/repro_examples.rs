//! Reproduces the paper's running example (Examples 1–3 and Tables I, II, IV):
//! the Google Earth / Picasa resources, their rfds, tagging qualities, and the
//! optimal assignment of a budget of 2 post tasks.
//!
//! Usage: `cargo run -p tagging-bench --bin repro_examples -- [--threads N]`

use tagging_bench::reporting::{fmt_f64, TextTable};
use tagging_core::model::{Post, ResourceId, TagDictionary};
use tagging_core::rfd::{rfd_of_prefix, Rfd};
use tagging_core::similarity::cosine;
use tagging_strategies::dp::{optimal_allocation, QualityTable};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    tagging_bench::init_runtime(&args);
    let mut dict = TagDictionary::new();
    let post = |names: &[&str], dict: &mut TagDictionary| {
        Post::from_names(dict, names.iter().copied()).unwrap()
    };

    // Table I: post sequences of r1 = Google Earth and r2 = Picasa.
    let r1_initial = vec![
        post(&["google", "earth"], &mut dict),
        post(&["google", "geographic"], &mut dict),
        post(&["earth"], &mut dict),
    ];
    let r2_initial = vec![
        post(&["pictures"], &mut dict),
        post(&["pictures"], &mut dict),
    ];

    let google = dict.get("google").unwrap();
    let earth = dict.get("earth").unwrap();
    let geographic = dict.get("geographic").unwrap();
    let pictures = dict.get("pictures").unwrap();

    // Table II: the stable rfds of the two resources.
    let phi1 = Rfd::from_weights([(google, 0.25), (geographic, 0.25), (earth, 0.5)]);
    let phi2 = Rfd::from_weights([(google, 0.33), (pictures, 0.67)]);

    println!("=== Table II: rfds and stable rfds ===");
    let mut table = TextTable::new(["vector", "google", "geographic", "earth", "pictures"]);
    let f1 = rfd_of_prefix(&r1_initial, 3);
    let f2 = rfd_of_prefix(&r2_initial, 2);
    for (name, rfd) in [
        ("F1(3)", &f1),
        ("phi1", &phi1),
        ("F2(2)", &f2),
        ("phi2", &phi2),
    ] {
        table.add_row([
            name.to_string(),
            fmt_f64(rfd.get(google), 2),
            fmt_f64(rfd.get(geographic), 2),
            fmt_f64(rfd.get(earth), 2),
            fmt_f64(rfd.get(pictures), 2),
        ]);
    }
    println!("{}", table.render());

    // Example 2: tagging qualities.
    let q1 = cosine(&f1, &phi1);
    let q2 = cosine(&f2, &phi2);
    println!("=== Example 2: tagging quality ===");
    println!("q1(3) = {q1:.3}  (paper: 0.953)");
    println!("q2(2) = {q2:.3}  (paper: 0.897)");
    println!("q(R)  = {:.3}  (paper: 0.925)\n", (q1 + q2) / 2.0);

    // Example 3 / Table IV: the next posts each resource would receive.
    let r1_future = vec![
        post(&["geographic", "earth"], &mut dict),
        post(&["google", "geographic"], &mut dict),
    ];
    let r2_future = vec![
        post(&["google", "pictures"], &mut dict),
        post(&["google"], &mut dict),
    ];

    let table_q = QualityTable::from_posts(
        &[r1_initial, r2_initial],
        &[r1_future, r2_future],
        &[phi1, phi2],
        2,
    );
    println!("=== Table IV: quality of resources for each assignment (B = 2) ===");
    let mut t4 = TextTable::new(["(x1, x2)", "q1(c1 + x1)", "q2(c2 + x2)", "q(c + x)"]);
    for (x1, x2) in [(0usize, 2usize), (1, 1), (2, 0)] {
        let q1 = table_q.quality(0, x1);
        let q2 = table_q.quality(1, x2);
        t4.add_row([
            format!("({x1}, {x2})"),
            fmt_f64(q1, 3),
            fmt_f64(q2, 3),
            fmt_f64((q1 + q2) / 2.0, 3),
        ]);
    }
    println!("{}", t4.render());

    let dp = optimal_allocation(&table_q, 2);
    println!(
        "DP optimal assignment: x = ({}, {}) with mean quality {:.3}  (paper: (1, 1), 0.990)",
        dp.allocation[0],
        dp.allocation[1],
        dp.mean_quality()
    );
    let _ = ResourceId(0);
}
