//! Reproduces Figure 3 of the paper: adjacent similarity and MA score of one
//! resource as it accumulates posts (ω = 20), plus the resulting stable point.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_fig3 -- [--scale S] [--threads N] [--corpus PATH]`

use tagging_bench::reporting::TextTable;
use tagging_bench::{
    corpus_path_from_args, experiments::fig3_stability_series, scale_from_args, setup,
};
use tagging_core::stability::StabilityParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    tagging_bench::init_runtime(&args);
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    // The paper's illustration uses ω = 20 and a threshold near 0.99.
    let params = StabilityParams::new(20, 0.99);
    let series = fig3_stability_series(&corpus, params);

    println!("=== Figure 3: MA score and stable rfd (ω = 20, τ = 0.99) ===");
    println!(
        "resource {} ({} posts), stable point: {:?}",
        series.resource,
        series.rows.len(),
        series.stable_point
    );

    let mut table = TextTable::new(["posts", "adjacent similarity", "MA score"]);
    for (k, adjacent, ma) in &series.rows {
        // Print every 5th row to keep the output readable.
        if k % 5 == 0 || Some(*k) == series.stable_point {
            table.add_row([
                k.to_string(),
                format!("{adjacent:.4}"),
                ma.map(|m| format!("{m:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(sp) = series.stable_point {
        println!("practically-stable rfd reached after {sp} posts (paper example: 100 posts)");
    } else {
        println!("this resource never reaches its stable point under (20, 0.99)");
    }
}
