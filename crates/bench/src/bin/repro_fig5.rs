//! Reproduces Figure 5 of the paper: tagging quality vs number of posts for a
//! "simple" resource (few significant tags, stabilises quickly) and a "complex"
//! resource (rich content, needs far more posts), illustrating why Fewest Posts
//! First buys large quality improvements on sparsely-tagged resources.
//!
//! Usage: `cargo run --release -p tagging-bench --bin repro_fig5 -- [--scale S] [--threads N] [--corpus PATH]`

use tagging_bench::reporting::TextTable;
use tagging_bench::{
    corpus_path_from_args, experiments::fig5_quality_curves, scale_from_args, setup,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(args.clone());
    tagging_bench::init_runtime(&args);
    let corpus = setup::load_or_generate_corpus(scale, corpus_path_from_args(&args).as_deref());
    let pair = fig5_quality_curves(&corpus);

    println!("=== Figure 5: quality vs number of posts ===");
    println!(
        "simple resource  {} (complexity {}), complex resource {} (complexity {})",
        pair.simple.0,
        corpus.profiles[pair.simple.0.index()].complexity,
        pair.complex.0,
        corpus.profiles[pair.complex.0.index()].complexity,
    );

    let mut table = TextTable::new(["posts", "quality (simple r_i)", "quality (complex r_j)"]);
    let len = pair.simple.1.len().min(pair.complex.1.len()).min(81);
    for k in (0..len).step_by(5) {
        table.add_row([
            k.to_string(),
            format!("{:.4}", pair.simple.1[k]),
            format!("{:.4}", pair.complex.1[k]),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The simple resource's curve rises (and flattens) earlier: giving a post\n\
         task to a sparsely-tagged resource yields a much larger quality\n\
         improvement than giving it to one that is already well described."
    );
}
