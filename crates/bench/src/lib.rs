//! # tagging-bench
//!
//! Benchmark harness and figure/table reproduction drivers for the ICDE 2013
//! paper *"On Incentive-based Tagging"*.
//!
//! * [`setup`] — experiment scales (smoke / default / paper), corpus and
//!   scenario construction;
//! * [`experiments`] — drivers for Figures 1, 3, 5 and 6;
//! * [`casestudy`] — drivers for Tables VI/VII and Figure 7;
//! * [`reporting`] — plain-text tables and series used by the `repro_*`
//!   binaries.
//!
//! Run `cargo run --release -p tagging-bench --bin repro_fig6 -- --scale default`
//! (and the other `repro_*` binaries) to regenerate each figure/table, or
//! `cargo bench -p tagging-bench` for the Criterion micro/macro benchmarks.
//!
//! ## Quick example
//!
//! ```
//! use tagging_bench::{scale_from_args, Scale};
//!
//! // Every repro_* binary accepts `--scale <smoke|default|paper>`.
//! let args = ["--scale", "smoke"].map(String::from);
//! assert_eq!(scale_from_args(args), Scale::Smoke);
//! // Unknown flags are ignored and the scale falls back to the default.
//! let args = ["--verbose"].map(String::from);
//! assert_eq!(scale_from_args(args), Scale::Default);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod casestudy;
pub mod experiments;
pub mod reporting;
pub mod setup;

pub use setup::Scale;

/// Parses the common `--scale <smoke|default|paper>` argument used by all
/// `repro_*` binaries; defaults to [`Scale::Default`]. Unknown arguments are
/// ignored so binaries can add their own flags.
pub fn scale_from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--scale" {
            if let Some(value) = args.next() {
                if let Some(scale) = Scale::parse(&value) {
                    return scale;
                }
                eprintln!("unknown scale '{value}', using default");
            }
        }
    }
    Scale::Default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_args_parses_and_defaults() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(scale_from_args(args(&["--scale", "smoke"])), Scale::Smoke);
        assert_eq!(scale_from_args(args(&["--scale", "paper"])), Scale::Paper);
        assert_eq!(scale_from_args(args(&["--scale", "bogus"])), Scale::Default);
        assert_eq!(scale_from_args(args(&[])), Scale::Default);
        assert_eq!(scale_from_args(args(&["--other", "x"])), Scale::Default);
    }
}
