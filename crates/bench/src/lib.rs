//! # tagging-bench
//!
//! Benchmark harness and figure/table reproduction drivers for the ICDE 2013
//! paper *"On Incentive-based Tagging"*.
//!
//! * [`setup`] — experiment scales (smoke / default / paper), corpus and
//!   scenario construction;
//! * [`experiments`] — drivers for Figures 1, 3, 5 and 6;
//! * [`casestudy`] — drivers for Tables VI/VII and Figure 7;
//! * [`reporting`] — plain-text tables and series used by the `repro_*`
//!   binaries.
//!
//! Run `cargo run --release -p tagging-bench --bin repro_fig6 -- --scale default`
//! (and the other `repro_*` binaries) to regenerate each figure/table, or
//! `cargo bench -p tagging-bench` for the Criterion micro/macro benchmarks.
//!
//! ## Quick example
//!
//! ```
//! use tagging_bench::{scale_from_args, Scale};
//!
//! // Every repro_* binary accepts `--scale <smoke|default|paper>`.
//! let args = ["--scale", "smoke"].map(String::from);
//! assert_eq!(scale_from_args(args), Scale::Smoke);
//! // Unknown flags are ignored and the scale falls back to the default.
//! let args = ["--verbose"].map(String::from);
//! assert_eq!(scale_from_args(args), Scale::Default);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod casestudy;
pub mod experiments;
pub mod reporting;
pub mod setup;

pub use setup::Scale;

/// Parses the common `--scale <smoke|default|paper>` argument used by all
/// `repro_*` binaries; defaults to [`Scale::Default`]. Unknown arguments are
/// ignored so binaries can add their own flags.
pub fn scale_from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--scale" {
            if let Some(value) = args.next() {
                if let Some(scale) = Scale::parse(&value) {
                    return scale;
                }
                eprintln!("unknown scale '{value}', using default");
            }
        }
    }
    Scale::Default
}

/// Parses the common `--threads <N>` argument shared by all `repro_*`
/// binaries. Returns `None` when the flag is absent or malformed.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => return Some(n),
                _ => {
                    eprintln!("--threads expects a positive integer, ignoring");
                    return None;
                }
            }
        }
    }
    None
}

/// True when the boolean flag `name` (e.g. `--json`) appears in `args`.
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses the common `--corpus <path>` argument shared by the `repro_*`
/// binaries: the fixed corpus is loaded from that file when it exists and
/// generated-then-saved there when it does not (see
/// [`setup::load_or_generate_corpus`]), so one corpus file can be shared
/// across every binary and the `tagging-server`'s scenario registration.
pub fn corpus_path_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--corpus" {
            match iter.next() {
                Some(path) => return Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("--corpus expects a file path, ignoring");
                    return None;
                }
            }
        }
    }
    None
}

/// Applies a `--threads N` argument (if present) as the process-default
/// thread count and returns the resulting [`tagging_runtime::Runtime`].
/// Without the flag the runtime follows `TAGGING_THREADS` /
/// `available_parallelism` as usual.
pub fn init_runtime(args: &[String]) -> tagging_runtime::Runtime {
    if let Some(threads) = threads_from_args(args) {
        tagging_runtime::set_default_threads(threads);
    }
    tagging_runtime::Runtime::from_env()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_args_parses_and_defaults() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(scale_from_args(args(&["--scale", "smoke"])), Scale::Smoke);
        assert_eq!(scale_from_args(args(&["--scale", "paper"])), Scale::Paper);
        assert_eq!(scale_from_args(args(&["--scale", "bogus"])), Scale::Default);
        assert_eq!(scale_from_args(args(&[])), Scale::Default);
        assert_eq!(scale_from_args(args(&["--other", "x"])), Scale::Default);
        // The CI smoke step spells it `--scale small`.
        assert_eq!(scale_from_args(args(&["--scale", "small"])), Scale::Smoke);
    }

    #[test]
    fn threads_and_flags_parse() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(&args(&["--threads", "8"])), Some(8));
        assert_eq!(
            threads_from_args(&args(&["--scale", "smoke", "--threads", "2"])),
            Some(2)
        );
        assert_eq!(threads_from_args(&args(&["--threads", "zero"])), None);
        assert_eq!(threads_from_args(&args(&["--threads", "0"])), None);
        assert_eq!(threads_from_args(&args(&[])), None);
        assert!(has_flag(&args(&["--json"]), "--json"));
        assert!(!has_flag(&args(&["--jsonish"]), "--json"));
    }
}
