//! Experiment drivers for the paper's §V-C case studies: the top-10 similar
//! resources tables (Tables VI and VII) and the ranking-accuracy experiment
//! (Figure 7).

use tagging_analysis::accuracy::{ranking_accuracy_with, rfds_after_allocation};
use tagging_analysis::correlation::pearson;
use tagging_analysis::topk::{overlap_fraction, top_k_similar, RankedResource};
use tagging_core::model::{Post, ResourceId};
use tagging_core::rfd::{rfd_of_prefix, Rfd};
use tagging_runtime::Runtime;
use tagging_sim::engine::{run_dp_capped_with, run_strategy, RunConfig};
use tagging_sim::metrics::{delivered_posts, mean_quality};
use tagging_sim::scenario::Scenario;
use tagging_strategies::framework::{run_allocation, ReplaySource};
use tagging_strategies::StrategyKind;

use delicious_sim::generator::SyntheticCorpus;

/// The four rfd snapshots the paper compares in Tables VI/VII:
/// initial posts only, FC-allocated, FP-allocated, and the full data.
#[derive(Debug, Clone)]
pub struct TopKComparison {
    /// The subject resource of the query.
    pub subject: ResourceId,
    /// Human-readable name of the subject resource.
    pub subject_name: String,
    /// Top-k under the initial ("Jan 31") rfds.
    pub initial: Vec<RankedResource>,
    /// Top-k after a budget allocated by FC.
    pub fc: Vec<RankedResource>,
    /// Top-k after the same budget allocated by FP.
    pub fp: Vec<RankedResource>,
    /// Top-k under the full-data ("Dec 31") rfds — the ideal list.
    pub ideal: Vec<RankedResource>,
}

impl TopKComparison {
    /// Overlap of the FC list with the ideal list (fraction of shared entries).
    pub fn fc_overlap(&self) -> f64 {
        overlap_fraction(&self.fc, &self.ideal)
    }

    /// Overlap of the FP list with the ideal list.
    pub fn fp_overlap(&self) -> f64 {
        overlap_fraction(&self.fp, &self.ideal)
    }

    /// Overlap of the initial list with the ideal list.
    pub fn initial_overlap(&self) -> f64 {
        overlap_fraction(&self.initial, &self.ideal)
    }
}

/// Builds the rfds of every resource under a given strategy and budget,
/// restricted to the scenario's resources.
fn rfds_under_strategy(
    scenario: &Scenario,
    kind: StrategyKind,
    budget: usize,
    omega: usize,
    seed: u64,
) -> Vec<Rfd> {
    let mut strategy = kind.build(omega, seed);
    let mut source = ReplaySource::new(scenario.future.clone());
    let outcome = run_allocation(
        strategy.as_mut(),
        &mut source,
        &scenario.initial,
        &scenario.popularity,
        budget,
    );
    let delivered: Vec<Vec<Post>> = {
        let mut d: Vec<Vec<Post>> = vec![Vec::new(); scenario.len()];
        for step in &outcome.trace {
            if let Some(post) = &step.post {
                d[step.resource.index()].push(post.clone());
            }
        }
        d
    };
    rfds_after_allocation(&scenario.initial, &delivered)
}

/// Runs one Table-VI style comparison for a single subject resource.
///
/// `corpus` supplies the full sequences (the "Dec 31" ideal rfds) and resource
/// names; `scenario` must have been derived from the same corpus.
pub fn top_k_comparison(
    corpus: &SyntheticCorpus,
    scenario: &Scenario,
    subject: ResourceId,
    k: usize,
    budget: usize,
) -> TopKComparison {
    top_k_comparison_with(&Runtime::from_env(), corpus, scenario, subject, k, budget)
}

/// [`top_k_comparison`] on an explicit [`Runtime`]: the per-resource rfd
/// snapshots (initial and ideal) and the two independent allocation replays
/// (FC, FP) run in parallel. Every piece is a pure function of its inputs, so
/// the comparison is bit-identical at any thread count.
pub fn top_k_comparison_with(
    runtime: &Runtime,
    corpus: &SyntheticCorpus,
    scenario: &Scenario,
    subject: ResourceId,
    k: usize,
    budget: usize,
) -> TopKComparison {
    assert!(
        subject.index() < scenario.len(),
        "subject {subject} outside the scenario"
    );
    let initial_rfds: Vec<Rfd> =
        runtime.par_map(&scenario.initial, |posts| rfd_of_prefix(posts, posts.len()));
    let ideal_rfds: Vec<Rfd> = runtime.par_map_indexed(scenario.len(), |i| {
        let full = corpus.full_sequence(ResourceId(i as u32));
        rfd_of_prefix(full, full.len())
    });
    let mut strategy_rfds = runtime.par_map(&[StrategyKind::Fc, StrategyKind::Fp], |&kind| {
        rfds_under_strategy(scenario, kind, budget, 5, 17)
    });
    let fp_rfds = strategy_rfds.pop().expect("FP snapshot present");
    let fc_rfds = strategy_rfds.pop().expect("FC snapshot present");

    let subject_name = corpus
        .corpus
        .resource(subject)
        .map(|r| r.name.clone())
        .unwrap_or_default();

    TopKComparison {
        subject,
        subject_name,
        initial: top_k_similar(subject, &initial_rfds, k),
        fc: top_k_similar(subject, &fc_rfds, k),
        fp: top_k_similar(subject, &fp_rfds, k),
        ideal: top_k_similar(subject, &ideal_rfds, k),
    }
}

/// Picks interesting subject resources for the Table VI/VII case studies:
/// resources that are clearly under-tagged initially (so the initial list is
/// poor) but have rich full sequences (so the ideal list is meaningful).
pub fn pick_case_study_subjects(scenario: &Scenario, count: usize) -> Vec<ResourceId> {
    let mut candidates: Vec<(usize, ResourceId)> = (0..scenario.len())
        .filter(|&i| !scenario.future[i].is_empty())
        .map(|i| (scenario.initial[i].len(), ResourceId(i as u32)))
        .collect();
    candidates.sort_by_key(|&(c, id)| (c, id.0));
    candidates
        .into_iter()
        .take(count)
        .map(|(_, id)| id)
        .collect()
}

/// One point of the Figure 7 experiments: a strategy at a budget, its mean
/// tagging quality and its ranking accuracy (Kendall's τ against the taxonomy).
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Strategy name.
    pub strategy: String,
    /// Budget of the run.
    pub budget: usize,
    /// Mean tagging quality after the run.
    pub quality: f64,
    /// Kendall's τ ranking accuracy after the run.
    pub accuracy: f64,
}

/// Runs the Figure 7(a) experiment: for every strategy and budget, the ranking
/// accuracy of pairwise similarities against the taxonomy ground truth.
///
/// The DP optimum is included when `include_dp` is set.
pub fn fig7_accuracy_sweep(
    corpus: &SyntheticCorpus,
    scenario: &Scenario,
    budgets: &[usize],
    omega: usize,
    include_dp: bool,
    dp_table_cap: usize,
) -> Vec<AccuracyPoint> {
    fig7_accuracy_sweep_with(
        &Runtime::from_env(),
        corpus,
        scenario,
        budgets,
        omega,
        include_dp,
        dp_table_cap,
    )
}

/// [`fig7_accuracy_sweep`] on an explicit [`Runtime`]: the DP run (quality
/// table + chunked recurrence) and the quadratic pairwise-ranking pass of
/// every point run on the runtime's threads, bit-identical at any thread
/// count. The points themselves are produced in the fixed
/// budget-major/strategy-minor order whatever the thread count.
#[allow(clippy::too_many_arguments)]
pub fn fig7_accuracy_sweep_with(
    runtime: &Runtime,
    corpus: &SyntheticCorpus,
    scenario: &Scenario,
    budgets: &[usize],
    omega: usize,
    include_dp: bool,
    dp_table_cap: usize,
) -> Vec<AccuracyPoint> {
    let mut points = Vec::new();
    for &budget in budgets {
        let config = RunConfig {
            budget,
            omega,
            seed: 1,
        };
        if include_dp {
            let metrics = run_dp_capped_with(scenario, &config, dp_table_cap, runtime);
            let delivered: Vec<Vec<Post>> = (0..scenario.len())
                .map(|i| {
                    let take = (metrics.allocation[i] as usize).min(scenario.future[i].len());
                    scenario.future[i][..take].to_vec()
                })
                .collect();
            let rfds = rfds_after_allocation(&scenario.initial, &delivered);
            points.push(AccuracyPoint {
                strategy: "DP".to_string(),
                budget,
                quality: metrics.mean_quality,
                accuracy: ranking_accuracy_with(runtime, &rfds, &corpus.taxonomy),
            });
        }
        for kind in StrategyKind::ALL {
            let mut strategy = kind.build(omega, 1);
            let mut source = ReplaySource::new(scenario.future.clone());
            let outcome = run_allocation(
                strategy.as_mut(),
                &mut source,
                &scenario.initial,
                &scenario.popularity,
                budget,
            );
            let delivered = delivered_posts(scenario, &outcome);
            let rfds = rfds_after_allocation(&scenario.initial, &delivered);
            points.push(AccuracyPoint {
                strategy: kind.name().to_string(),
                budget,
                quality: mean_quality(scenario, &delivered),
                accuracy: ranking_accuracy_with(runtime, &rfds, &corpus.taxonomy),
            });
        }
    }
    points
}

/// The Figure 7(b) headline number: the Pearson correlation between tagging
/// quality and ranking accuracy across all runs (the paper reports > 98%).
pub fn quality_accuracy_correlation(points: &[AccuracyPoint]) -> f64 {
    let quality: Vec<f64> = points.iter().map(|p| p.quality).collect();
    let accuracy: Vec<f64> = points.iter().map(|p| p.accuracy).collect();
    pearson(&quality, &accuracy)
}

/// Runs a single strategy and reports its quality — a small helper for the
/// ablation benches that compare similarity metrics and data-structure choices.
pub fn quality_of_strategy(scenario: &Scenario, kind: StrategyKind, budget: usize) -> f64 {
    let config = RunConfig {
        budget,
        omega: 5,
        seed: 1,
    };
    run_strategy(scenario, kind, &config).mean_quality
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{scenario_params, smoke_corpus};
    use tagging_sim::scenario::Scenario;

    fn small_setup() -> (&'static SyntheticCorpus, Scenario) {
        let corpus = smoke_corpus();
        let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(60);
        (corpus, scenario)
    }

    #[test]
    fn case_study_subjects_are_under_tagged() {
        let (_corpus, scenario) = small_setup();
        let subjects = pick_case_study_subjects(&scenario, 4);
        assert_eq!(subjects.len(), 4);
        let median_initial = {
            let mut counts: Vec<usize> = scenario.initial.iter().map(Vec::len).collect();
            counts.sort_unstable();
            counts[counts.len() / 2]
        };
        for s in &subjects {
            assert!(scenario.initial[s.index()].len() <= median_initial);
        }
    }

    #[test]
    fn top_k_comparison_fp_at_least_as_good_as_initial() {
        let (corpus, scenario) = small_setup();
        let subject = pick_case_study_subjects(&scenario, 1)[0];
        let comparison = top_k_comparison(corpus, &scenario, subject, 10, 400);
        assert_eq!(comparison.subject, subject);
        assert_eq!(comparison.ideal.len(), 10);
        assert!(!comparison.subject_name.is_empty());
        // FP uses the budget to enrich under-tagged resources, so its list should
        // match the ideal at least as well as the untouched initial list.
        assert!(
            comparison.fp_overlap() >= comparison.initial_overlap() - 1e-9,
            "FP overlap {} vs initial {}",
            comparison.fp_overlap(),
            comparison.initial_overlap()
        );
    }

    #[test]
    fn fig7_accuracy_correlates_with_quality() {
        let (corpus, _) = small_setup();
        // Use a small sub-scenario: the pairwise ranking is quadratic in n.
        let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(40);
        let points = fig7_accuracy_sweep(corpus, &scenario, &[0, 100, 300], 5, false, 0);
        assert_eq!(points.len(), 3 * StrategyKind::ALL.len());
        for p in &points {
            assert!((-1.0..=1.0).contains(&p.accuracy));
            assert!((0.0..=1.0).contains(&p.quality));
        }
        let corr = quality_accuracy_correlation(&points);
        assert!(
            corr > 0.3,
            "quality and ranking accuracy should be positively correlated, got {corr}"
        );
    }

    #[test]
    fn top_k_comparison_is_bit_identical_across_thread_counts() {
        let (corpus, scenario) = small_setup();
        let subject = pick_case_study_subjects(&scenario, 1)[0];
        let reference =
            top_k_comparison_with(&Runtime::sequential(), corpus, &scenario, subject, 10, 200);
        for threads in [2, 8] {
            let parallel =
                top_k_comparison_with(&Runtime::new(threads), corpus, &scenario, subject, 10, 200);
            assert_eq!(parallel.initial, reference.initial, "threads {threads}");
            assert_eq!(parallel.fc, reference.fc, "threads {threads}");
            assert_eq!(parallel.fp, reference.fp, "threads {threads}");
            assert_eq!(parallel.ideal, reference.ideal, "threads {threads}");
        }
    }

    #[test]
    fn fig7_sweep_is_bit_identical_across_thread_counts() {
        let (corpus, _) = small_setup();
        let scenario = Scenario::from_corpus(corpus, &scenario_params()).take(30);
        let budgets = [0, 60];
        let reference = fig7_accuracy_sweep_with(
            &Runtime::sequential(),
            corpus,
            &scenario,
            &budgets,
            5,
            true,
            60,
        );
        for threads in [2, 8] {
            let parallel = fig7_accuracy_sweep_with(
                &Runtime::new(threads),
                corpus,
                &scenario,
                &budgets,
                5,
                true,
                60,
            );
            assert_eq!(parallel.len(), reference.len(), "threads {threads}");
            for (p, r) in parallel.iter().zip(&reference) {
                assert_eq!(p.strategy, r.strategy, "threads {threads}");
                assert_eq!(p.budget, r.budget, "threads {threads}");
                assert_eq!(
                    p.quality.to_bits(),
                    r.quality.to_bits(),
                    "threads {threads}: {} quality diverged",
                    p.strategy
                );
                assert_eq!(
                    p.accuracy.to_bits(),
                    r.accuracy.to_bits(),
                    "threads {threads}: {} accuracy diverged",
                    p.strategy
                );
            }
        }
    }

    #[test]
    fn quality_of_strategy_helper_runs() {
        let (_corpus, scenario) = small_setup();
        let q = quality_of_strategy(&scenario, StrategyKind::Fp, 100);
        assert!((0.0..=1.0).contains(&q));
    }
}
