//! Property and crash-shape tests for the durable store: WAL record codecs
//! must round-trip arbitrary events, and recovery must survive every way a
//! segment can be damaged at the tail — truncation mid-record, a corrupted
//! checksum, a zero-length file — by keeping the valid prefix and never
//! panicking or losing acknowledged earlier records.

use proptest::prelude::*;
use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use tagging_persist::record::{frame, scan, WAL_MAGIC};
use tagging_persist::{
    snapshot, CorpusOrigin, PersistOptions, PersistStore, Registration, SessionState, WalEvent,
};
use tagging_runtime::FlushPolicy;
use tagging_sim::session::{CompletionReport, SessionEvent};

/// SplitMix64 — derives the unbounded variety of event payloads from one
/// proptest-chosen seed, so the generator needs nothing beyond integer
/// strategies.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn registration_from(seed: u64) -> Registration {
    let source = if mix(seed ^ 1).is_multiple_of(2) {
        CorpusOrigin::Generate {
            resources: mix(seed ^ 2) % 1000,
            seed: mix(seed ^ 3),
        }
    } else {
        CorpusOrigin::Path(format!("corpora/{}.json", mix(seed ^ 4) % 97))
    };
    Registration {
        strategy: ["FP", "RR", "MU", "FP-MU", "FC"][(mix(seed ^ 5) % 5) as usize].to_string(),
        budget: mix(seed ^ 6) % 1_000_000,
        omega: mix(seed ^ 7) % 50,
        seed: mix(seed ^ 8),
        source,
        stability_window: mix(seed ^ 9) % 100,
        stability_tau: (mix(seed ^ 10) % 1000) as f64 / 1000.0,
        under_tagged_threshold: mix(seed ^ 11) % 100,
    }
}

fn event_from(kind: u8, session: u64, seed: u64) -> WalEvent {
    match kind % 4 {
        0 => WalEvent::Register {
            session,
            registration: registration_from(seed),
        },
        1 => WalEvent::Session {
            session,
            event: SessionEvent::Lease {
                k: (mix(seed) % 10_000) as usize,
            },
        },
        2 => {
            let count = mix(seed ^ 12) % 6;
            let reports = (0..count)
                .map(|i| {
                    let r = mix(seed ^ (100 + i));
                    CompletionReport {
                        task_id: r % 1_000_000,
                        tags: match r % 3 {
                            0 => None,
                            1 => Some(vec![]),
                            _ => Some(
                                (0..(r % 4 + 1))
                                    .map(|t| format!("tag-{}", mix(r ^ t) % 50))
                                    .collect(),
                            ),
                        },
                    }
                })
                .collect();
            WalEvent::Session {
                session,
                event: SessionEvent::Report { reports },
            }
        }
        _ => WalEvent::CleanShutdown,
    }
}

fn segment_of(events: &[WalEvent]) -> Vec<u8> {
    let mut bytes = WAL_MAGIC.to_vec();
    for event in events {
        bytes.extend_from_slice(&frame(&event.encode()));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn wal_events_round_trip_through_the_codec(
        specs in proptest::collection::vec((0u8..4, 0u64..64, 0u64..u64::MAX), 0..20)
    ) {
        for (kind, session, seed) in specs {
            let event = event_from(kind, session, seed);
            let decoded = WalEvent::decode(&event.encode());
            prop_assert_eq!(decoded.as_ref(), Ok(&event));
        }
    }

    #[test]
    fn truncated_segments_recover_the_valid_prefix(
        specs in proptest::collection::vec((0u8..4, 0u64..64, 0u64..u64::MAX), 1..12),
        cut_seed in 0u64..u64::MAX,
    ) {
        let events: Vec<WalEvent> = specs
            .into_iter()
            .map(|(kind, session, seed)| event_from(kind, session, seed))
            .collect();
        let bytes = segment_of(&events);
        let cut = (mix(cut_seed) % bytes.len() as u64) as usize;

        let segment = scan(&bytes[..cut], WAL_MAGIC);
        // Valid records are a prefix of the originals, decodable, and the
        // valid length never exceeds the cut.
        prop_assert!(segment.valid_len <= cut as u64);
        prop_assert!(segment.records.len() <= events.len());
        for (record, original) in segment.records.iter().zip(&events) {
            prop_assert_eq!(&WalEvent::decode(record).unwrap(), original);
        }
        // A cut strictly inside the byte stream is torn unless it landed
        // exactly on a record boundary.
        let full = scan(&bytes, WAL_MAGIC);
        prop_assert!(full.is_clean());
        prop_assert_eq!(full.records.len(), events.len());
    }

    #[test]
    fn corrupted_bytes_never_panic_and_keep_a_decodable_prefix(
        specs in proptest::collection::vec((0u8..4, 0u64..64, 0u64..u64::MAX), 1..10),
        position_seed in 0u64..u64::MAX,
        flip in 1u8..=255,
    ) {
        let events: Vec<WalEvent> = specs
            .into_iter()
            .map(|(kind, session, seed)| event_from(kind, session, seed))
            .collect();
        let mut bytes = segment_of(&events);
        let position = (mix(position_seed) % bytes.len() as u64) as usize;
        bytes[position] ^= flip;

        let segment = scan(&bytes, WAL_MAGIC);
        // However the flip lands, the scan terminates, reports at most the
        // original records, and every surviving record decodes to one of the
        // originals in order (a flip can only invalidate a suffix).
        prop_assert!(segment.records.len() <= events.len());
        let corrupt_record = bytes_to_record_index(&events, position);
        for (i, record) in segment.records.iter().enumerate() {
            if Some(i) == corrupt_record {
                // The CRC of the corrupted record matched only if the flip
                // hit dead framing bytes — impossible: every byte of a frame
                // participates (length, crc, payload all checked).
                prop_assert!(false, "corrupted record {i} survived the scan");
            }
            prop_assert_eq!(&WalEvent::decode(record).unwrap(), &events[i]);
        }
    }
}

/// Which record's frame does byte `position` fall into? `None` for the magic.
fn bytes_to_record_index(events: &[WalEvent], position: usize) -> Option<usize> {
    let mut offset = WAL_MAGIC.len();
    for (i, event) in events.iter().enumerate() {
        let frame_len = 8 + event.encode().len();
        if position < offset + frame_len {
            return (position >= offset).then_some(i);
        }
        offset += frame_len;
    }
    None
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tagging-persist-it-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn store_options(dir: &Path) -> PersistOptions {
    PersistOptions {
        data_dir: dir.to_path_buf(),
        shards: 1,
        snapshot_every: 1_000,
        flush: FlushPolicy::Never,
        flush_interval_ms: 5,
        compact_interval_ms: 0,
    }
}

fn sample_registration() -> Registration {
    Registration {
        strategy: "RR".into(),
        budget: 40,
        omega: 5,
        seed: 3,
        source: CorpusOrigin::Generate {
            resources: 8,
            seed: 3,
        },
        stability_window: 15,
        stability_tau: 0.999,
        under_tagged_threshold: 10,
    }
}

/// The single shard's active WAL file (the store keeps exactly one).
fn active_wal(dir: &Path) -> PathBuf {
    let shard = dir.join("shard-000");
    let mut wals: Vec<PathBuf> = fs::read_dir(&shard)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(wals.len(), 1, "expected one active WAL in {shard:?}");
    wals.pop().unwrap()
}

fn seed_store(dir: &Path, leases: usize) {
    let (store, _) = PersistStore::open(&store_options(dir)).unwrap();
    store
        .append(
            0,
            &WalEvent::Register {
                session: 1,
                registration: sample_registration(),
            },
        )
        .unwrap();
    for _ in 0..leases {
        store
            .append(
                0,
                &WalEvent::Session {
                    session: 1,
                    event: SessionEvent::Lease { k: 2 },
                },
            )
            .unwrap();
    }
}

#[test]
fn a_torn_final_record_is_truncated_not_fatal() {
    let dir = temp_dir("torn");
    seed_store(&dir, 3);
    // Tear the last record: chop off its final two bytes.
    let wal = active_wal(&dir);
    let len = fs::metadata(&wal).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(len - 2)
        .unwrap();

    let (_, recovered) = PersistStore::open(&store_options(&dir)).unwrap();
    assert!(!recovered.clean_shutdown);
    assert_eq!(recovered.sessions.len(), 1);
    // Two of the three leases survive; the torn third is discarded.
    assert_eq!(
        recovered.sessions[0].1.events,
        vec![SessionEvent::Lease { k: 2 }, SessionEvent::Lease { k: 2 }]
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_zero_length_wal_segment_recovers_as_empty() {
    let dir = temp_dir("zero");
    seed_store(&dir, 1);
    // Truncate the active WAL to zero bytes — not even the magic survives.
    // The only snapshot is the empty one written when the store was first
    // opened, so recovery must succeed with no sessions and no error.
    OpenOptions::new()
        .write(true)
        .open(active_wal(&dir))
        .unwrap()
        .set_len(0)
        .unwrap();

    let (_, recovered) = PersistStore::open(&store_options(&dir)).unwrap();
    assert!(recovered.sessions.is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_snapshot_anchors_recovery_when_the_wal_is_lost() {
    let dir = temp_dir("anchor");
    {
        let (store, _) = PersistStore::open(&store_options(&dir)).unwrap();
        store
            .append(
                0,
                &WalEvent::Register {
                    session: 1,
                    registration: sample_registration(),
                },
            )
            .unwrap();
        store
            .append(
                0,
                &WalEvent::Session {
                    session: 1,
                    event: SessionEvent::Lease { k: 2 },
                },
            )
            .unwrap();
        // Compact: the snapshot now holds the session; the WAL is empty.
        store.compact().unwrap();
        // One post-compaction event, then die without shutdown.
        store
            .append(
                0,
                &WalEvent::Session {
                    session: 1,
                    event: SessionEvent::Lease { k: 3 },
                },
            )
            .unwrap();
    }
    // Zero out the active WAL: the post-compaction event is lost, but the
    // snapshotted state must survive.
    OpenOptions::new()
        .write(true)
        .open(active_wal(&dir))
        .unwrap()
        .set_len(0)
        .unwrap();

    let (_, recovered) = PersistStore::open(&store_options(&dir)).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(
        recovered.sessions[0].1.events,
        vec![SessionEvent::Lease { k: 2 }]
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_corrupted_snapshot_falls_back_to_an_older_generation() {
    let dir = temp_dir("snapfall");
    seed_store(&dir, 2);
    let shard = dir.join("shard-000");

    // Forge a newer-generation snapshot that is invalid. Recovery must skip
    // it and use the older valid generation (snapshot + its WAL events).
    fs::write(shard.join("snap-9999999999.snap"), b"TAGSNP01garbage").unwrap();
    let (_, recovered) = PersistStore::open(&store_options(&dir)).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].1.events.len(), 2);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn leftover_tmp_files_are_ignored_and_cleaned() {
    let dir = temp_dir("tmpclean");
    seed_store(&dir, 1);
    let shard = dir.join("shard-000");
    fs::write(shard.join("snap-0000000042.tmp"), b"half-written").unwrap();

    let (_, recovered) = PersistStore::open(&store_options(&dir)).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    let leftovers: Vec<String> = fs::read_dir(&shard)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "tmp debris survived: {leftovers:?}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_files_reject_every_truncation() {
    // Snapshot validation is all-or-nothing: unlike WALs, a torn snapshot is
    // invalid at any cut point.
    let sessions = HashMap::from([(
        5u64,
        SessionState {
            registration: sample_registration(),
            events: vec![SessionEvent::Lease { k: 1 }],
        },
    )]);
    let bytes = snapshot::encode(&sessions);
    assert_eq!(snapshot::decode(&bytes), Some(sessions));
    for cut in 0..bytes.len() {
        assert!(snapshot::decode(&bytes[..cut]).is_none(), "cut {cut}");
    }
}
