//! The compactor-vs-appender race, pinned by property: a maintenance thread
//! hammering `compact_tick` / `flush_tick` (exactly what the `wal-compactor`
//! and `wal-flusher` tenants execute) while the test appends an arbitrary
//! valid event sequence must never lose or reorder an event — the journal
//! recovered after a reopen is identical to the journal that was appended.

use proptest::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tagging_persist::{
    CorpusOrigin, PersistOptions, PersistStore, Registration, SessionState, WalEvent,
};
use tagging_runtime::FlushPolicy;
use tagging_sim::session::{CompletionReport, SessionEvent};

/// SplitMix64 — derives event payloads from one proptest-chosen seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn registration_from(seed: u64) -> Registration {
    Registration {
        strategy: ["FP", "RR", "MU", "FP-MU", "FC"][(mix(seed ^ 5) % 5) as usize].to_string(),
        budget: mix(seed ^ 6) % 1_000_000,
        omega: mix(seed ^ 7) % 50,
        seed: mix(seed ^ 8),
        source: CorpusOrigin::Generate {
            resources: mix(seed ^ 2) % 1000,
            seed: mix(seed ^ 3),
        },
        stability_window: mix(seed ^ 9) % 100,
        stability_tau: (mix(seed ^ 10) % 1000) as f64 / 1000.0,
        under_tagged_threshold: mix(seed ^ 11) % 100,
    }
}

fn session_event_from(kind: u8, seed: u64) -> SessionEvent {
    if kind.is_multiple_of(2) {
        SessionEvent::Lease {
            k: (mix(seed) % 10_000) as usize,
        }
    } else {
        let count = mix(seed ^ 12) % 4;
        SessionEvent::Report {
            reports: (0..count)
                .map(|i| {
                    let r = mix(seed ^ (100 + i));
                    CompletionReport {
                        task_id: r % 1_000_000,
                        tags: r
                            .is_multiple_of(2)
                            .then(|| (0..(r % 3 + 1)).map(|t| format!("t-{t}")).collect()),
                    }
                })
                .collect(),
        }
    }
}

/// A process-unique scratch directory per proptest case.
fn case_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "tagging-persist-race-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    // Each case spawns threads; a modest count keeps the suite quick while
    // still sweeping cadence × policy × sequence shapes.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compactor_racing_appender_never_loses_or_reorders_events(
        specs in proptest::collection::vec((0u8..8, 0u64..5, 0u64..u64::MAX), 1..120),
        snapshot_every in 1u64..6,
        group in 0u8..2,
    ) {
        let group = group == 1;
        let dir = case_dir();
        let options = PersistOptions {
            data_dir: dir.clone(),
            shards: 1,
            snapshot_every,
            flush: if group { FlushPolicy::Group } else { FlushPolicy::Never },
            flush_interval_ms: 1,
            compact_interval_ms: 1,
        };
        let (store, _) = PersistStore::open(&options).unwrap();
        let store = Arc::new(store);

        // The maintenance thread runs the tenants' tick functions as fast as
        // it can — a far harsher interleaving than the periodic scheduler.
        let stop = Arc::new(AtomicBool::new(false));
        let maintenance = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store.compact_tick();
                    store.flush_tick();
                    std::thread::yield_now();
                }
            })
        };

        // Append a derived valid sequence (Register always precedes Session
        // events for an id) while mirroring the expected journal.
        let mut expected: HashMap<u64, SessionState> = HashMap::new();
        for (kind, session, seed) in specs {
            let event = if kind % 4 == 0 || !expected.contains_key(&session) {
                WalEvent::Register {
                    session,
                    registration: registration_from(seed),
                }
            } else {
                WalEvent::Session {
                    session,
                    event: session_event_from(kind, seed),
                }
            };
            match &event {
                WalEvent::Register { session, registration } => {
                    expected.insert(*session, SessionState {
                        registration: registration.clone(),
                        events: Vec::new(),
                    });
                }
                WalEvent::Session { session, event } => {
                    expected.get_mut(session).unwrap().events.push(event.clone());
                }
                WalEvent::CleanShutdown => {}
            }
            store.append(0, &event).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        maintenance.join().unwrap();

        // Reopen: the recovered journal must be the appended journal —
        // every session, every event, in order.
        drop(store);
        let (_, recovered) = PersistStore::open(&options).unwrap();
        let mut want: Vec<(u64, SessionState)> = expected.into_iter().collect();
        want.sort_by_key(|(id, _)| *id);
        prop_assert_eq!(recovered.sessions, want);
        fs::remove_dir_all(&dir).unwrap();
    }
}
