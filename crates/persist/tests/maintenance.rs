//! Background-maintenance behaviour of the store: the append path never
//! compacts in background mode (the acceptance pin for the appender /
//! compactor split), group-commit acknowledgements stay live without a
//! flusher tenant, and shutdown drains the compaction backlog.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tagging_persist::{CorpusOrigin, PersistOptions, PersistStore, Registration, WalEvent};
use tagging_runtime::FlushPolicy;
use tagging_sim::session::SessionEvent;

fn registration(seed: u64) -> Registration {
    Registration {
        strategy: "FP".into(),
        budget: 50,
        omega: 5,
        seed,
        source: CorpusOrigin::Generate {
            resources: 10,
            seed,
        },
        stability_window: 15,
        stability_tau: 0.999,
        under_tagged_threshold: 10,
    }
}

/// Background-maintenance options: one shard, a tiny snapshot cadence, the
/// compactor nominally on a 25 ms period (the tests call `compact_tick`
/// directly instead of spawning the tenant).
fn background_options(dir: &Path, flush: FlushPolicy) -> PersistOptions {
    PersistOptions {
        data_dir: dir.to_path_buf(),
        shards: 1,
        snapshot_every: 4,
        flush,
        flush_interval_ms: 5,
        compact_interval_ms: 25,
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tagging-persist-mt-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The files in `data_dir/shard-000`, as sorted names.
fn shard_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir.join("shard-000"))
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// The acceptance pin of the refactor: in background mode `append` is
/// bounded to the frame write — it never cuts a snapshot or rotates the
/// segment, no matter how far past the cadence the shard runs. Only a
/// compactor tick (what the `wal-compactor` tenant executes) advances the
/// generation.
#[test]
fn append_never_compacts_in_background_mode() {
    let dir = temp_dir("bounded");
    let options = background_options(&dir, FlushPolicy::Never);
    let (store, _) = PersistStore::open(&options).unwrap();
    assert!(store.background());

    store
        .append(
            0,
            &WalEvent::Register {
                session: 1,
                registration: registration(1),
            },
        )
        .unwrap();
    // 5x the snapshot cadence: the inline engine would have rotated five
    // times by now.
    for _ in 0..20 {
        store
            .append(
                0,
                &WalEvent::Session {
                    session: 1,
                    event: SessionEvent::Lease { k: 1 },
                },
            )
            .unwrap();
    }

    let status = store.maintenance_status();
    assert_eq!(status.compactions, 0, "append compacted: {status:?}");
    assert_eq!(status.shard_generations, vec![1], "append rotated");
    assert!(status.backlog_events >= 21, "{status:?}");
    assert_eq!(status.backlog_shards, 1);
    assert_eq!(
        shard_files(&dir),
        vec![
            "snap-0000000001.snap".to_string(),
            "wal-0000000001.log".to_string()
        ],
        "append must not create new generations in background mode"
    );

    // One compactor tick does what the tenant would: one compaction,
    // generation advanced, backlog drained, stale files gone.
    assert_eq!(store.compact_tick(), 1);
    let status = store.maintenance_status();
    assert_eq!(status.compactions, 1);
    assert_eq!(status.shard_generations, vec![2]);
    assert_eq!(status.backlog_events, 0);
    assert_eq!(
        shard_files(&dir),
        vec![
            "snap-0000000002.snap".to_string(),
            "wal-0000000002.log".to_string()
        ]
    );

    // Nothing was lost across the background compaction.
    drop(store);
    let (_, recovered) = PersistStore::open(&options).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].1.events.len(), 20);
    fs::remove_dir_all(&dir).unwrap();
}

/// Group-commit acknowledgements must not hang when no flusher tenant runs:
/// the waiter's deadline fallback syncs the file itself.
#[test]
fn group_commit_self_syncs_without_a_flusher() {
    let dir = temp_dir("selfsync");
    let options = background_options(&dir, FlushPolicy::Group);
    let (store, _) = PersistStore::open(&options).unwrap();
    store
        .append(
            0,
            &WalEvent::Register {
                session: 9,
                registration: registration(9),
            },
        )
        .unwrap();
    store
        .append(
            0,
            &WalEvent::Session {
                session: 9,
                event: SessionEvent::Lease { k: 3 },
            },
        )
        .unwrap();
    drop(store);
    let (_, recovered) = PersistStore::open(&options).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(
        recovered.sessions[0].1.events,
        vec![SessionEvent::Lease { k: 3 }]
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// A flusher thread ticking [`PersistStore::flush_tick`] (what the
/// `wal-flusher` tenant runs) releases concurrent group-commit appends from
/// several threads, and every acknowledged append survives reopen.
#[test]
fn group_commit_releases_concurrent_appenders() {
    let dir = temp_dir("cohort");
    let options = background_options(&dir, FlushPolicy::Group);
    let (store, _) = PersistStore::open(&options).unwrap();
    let store = Arc::new(store);
    store
        .append(
            0,
            &WalEvent::Register {
                session: 1,
                registration: registration(1),
            },
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                store.flush_tick();
                std::thread::yield_now();
            }
        })
    };

    let appenders: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    store
                        .append(
                            0,
                            &WalEvent::Session {
                                session: 1,
                                event: SessionEvent::Lease { k: 1 },
                            },
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for appender in appenders {
        appender.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    flusher.join().unwrap();

    drop(store);
    let (_, recovered) = PersistStore::open(&options).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].1.events.len(), 100);
    fs::remove_dir_all(&dir).unwrap();
}

/// `shutdown` drains the compaction backlog (the final compact runs on the
/// caller's thread) before writing the clean markers.
#[test]
fn shutdown_drains_the_backlog_then_marks_clean() {
    let dir = temp_dir("drain");
    let options = background_options(&dir, FlushPolicy::Never);
    let (store, _) = PersistStore::open(&options).unwrap();
    store
        .append(
            0,
            &WalEvent::Register {
                session: 5,
                registration: registration(5),
            },
        )
        .unwrap();
    for _ in 0..7 {
        store
            .append(
                0,
                &WalEvent::Session {
                    session: 5,
                    event: SessionEvent::Lease { k: 2 },
                },
            )
            .unwrap();
    }
    assert!(store.maintenance_status().backlog_events > 0);
    store.shutdown().unwrap();
    let status = store.maintenance_status();
    assert_eq!(status.backlog_events, 0, "{status:?}");
    assert_eq!(status.compactions, 1);

    drop(store);
    let (_, recovered) = PersistStore::open(&options).unwrap();
    assert!(recovered.clean_shutdown);
    assert_eq!(recovered.sessions[0].1.events.len(), 7);
    fs::remove_dir_all(&dir).unwrap();
}
