//! The WAL event vocabulary and its byte codec.
//!
//! Persistence is event-sourced: a session's durable form is its registration
//! (everything needed to rebuild the deterministic [`tagging_sim`] session
//! from scratch) plus the ordered [`SessionEvent`] journal the live session
//! recorded. Strategy internals are never serialized — replaying the journal
//! rebuilds them bit-exactly, which is what the sim-level restore tests pin.

use crate::wire::{Reader, WireError, Writer};
use tagging_sim::session::{CompletionReport, SessionEvent};

/// Where a session's corpus came from — enough to rebuild the identical
/// scenario on recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusOrigin {
    /// Synthesized by the paper-sample generator with this many resources and
    /// this seed.
    Generate {
        /// Resource count passed to the generator.
        resources: u64,
        /// Generator seed.
        seed: u64,
    },
    /// Loaded from a corpus file at this path (recovery re-reads the file, so
    /// the path must still resolve on restart).
    Path(String),
}

/// Everything needed to re-create a session's `LiveSession` from nothing:
/// the strategy, the run config, the corpus origin and the scenario
/// parameters. Strategy is kept as its wire name so this crate does not
/// depend on `tagging-strategies`.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// Strategy wire name, e.g. `"FP-MU"`.
    pub strategy: String,
    /// Post budget.
    pub budget: u64,
    /// Allocation lookahead ω.
    pub omega: u64,
    /// Run seed.
    pub seed: u64,
    /// Corpus origin.
    pub source: CorpusOrigin,
    /// Stability window (scenario parameter).
    pub stability_window: u64,
    /// Stability threshold τ (scenario parameter).
    pub stability_tau: f64,
    /// Under-tagged threshold (scenario parameter).
    pub under_tagged_threshold: u64,
}

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A session was registered.
    Register {
        /// Session id.
        session: u64,
        /// How to rebuild it.
        registration: Registration,
    },
    /// A session state transition (lease or report), in apply order.
    Session {
        /// Session id.
        session: u64,
        /// The transition.
        event: SessionEvent,
    },
    /// The server drained and shut down cleanly; always the last record of a
    /// segment when present.
    CleanShutdown,
}

const TAG_REGISTER: u8 = 1;
const TAG_LEASE: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_CLEAN_SHUTDOWN: u8 = 4;

const ORIGIN_GENERATE: u8 = 1;
const ORIGIN_PATH: u8 = 2;

fn put_registration(w: &mut Writer, registration: &Registration) {
    w.put_str(&registration.strategy);
    w.put_u64(registration.budget);
    w.put_u64(registration.omega);
    w.put_u64(registration.seed);
    match &registration.source {
        CorpusOrigin::Generate { resources, seed } => {
            w.put_u8(ORIGIN_GENERATE);
            w.put_u64(*resources);
            w.put_u64(*seed);
        }
        CorpusOrigin::Path(path) => {
            w.put_u8(ORIGIN_PATH);
            w.put_str(path);
        }
    }
    w.put_u64(registration.stability_window);
    w.put_f64(registration.stability_tau);
    w.put_u64(registration.under_tagged_threshold);
}

fn get_registration(r: &mut Reader<'_>) -> Result<Registration, WireError> {
    let strategy = r.get_str("registration.strategy")?;
    let budget = r.get_u64("registration.budget")?;
    let omega = r.get_u64("registration.omega")?;
    let seed = r.get_u64("registration.seed")?;
    let source = match r.get_u8("registration.source tag")? {
        ORIGIN_GENERATE => CorpusOrigin::Generate {
            resources: r.get_u64("origin.resources")?,
            seed: r.get_u64("origin.seed")?,
        },
        ORIGIN_PATH => CorpusOrigin::Path(r.get_str("origin.path")?),
        _ => {
            return Err(WireError {
                context: "registration.source tag",
            })
        }
    };
    Ok(Registration {
        strategy,
        budget,
        omega,
        seed,
        source,
        stability_window: r.get_u64("registration.stability_window")?,
        stability_tau: r.get_f64("registration.stability_tau")?,
        under_tagged_threshold: r.get_u64("registration.under_tagged_threshold")?,
    })
}

fn put_reports(w: &mut Writer, reports: &[CompletionReport]) {
    w.put_usize(reports.len());
    for report in reports {
        w.put_u64(report.task_id);
        match &report.tags {
            None => w.put_u8(0),
            Some(tags) => {
                w.put_u8(1);
                w.put_usize(tags.len());
                for tag in tags {
                    w.put_str(tag);
                }
            }
        }
    }
}

fn get_reports(r: &mut Reader<'_>) -> Result<Vec<CompletionReport>, WireError> {
    let count = r.get_usize("reports.len")?;
    let mut reports = Vec::new();
    for _ in 0..count {
        let task_id = r.get_u64("report.task_id")?;
        let tags = match r.get_u8("report.tags flag")? {
            0 => None,
            1 => {
                let n = r.get_usize("report.tags.len")?;
                let mut tags = Vec::new();
                for _ in 0..n {
                    tags.push(r.get_str("report.tag")?);
                }
                Some(tags)
            }
            _ => {
                return Err(WireError {
                    context: "report.tags flag",
                })
            }
        };
        reports.push(CompletionReport { task_id, tags });
    }
    Ok(reports)
}

impl WalEvent {
    /// Encode into a standalone payload (framed by [`crate::record`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalEvent::Register {
                session,
                registration,
            } => {
                w.put_u8(TAG_REGISTER);
                w.put_u64(*session);
                put_registration(&mut w, registration);
            }
            WalEvent::Session { session, event } => match event {
                SessionEvent::Lease { k } => {
                    w.put_u8(TAG_LEASE);
                    w.put_u64(*session);
                    w.put_usize(*k);
                }
                SessionEvent::Report { reports } => {
                    w.put_u8(TAG_REPORT);
                    w.put_u64(*session);
                    put_reports(&mut w, reports);
                }
            },
            WalEvent::CleanShutdown => w.put_u8(TAG_CLEAN_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a payload produced by [`WalEvent::encode`]. Trailing bytes are
    /// rejected — after a CRC match they indicate format skew, and the caller
    /// treats the record as corrupt.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let event = match r.get_u8("event tag")? {
            TAG_REGISTER => WalEvent::Register {
                session: r.get_u64("event.session")?,
                registration: get_registration(&mut r)?,
            },
            TAG_LEASE => WalEvent::Session {
                session: r.get_u64("event.session")?,
                event: SessionEvent::Lease {
                    k: r.get_usize("lease.k")?,
                },
            },
            TAG_REPORT => WalEvent::Session {
                session: r.get_u64("event.session")?,
                event: SessionEvent::Report {
                    reports: get_reports(&mut r)?,
                },
            },
            TAG_CLEAN_SHUTDOWN => WalEvent::CleanShutdown,
            _ => {
                return Err(WireError {
                    context: "event tag",
                })
            }
        };
        if !r.is_empty() {
            return Err(WireError {
                context: "trailing bytes",
            });
        }
        Ok(event)
    }
}

/// The durable form of one session: its registration plus the compacted
/// journal — exactly what a snapshot stores per session, and what recovery
/// hands to the server to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// How to rebuild the session from scratch.
    pub registration: Registration,
    /// Journal of applied transitions, in order.
    pub events: Vec<SessionEvent>,
}

impl SessionState {
    /// Encode for a snapshot record (the session id is written by the
    /// snapshot layer alongside this payload).
    pub fn encode_into(&self, w: &mut Writer) {
        put_registration(w, &self.registration);
        w.put_usize(self.events.len());
        for event in &self.events {
            match event {
                SessionEvent::Lease { k } => {
                    w.put_u8(TAG_LEASE);
                    w.put_usize(*k);
                }
                SessionEvent::Report { reports } => {
                    w.put_u8(TAG_REPORT);
                    put_reports(w, reports);
                }
            }
        }
    }

    /// Decode a payload produced by [`SessionState::encode_into`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let registration = get_registration(r)?;
        let count = r.get_usize("state.events.len")?;
        let mut events = Vec::new();
        for _ in 0..count {
            let event = match r.get_u8("state.event tag")? {
                TAG_LEASE => SessionEvent::Lease {
                    k: r.get_usize("state.lease.k")?,
                },
                TAG_REPORT => SessionEvent::Report {
                    reports: get_reports(r)?,
                },
                _ => {
                    return Err(WireError {
                        context: "state.event tag",
                    })
                }
            };
            events.push(event);
        }
        Ok(Self {
            registration,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registration() -> Registration {
        Registration {
            strategy: "FP-MU".into(),
            budget: 600,
            omega: 5,
            seed: 42,
            source: CorpusOrigin::Generate {
                resources: 40,
                seed: 7,
            },
            stability_window: 15,
            stability_tau: 0.999,
            under_tagged_threshold: 10,
        }
    }

    #[test]
    fn wal_events_round_trip() {
        let events = vec![
            WalEvent::Register {
                session: 3,
                registration: registration(),
            },
            WalEvent::Register {
                session: 4,
                registration: Registration {
                    source: CorpusOrigin::Path("corpora/delicious.json".into()),
                    ..registration()
                },
            },
            WalEvent::Session {
                session: 3,
                event: SessionEvent::Lease { k: 64 },
            },
            WalEvent::Session {
                session: 3,
                event: SessionEvent::Report {
                    reports: vec![
                        CompletionReport {
                            task_id: 9,
                            tags: None,
                        },
                        CompletionReport {
                            task_id: 10,
                            tags: Some(vec!["design".into(), "css".into()]),
                        },
                        CompletionReport {
                            task_id: 11,
                            tags: Some(vec![]),
                        },
                    ],
                },
            },
            WalEvent::CleanShutdown,
        ];
        for event in events {
            let bytes = event.encode();
            assert_eq!(WalEvent::decode(&bytes).unwrap(), event, "{event:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = WalEvent::CleanShutdown.encode();
        bytes.push(0);
        assert!(WalEvent::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(WalEvent::decode(&[0xFF]).is_err());
        assert!(WalEvent::decode(&[]).is_err());
    }

    #[test]
    fn session_state_round_trips() {
        let state = SessionState {
            registration: registration(),
            events: vec![
                SessionEvent::Lease { k: 4 },
                SessionEvent::Report {
                    reports: vec![CompletionReport {
                        task_id: 1,
                        tags: Some(vec!["a".into()]),
                    }],
                },
            ],
        };
        let mut w = Writer::new();
        state.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(SessionState::decode_from(&mut r).unwrap(), state);
        assert!(r.is_empty());
    }
}
