//! CRC-32 (IEEE 802.3 polynomial, the `crc32` of zlib/gzip) — the checksum
//! guarding every WAL and snapshot record.
//!
//! Table-driven, one table built at first use. The polynomial choice matters
//! only in that it is a well-studied standard with good burst-error
//! detection; nothing else in the workspace needs to interoperate with it.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed once.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"write-ahead log record".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {i} bit {bit}");
            }
        }
    }
}
