//! Snapshot files: a full, compacted copy of one shard's sessions.
//!
//! Layout: `SNAPSHOT_MAGIC`, then one header record (`session count` as
//! `u64`), then one record per session (`id` + [`SessionState`]), ordered by
//! id so identical states produce identical bytes. A snapshot must parse
//! *whole* — any torn tail or count mismatch invalidates the file, because
//! snapshots are only ever published by atomic rename: a torn one means the
//! rename never happened and an older generation should be used instead.

use crate::event::SessionState;
use crate::record::{frame, scan, SNAPSHOT_MAGIC};
use crate::wire::{Reader, Writer};
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Serialize `sessions` into snapshot file bytes.
pub fn encode(sessions: &HashMap<u64, SessionState>) -> Vec<u8> {
    let mut ids: Vec<u64> = sessions.keys().copied().collect();
    ids.sort_unstable();

    let mut bytes = SNAPSHOT_MAGIC.to_vec();
    let mut header = Writer::new();
    header.put_u64(ids.len() as u64);
    bytes.extend_from_slice(&frame(&header.into_bytes()));
    for id in ids {
        let mut w = Writer::new();
        w.put_u64(id);
        sessions[&id].encode_into(&mut w);
        bytes.extend_from_slice(&frame(&w.into_bytes()));
    }
    bytes
}

/// Parse snapshot file bytes. Returns `None` for anything short of a fully
/// valid snapshot — the caller falls back to an older generation.
pub fn decode(bytes: &[u8]) -> Option<HashMap<u64, SessionState>> {
    let segment = scan(bytes, SNAPSHOT_MAGIC);
    if !segment.is_clean() || segment.records.is_empty() {
        return None;
    }
    let mut header = Reader::new(&segment.records[0]);
    let count = header.get_u64("snapshot.count").ok()?;
    if !header.is_empty() || count != (segment.records.len() - 1) as u64 {
        return None;
    }
    let mut sessions = HashMap::new();
    for record in &segment.records[1..] {
        let mut r = Reader::new(record);
        let id = r.get_u64("snapshot.session id").ok()?;
        let state = SessionState::decode_from(&mut r).ok()?;
        if !r.is_empty() || sessions.insert(id, state).is_some() {
            return None;
        }
    }
    Some(sessions)
}

/// Write a snapshot durably: encode to `<path>.tmp`, fsync, rename over
/// `path`, fsync the directory. A crash at any point leaves either the old
/// file set or the new one — never a half-written published snapshot.
/// Returns the snapshot's size in bytes (feeds the store's byte counters
/// without re-encoding).
pub fn write_atomic(path: &Path, sessions: &HashMap<u64, SessionState>) -> io::Result<u64> {
    let tmp = path.with_extension("tmp");
    let bytes = encode(sessions);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_data()?;
    }
    Ok(bytes.len() as u64)
}

/// Load the snapshot at `path`, or `None` if the file is missing or invalid.
pub fn load(path: &Path) -> Option<HashMap<u64, SessionState>> {
    let bytes = fs::read(path).ok()?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CorpusOrigin, Registration};
    use tagging_sim::session::SessionEvent;

    fn sessions() -> HashMap<u64, SessionState> {
        let registration = |seed| Registration {
            strategy: "RR".into(),
            budget: 100,
            omega: 5,
            seed,
            source: CorpusOrigin::Generate {
                resources: 20,
                seed,
            },
            stability_window: 15,
            stability_tau: 0.999,
            under_tagged_threshold: 10,
        };
        HashMap::from([
            (
                1,
                SessionState {
                    registration: registration(1),
                    events: vec![SessionEvent::Lease { k: 3 }],
                },
            ),
            (
                9,
                SessionState {
                    registration: registration(9),
                    events: vec![],
                },
            ),
        ])
    }

    #[test]
    fn snapshots_round_trip_and_encode_deterministically() {
        let sessions = sessions();
        let bytes = encode(&sessions);
        assert_eq!(decode(&bytes).unwrap(), sessions);
        assert_eq!(encode(&sessions), bytes);
        // Empty snapshots are valid too.
        assert_eq!(decode(&encode(&HashMap::new())).unwrap(), HashMap::new());
    }

    #[test]
    fn any_truncation_invalidates_a_snapshot() {
        let bytes = encode(&sessions());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn corruption_invalidates_a_snapshot() {
        let bytes = encode(&sessions());
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() / 2] ^= 0x10;
        assert!(decode(&corrupt).is_none());
    }
}
