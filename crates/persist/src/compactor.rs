//! The background half of the store: snapshot compaction off the request
//! path, and the scheduler tenants that drive it.
//!
//! ## Two-phase compaction
//!
//! A shard that crosses its snapshot cadence is *marked* by the appender and
//! pushed onto the store's backlog queue; the `wal-compactor` tenant drains
//! the queue with [`PersistStore::compact_tick`]. Each compaction runs in
//! two phases:
//!
//! 1. **Seal** — under the shard lock, but with no heavy I/O: sync any
//!    group-commit stragglers of the old segment, open the next generation's
//!    WAL, swap it in, and clone the mirror. The appender resumes on the
//!    fresh generation the moment the lock drops; from here on the sealed
//!    WAL is frozen.
//! 2. **Publish** — entirely off-lock: write snapshot `N+1` (atomic tmp →
//!    fsync → rename) from the cloned mirror, delete every stale
//!    generation, sync the directory.
//!
//! A kill between the phases leaves the shard split across `snap-N`,
//! `wal-N` (sealed) and `wal-N+1` (new appends); recovery replays the whole
//! WAL chain at or above the newest valid snapshot, so nothing is lost and
//! a torn `snap-N+1` simply falls back one generation. Compactor errors are
//! counted (`persist_compactor_errors_total`) and the shard is re-queued —
//! never panicked, never silently dropped.

use crate::snapshot;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use tagging_runtime::{lock_unpoisoned, FlushPolicy, Scheduler, TaskStats};

use crate::appender::{
    group_sync_locked, open_wal, parse_generation, snap_path, sync_dir, wal_path, Shard,
};
use crate::store::{PersistStore, StoreMetrics};

/// A point-in-time view of the store's maintenance machinery, served by the
/// server's `/healthz` and `GET /stats` endpoints.
#[derive(Debug, Clone)]
pub struct MaintenanceStatus {
    /// The flush policy, as its display string (`always`, `group`, ...).
    pub flush_mode: String,
    /// True when compaction runs on the `wal-compactor` tenant; false in
    /// inline (legacy) mode where the append path rotates itself.
    pub background: bool,
    /// Events sitting in segments that are queued for compaction.
    pub backlog_events: u64,
    /// Shards currently queued for compaction.
    pub backlog_shards: usize,
    /// Segment compactions completed since open (inline or background).
    pub compactions: u64,
    /// Current segment generation of every shard, in shard order.
    pub shard_generations: Vec<u64>,
}

/// Handles onto the store's maintenance tenants, returned by
/// [`spawn_maintenance`]. Dropping it is fine — the tenants are owned by the
/// scheduler; this only carries their run statistics.
#[derive(Debug)]
pub struct MaintenanceHandle {
    /// Run stats of the `wal-flusher` tenant (`None` unless the store runs
    /// group commit).
    pub flusher: Option<Arc<TaskStats>>,
    /// Run stats of the `wal-compactor` tenant (`None` in inline mode).
    pub compactor: Option<Arc<TaskStats>>,
}

/// Spawn the store's maintenance tenants onto `scheduler`:
///
/// * `wal-flusher` — every `flush_interval_ms`, one shared `fsync` per dirty
///   shard, releasing every group-commit waiter (spawned only under
///   [`FlushPolicy::Group`]);
/// * `wal-compactor` — every `compact_interval_ms`, drains the compaction
///   backlog so snapshots are cut off the request path (spawned only in
///   background mode, i.e. `compact_interval_ms > 0`).
///
/// Both tenants inherit the scheduler's panic isolation; errors inside a
/// tick are counted on the store's telemetry, never raised.
pub fn spawn_maintenance(
    store: &Arc<PersistStore>,
    scheduler: &mut Scheduler,
) -> MaintenanceHandle {
    let flusher = (store.flush == FlushPolicy::Group).then(|| {
        let period = store.flush_interval;
        let store = Arc::clone(store);
        scheduler.spawn_periodic("wal-flusher", period, move || {
            store.flush_tick();
        })
    });
    let compactor = store.background().then(|| {
        let period = store.compact_interval;
        let store = Arc::clone(store);
        scheduler.spawn_periodic("wal-compactor", period, move || {
            store.compact_tick();
        })
    });
    MaintenanceHandle { flusher, compactor }
}

impl PersistStore {
    /// True when compaction is the `wal-compactor` tenant's job (never the
    /// append path's).
    pub fn background(&self) -> bool {
        !self.compact_interval.is_zero()
    }

    /// One pass of the `wal-compactor` tenant: compact every shard queued on
    /// the backlog when the pass started. Returns how many compactions
    /// completed. A failing shard is counted and re-queued for the next
    /// pass; the pass itself never errors or panics out of the tenant.
    pub fn compact_tick(&self) -> usize {
        let mut compacted = 0;
        // Bound the pass to the queue length at entry so a persistently
        // erroring shard (re-queued below) cannot spin this loop hot.
        let budget = lock_unpoisoned(&self.backlog).len();
        for _ in 0..budget {
            let Some(index) = lock_unpoisoned(&self.backlog).pop_front() else {
                break;
            };
            match self.compact_shard(index) {
                Ok(true) => compacted += 1,
                Ok(false) => {} // no longer pending (a forced compact won)
                Err(_) => {
                    self.metrics.compactor_errors.inc();
                    lock_unpoisoned(&self.backlog).push_back(index);
                }
            }
        }
        compacted
    }

    /// Compact one backlog entry: seal under the lock, publish off it.
    /// Returns `Ok(false)` when the shard was no longer pending.
    fn compact_shard(&self, index: usize) -> io::Result<bool> {
        let cell = &self.shards[index % self.shards.len()];
        // Phase 1 — seal. Everything here is cheap except creating the next
        // segment file; the appender is blocked only for that long.
        let (dir, next, mirror) = {
            let mut guard = lock_unpoisoned(&cell.state);
            if !guard.compaction_pending {
                return Ok(false);
            }
            let sealed_events = guard.events_in_segment;
            let next = guard.generation + 1;
            // Group-commit waiters may still sit behind unsynced records of
            // the segment being sealed; sync it now — after the swap no one
            // would fsync the old file again, and the snapshot that would
            // cover them publishes only after this lock drops.
            if guard.synced_total < guard.appended_total {
                group_sync_locked(&mut guard, &self.metrics)?;
            }
            guard.wal = open_wal(&wal_path(&guard.dir, next), true)?;
            guard.generation = next;
            guard.events_in_segment = 0;
            guard.appended_since_sync = 0;
            guard.compaction_pending = false;
            self.metrics.compaction_backlog.add(-(sealed_events as i64));
            (guard.dir.clone(), next, guard.sessions.clone())
        };
        cell.synced.notify_all();
        // Phase 2 — publish. The sealed WAL is frozen and the appender is
        // already writing generation `next`; a kill anywhere in here is
        // recovered by the chain replay (see the module docs).
        let _compact_timer = self.metrics.snapshot_write_us.start_timer();
        let written = snapshot::write_atomic(&snap_path(&dir, next), &mirror)?;
        self.metrics.snapshots.inc();
        self.metrics.snapshot_bytes.add(written);
        remove_stale(&dir, next, &self.metrics)?;
        sync_dir(&dir)?;
        self.metrics.compactions.inc();
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Force a compaction of every shard (snapshot + fresh WAL) regardless
    /// of cadence or mode, synchronously on this thread. Used by tests; the
    /// server relies on the cadence.
    pub fn compact(&self) -> io::Result<()> {
        for cell in self.shards.iter() {
            let mut guard = lock_unpoisoned(&cell.state);
            rotate_locked(&mut guard, &self.metrics)?;
            drop(guard);
            self.compactions.fetch_add(1, Ordering::Relaxed);
            cell.synced.notify_all();
        }
        Ok(())
    }

    /// A point-in-time view of the maintenance machinery (flush mode,
    /// backlog depth, per-shard generations) for `/healthz` and `/stats`.
    pub fn maintenance_status(&self) -> MaintenanceStatus {
        let mut backlog_events = 0;
        let mut backlog_shards = 0;
        let mut shard_generations = Vec::with_capacity(self.shards.len());
        for cell in self.shards.iter() {
            let guard = lock_unpoisoned(&cell.state);
            if guard.compaction_pending {
                backlog_shards += 1;
                backlog_events += guard.events_in_segment;
            }
            shard_generations.push(guard.generation);
        }
        MaintenanceStatus {
            flush_mode: self.flush.to_string(),
            background: self.background(),
            backlog_events,
            backlog_shards,
            compactions: self.compactions.load(Ordering::Relaxed),
            shard_generations,
        }
    }

    /// The `wal-flusher` cadence (meaningful only under group commit).
    pub fn flush_interval(&self) -> Duration {
        self.flush_interval
    }

    /// The `wal-compactor` cadence; zero means inline compaction.
    pub fn compact_interval(&self) -> Duration {
        self.compact_interval
    }
}

/// Advance `shard` one generation synchronously, under its lock: snapshot
/// the mirror, open a fresh WAL, delete the previous generation's files.
/// This is the inline-mode compaction (and the forced [`PersistStore::compact`]
/// path); the background compactor uses the two-phase
/// seal/publish split instead.
pub(crate) fn rotate_locked(shard: &mut Shard, metrics: &StoreMetrics) -> io::Result<()> {
    let _compact_timer = metrics.snapshot_write_us.start_timer();
    let sealed_events = shard.events_in_segment;
    let next = shard.generation + 1;
    let written = snapshot::write_atomic(&snap_path(&shard.dir, next), &shard.sessions)?;
    metrics.snapshots.inc();
    metrics.snapshot_bytes.add(written);
    shard.wal = open_wal(&wal_path(&shard.dir, next), true)?;
    shard.generation = next;
    shard.appended_since_sync = 0;
    shard.events_in_segment = 0;
    // The device-synced snapshot now carries every record of the abandoned
    // segment: group-commit waiters are durable without another WAL fsync.
    shard.synced_total = shard.appended_total;
    if shard.compaction_pending {
        shard.compaction_pending = false;
        metrics.compaction_backlog.add(-(sealed_events as i64));
    }
    metrics.compactions.inc();
    remove_stale(&shard.dir, next, metrics)?;
    sync_dir(&shard.dir)
}

/// Delete every snapshot/WAL file of a generation other than `keep`, plus
/// leftover `.tmp` files from interrupted snapshot writes. Each deletion is
/// counted under `persist_stale_files_deleted_total`.
pub(crate) fn remove_stale(dir: &Path, keep: u64, metrics: &StoreMetrics) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match (
            parse_generation(name, "snap-", ".snap"),
            parse_generation(name, "wal-", ".log"),
        ) {
            (Some(generation), _) | (_, Some(generation)) => generation != keep,
            _ => name.ends_with(".tmp"),
        };
        if stale {
            fs::remove_file(entry.path())?;
            metrics.stale_deleted.inc();
        }
    }
    Ok(())
}
