//! On-disk record framing shared by WAL segments and snapshots.
//!
//! A segment is `MAGIC` (8 bytes) followed by zero or more records, each
//! `[len: u32 LE][crc32: u32 LE][payload: len bytes]` where the CRC covers the
//! payload only. There is no end-of-file marker: the reader walks records
//! until the bytes run out, and the first frame that does not parse — short
//! header, payload extending past EOF, CRC mismatch, or absurd length — marks
//! the *torn tail*. Everything before it is valid; everything from it on is
//! the debris of a crash mid-append and is discarded (for WALs) or invalidates
//! the file (for snapshots, which are written atomically and must parse
//! whole).

use crate::crc::crc32;

/// Magic prefix of WAL segment files. The trailing digits version the format.
pub const WAL_MAGIC: &[u8; 8] = b"TAGWAL01";

/// Magic prefix of snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"TAGSNP01";

/// Upper bound on a single record payload (64 MiB). A length field above this
/// is treated as corruption rather than attempted as an allocation.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// Frame `payload` as one on-disk record.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RECORD_LEN as usize,
        "record payload of {} bytes exceeds the {} byte frame limit",
        payload.len(),
        MAX_RECORD_LEN
    );
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// The outcome of scanning one segment's bytes.
#[derive(Debug)]
pub struct Segment {
    /// Payloads of every valid record, in file order.
    pub records: Vec<Vec<u8>>,
    /// Byte offset of the end of the last valid record (including the magic);
    /// a writer resuming this file would truncate to this length first.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did. `None` means the file ended
    /// exactly on a record boundary.
    pub torn: Option<&'static str>,
}

impl Segment {
    /// True when the file ends exactly on a record boundary.
    pub fn is_clean(&self) -> bool {
        self.torn.is_none()
    }
}

/// Scan a segment. An empty file and a file holding only the magic are both
/// valid empty segments: creation may crash between `create` and the magic
/// write, and that debris must not poison recovery. A wrong or partial magic
/// on a non-empty file is a torn header — zero records, `valid_len` 0.
pub fn scan(bytes: &[u8], magic: &[u8; 8]) -> Segment {
    if bytes.is_empty() {
        return Segment {
            records: Vec::new(),
            valid_len: 0,
            torn: None,
        };
    }
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return Segment {
            records: Vec::new(),
            valid_len: 0,
            torn: Some("bad segment magic"),
        };
    }
    let mut records = Vec::new();
    let mut pos = magic.len();
    loop {
        let remaining = &bytes[pos..];
        if remaining.is_empty() {
            return Segment {
                records,
                valid_len: pos as u64,
                torn: None,
            };
        }
        if remaining.len() < 8 {
            return Segment {
                records,
                valid_len: pos as u64,
                torn: Some("torn record header"),
            };
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Segment {
                records,
                valid_len: pos as u64,
                torn: Some("record length out of range"),
            };
        }
        let len = len as usize;
        if remaining.len() < 8 + len {
            return Segment {
                records,
                valid_len: pos as u64,
                torn: Some("torn record payload"),
            };
        }
        let payload = &remaining[8..8 + len];
        if crc32(payload) != crc {
            return Segment {
                records,
                valid_len: pos as u64,
                torn: Some("record checksum mismatch"),
            };
        }
        records.push(payload.to_vec());
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for payload in payloads {
            bytes.extend_from_slice(&frame(payload));
        }
        bytes
    }

    #[test]
    fn scans_a_clean_segment() {
        let bytes = segment(&[b"alpha", b"", b"gamma"]);
        let seg = scan(&bytes, WAL_MAGIC);
        assert!(seg.is_clean());
        assert_eq!(
            seg.records,
            vec![b"alpha".to_vec(), vec![], b"gamma".to_vec()]
        );
        assert_eq!(seg.valid_len, bytes.len() as u64);
    }

    #[test]
    fn empty_and_magic_only_files_are_valid_empty_segments() {
        for bytes in [&[][..], &WAL_MAGIC[..]] {
            let seg = scan(bytes, WAL_MAGIC);
            assert!(seg.is_clean());
            assert!(seg.records.is_empty());
        }
        // A partially written magic is torn, not fatal.
        let seg = scan(&WAL_MAGIC[..5], WAL_MAGIC);
        assert!(!seg.is_clean());
        assert_eq!(seg.valid_len, 0);
    }

    #[test]
    fn torn_tails_keep_the_valid_prefix() {
        let clean = segment(&[b"alpha", b"beta"]);
        let keep = scan(&clean, WAL_MAGIC).valid_len;
        // Truncate at every byte length: the scan must never panic, and the
        // records it returns must be a prefix of the clean ones.
        for cut in 0..clean.len() {
            let seg = scan(&clean[..cut], WAL_MAGIC);
            assert!(seg.valid_len <= keep);
            for (i, record) in seg.records.iter().enumerate() {
                assert_eq!(record, &[b"alpha".to_vec(), b"beta".to_vec()][i]);
            }
        }
    }

    #[test]
    fn corrupt_crc_stops_the_scan_at_the_bad_record() {
        let mut bytes = segment(&[b"alpha", b"beta", b"gamma"]);
        // Flip one payload byte of "beta" (magic 8 + record one 13 + header 8).
        let beta_payload = 8 + (8 + 5) + 8;
        bytes[beta_payload] ^= 0x40;
        let seg = scan(&bytes, WAL_MAGIC);
        assert_eq!(seg.records, vec![b"alpha".to_vec()]);
        assert_eq!(seg.torn, Some("record checksum mismatch"));
        assert_eq!(seg.valid_len, (8 + 8 + 5) as u64);
    }

    #[test]
    fn absurd_length_fields_are_corruption_not_allocations() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let seg = scan(&bytes, WAL_MAGIC);
        assert_eq!(seg.torn, Some("record length out of range"));
        assert!(seg.records.is_empty());
    }
}
