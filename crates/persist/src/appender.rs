//! The hot half of the store: the append path and the group-commit gate.
//!
//! [`PersistStore::append`] is the only persistence code a request thread
//! ever executes, and its work is bounded by design: apply the event to the
//! in-memory mirror, frame it, write it to the shard's WAL — and then either
//! ask the [`FlushPolicy`] whether to `fsync` inline (`always` / `every:N`)
//! or park on the group-commit gate (`group`). Snapshot compaction never
//! happens here when the store runs in background-maintenance mode; the
//! append path only *marks* a shard as due and the `wal-compactor` tenant
//! (see [`crate::compactor`]) does the heavy lifting.
//!
//! ## The group-commit gate
//!
//! Under [`FlushPolicy::Group`] every shard keeps two monotone counters:
//! `appended_total` (records ever written to the shard's WAL) and
//! `synced_total` (the watermark below which every record is known to be on
//! the device). An append takes its *ticket* — the value of `appended_total`
//! after its own write — and waits on the shard's condvar until
//! `synced_total` reaches it. The `wal-flusher` tenant periodically issues
//! one `fsync` per dirty shard, advances the watermark and wakes every
//! waiter, so N concurrent requests on a shard share a single device sync.
//!
//! Two liveness escapes keep acknowledgements from being hostage to the
//! tenant: a waiter whose deadline passes syncs the file itself (the tenant
//! may not be running — tests, misconfiguration, shutdown races), and
//! rotation points (snapshot publish, clean shutdown) advance the watermark
//! because the snapshot or the explicit sync makes the records durable
//! without another WAL `fsync`.

use crate::event::{SessionState, WalEvent};
use crate::record::{frame, WAL_MAGIC};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;
use tagging_runtime::{lock_unpoisoned, FlushPolicy};

use crate::store::{PersistStore, StoreMetrics};

/// Mutable per-shard state, owned by [`ShardCell::state`]'s mutex.
pub(crate) struct Shard {
    /// The shard's directory (`data_dir/shard-NNN`).
    pub(crate) dir: PathBuf,
    /// Current segment generation (names the live WAL / next snapshot).
    pub(crate) generation: u64,
    /// The live WAL segment, opened in append mode.
    pub(crate) wal: File,
    /// Records appended since the last fsync (drives [`FlushPolicy`]).
    pub(crate) appended_since_sync: u64,
    /// Events appended since the last snapshot (drives compaction).
    pub(crate) events_in_segment: u64,
    /// Monotone count of records ever appended — the group-commit ticket.
    pub(crate) appended_total: u64,
    /// Watermark: every record with ticket ≤ this is on the device (or
    /// captured by a device-synced snapshot).
    pub(crate) synced_total: u64,
    /// True while the shard sits on the compactor's backlog queue.
    pub(crate) compaction_pending: bool,
    /// In-memory mirror of the shard's durable state — the source of the
    /// next snapshot, so compaction never re-reads the log.
    pub(crate) sessions: HashMap<u64, SessionState>,
}

/// One shard's mutex plus the condvar group-commit waiters park on.
pub(crate) struct ShardCell {
    pub(crate) state: Mutex<Shard>,
    /// Signalled whenever `synced_total` advances.
    pub(crate) synced: Condvar,
}

impl ShardCell {
    pub(crate) fn new(shard: Shard) -> Self {
        Self {
            state: Mutex::new(shard),
            synced: Condvar::new(),
        }
    }
}

pub(crate) fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:010}.log"))
}

pub(crate) fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:010}.snap"))
}

/// Parse `prefix-<generation>.<ext>` back out of a file name.
pub(crate) fn parse_generation(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_data()
}

pub(crate) fn open_wal(path: &Path, create_magic: bool) -> io::Result<File> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if create_magic {
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
    }
    Ok(file)
}

/// Apply one WAL event to a shard mirror. `strict` makes an event for an
/// unknown session an error (the append path guarantees ordering); recovery
/// passes `false` and skips such debris.
pub(crate) fn apply_to_mirror(
    sessions: &mut HashMap<u64, SessionState>,
    event: &WalEvent,
    strict: bool,
) -> io::Result<()> {
    match event {
        WalEvent::Register {
            session,
            registration,
        } => {
            sessions.insert(
                *session,
                SessionState {
                    registration: registration.clone(),
                    events: Vec::new(),
                },
            );
        }
        WalEvent::Session { session, event } => match sessions.get_mut(session) {
            Some(state) => state.events.push(event.clone()),
            None if strict => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("WAL event for unregistered session {session}"),
                ))
            }
            None => {}
        },
        WalEvent::CleanShutdown => {}
    }
    Ok(())
}

/// `fsync` the shard's WAL on behalf of the whole waiting cohort: one device
/// sync, a batch-size sample, and the watermark jump that releases every
/// ticket issued so far. Caller notifies the shard's condvar after the guard
/// drops (or relies on its own wait loop re-checking).
pub(crate) fn group_sync_locked(shard: &mut Shard, metrics: &StoreMetrics) -> io::Result<()> {
    let batch = shard.appended_total - shard.synced_total;
    let fsync_timer = metrics.wal_fsync_us.start_timer();
    FlushPolicy::sync(&shard.wal)?;
    drop(fsync_timer);
    metrics.wal_fsyncs.inc();
    metrics.group_batch.record(batch);
    shard.synced_total = shard.appended_total;
    shard.appended_since_sync = 0;
    Ok(())
}

/// Inline `fsync` for the non-group policies (and explicit sync points).
pub(crate) fn sync_locked(shard: &mut Shard, metrics: &StoreMetrics) -> io::Result<()> {
    let _fsync_timer = metrics.wal_fsync_us.start_timer();
    FlushPolicy::sync(&shard.wal)?;
    metrics.wal_fsyncs.inc();
    shard.appended_since_sync = 0;
    shard.synced_total = shard.appended_total;
    Ok(())
}

impl PersistStore {
    /// Append one event to `shard`'s WAL and mirror. The record is written
    /// and flushed to the OS before this returns (so it survives a process
    /// kill); device sync follows the configured [`FlushPolicy`] — inline
    /// for `always`/`every:N`, via the shared group-commit gate for `group`.
    ///
    /// In background-maintenance mode this never compacts: crossing the
    /// snapshot cadence only queues the shard for the `wal-compactor`
    /// tenant, keeping the request path bounded to the frame write (plus
    /// the group-commit ticket wait).
    pub fn append(&self, shard: usize, event: &WalEvent) -> io::Result<()> {
        let cell = &self.shards[shard % self.shards.len()];
        let mut guard = lock_unpoisoned(&cell.state);
        let append_timer = self.metrics.wal_append_us.start_timer();
        apply_to_mirror(&mut guard.sessions, event, true)?;
        let framed = frame(&event.encode());
        guard.wal.write_all(&framed)?;
        drop(append_timer);
        self.metrics.wal_appends.inc();
        self.metrics.wal_append_bytes.add(framed.len() as u64);
        guard.appended_since_sync += 1;
        guard.appended_total += 1;
        guard.events_in_segment += 1;

        // Compaction cadence. Inline mode (compact_interval_ms == 0) keeps
        // the legacy behaviour of rotating right here; background mode only
        // marks the shard due and enqueues it for the tenant.
        if guard.compaction_pending {
            self.metrics.compaction_backlog.inc();
        } else if guard.events_in_segment >= self.snapshot_every {
            if self.background() {
                guard.compaction_pending = true;
                self.metrics
                    .compaction_backlog
                    .add(guard.events_in_segment as i64);
                lock_unpoisoned(&self.backlog).push_back(shard % self.shards.len());
            } else {
                crate::compactor::rotate_locked(&mut guard, &self.metrics)?;
                self.compactions.fetch_add(1, Ordering::Relaxed);
                cell.synced.notify_all();
            }
        }

        match self.flush {
            FlushPolicy::Group => self.wait_for_group_sync(cell, guard),
            policy => {
                if policy.should_sync(guard.appended_since_sync) {
                    sync_locked(&mut guard, &self.metrics)?;
                }
                Ok(())
            }
        }
    }

    /// Park until the group-commit watermark covers this append's ticket.
    /// The mutex is released while waiting; a waiter whose deadline passes
    /// performs the sync itself so acknowledgements never hang on a missing
    /// or wedged flusher tenant.
    fn wait_for_group_sync<'a>(
        &'a self,
        cell: &'a ShardCell,
        mut guard: MutexGuard<'a, Shard>,
    ) -> io::Result<()> {
        let ticket = guard.appended_total;
        let _wait_timer = self.metrics.flush_wait_us.start_timer();
        let deadline = Instant::now() + self.group_wait_timeout;
        while guard.synced_total < ticket {
            let now = Instant::now();
            if now >= deadline {
                group_sync_locked(&mut guard, &self.metrics)?;
                drop(guard);
                cell.synced.notify_all();
                return Ok(());
            }
            guard = match cell.synced.wait_timeout(guard, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        Ok(())
    }

    /// One pass of the `wal-flusher` tenant: for every shard with
    /// acknowledgements parked behind the group-commit gate, issue one
    /// `fsync` and wake the cohort. Returns the number of shards synced;
    /// a no-op (0) under any policy other than [`FlushPolicy::Group`].
    /// Sync failures are counted (`persist_flusher_errors_total`) and left
    /// to the waiters' own deadline fallback.
    pub fn flush_tick(&self) -> usize {
        if self.flush != FlushPolicy::Group {
            return 0;
        }
        let mut synced = 0;
        for cell in self.shards.iter() {
            let mut guard = lock_unpoisoned(&cell.state);
            if guard.synced_total == guard.appended_total {
                continue;
            }
            match group_sync_locked(&mut guard, &self.metrics) {
                Ok(()) => synced += 1,
                Err(_) => {
                    self.metrics.flusher_errors.inc();
                    continue;
                }
            }
            drop(guard);
            cell.synced.notify_all();
        }
        synced
    }

    /// Append a [`WalEvent::CleanShutdown`] marker to every shard and fsync,
    /// regardless of flush policy. Call after the server has drained; any
    /// shard still queued for background compaction is compacted first (on
    /// this thread — never a request thread).
    pub fn shutdown(&self) -> io::Result<()> {
        // Drain-then-final-compact: leave the directory canonical so the
        // next open replays as little WAL as possible.
        self.compact_tick();
        for cell in self.shards.iter() {
            let mut guard = lock_unpoisoned(&cell.state);
            guard
                .wal
                .write_all(&frame(&WalEvent::CleanShutdown.encode()))?;
            guard.appended_total += 1;
            sync_locked(&mut guard, &self.metrics)?;
            drop(guard);
            cell.synced.notify_all();
        }
        Ok(())
    }
}
