//! # tagging-persist
//!
//! Durable sessions for the tagging server: a per-shard append-only
//! write-ahead log of session lifecycle events, periodic full snapshots with
//! log compaction, and crash recovery that tolerates a torn final record.
//!
//! The design is event-sourced. A [`session::LiveSession`] is a deterministic
//! state machine, so its durable form is not its in-memory state (strategy
//! internals are never serialized) but the *recipe* to rebuild it: the
//! [`Registration`] it was created from plus the ordered
//! [`tagging_sim::SessionEvent`] journal it has applied. Recovery replays the
//! journal onto a freshly built session; `crates/sim/tests/session_restore.rs`
//! pins that this restore is fingerprint-exact for every strategy.
//!
//! Module map:
//!
//! * [`crc`] — table-driven CRC-32 guarding every record;
//! * [`wire`] — the little-endian payload codec;
//! * [`record`] — `[len][crc][payload]` framing and torn-tail scanning;
//! * [`event`] — [`WalEvent`] / [`Registration`] / [`SessionState`] and
//!   their codecs;
//! * [`snapshot`] — atomic full-shard snapshot files;
//! * [`store`] — [`PersistStore`]: configuration, shared state, recovery;
//! * [`appender`] — the hot path: bounded appends + the group-commit gate;
//! * [`compactor`] — background snapshot compaction and the `wal-flusher` /
//!   `wal-compactor` scheduler tenants.
//!
//! [`session::LiveSession`]: tagging_sim::session::LiveSession

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod appender;
pub mod compactor;
pub mod crc;
pub mod event;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod wire;

pub use compactor::{spawn_maintenance, MaintenanceHandle, MaintenanceStatus};
pub use event::{CorpusOrigin, Registration, SessionState, WalEvent};
pub use store::{PersistOptions, PersistStore, RecoveredState};
