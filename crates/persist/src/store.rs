//! The durable session store: one WAL segment + snapshot per registry shard.
//!
//! ## Layout
//!
//! ```text
//! data_dir/
//!   shard-000/
//!     snap-0000000004.snap    # full shard state as of the segment switch
//!     wal-0000000004.log      # events appended since that snapshot
//!   shard-001/
//!     ...
//! ```
//!
//! A shard's durable state is *snapshot ∘ WAL*: load the snapshot of the
//! current generation, then replay the WAL chain on top. Compaction advances
//! the generation: open a fresh WAL, write a new snapshot of the in-memory
//! mirror (atomic tmp + rename), then delete the older generations' files.
//! A crash between any two of those steps leaves a recoverable directory —
//! recovery picks the newest generation with a valid snapshot, replays
//! *every* WAL generation at or above it in ascending order (the background
//! compactor opens generation `N+1`'s WAL before snapshot `N+1` publishes,
//! so events may legitimately be split across two WALs), ignores stale
//! files, and tolerates a torn final record by discarding the tail.
//!
//! ## The two halves
//!
//! This module is the store's spine — configuration, open/recovery, the
//! shared state. The work is split across:
//!
//! * [`crate::appender`] — the hot path: bounded appends and the
//!   group-commit gate (`FlushPolicy::Group`);
//! * [`crate::compactor`] — the background path: two-phase snapshot
//!   compaction, the backlog queue, and the `wal-flusher` /
//!   `wal-compactor` scheduler tenants ([`crate::compactor::spawn_maintenance`]).
//!
//! ## Concurrency
//!
//! One mutex per shard, mirroring the server's registry sharding: appends on
//! different shards never contend, and the server appends *after* releasing
//! the session lock, so the WAL mutex is never held under a shard lock. The
//! compactor takes the same per-shard mutex only to seal a segment; the
//! snapshot write happens off-lock against a cloned mirror.

use crate::event::SessionState;
use crate::record::{scan, WAL_MAGIC};
use crate::snapshot;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tagging_runtime::{lock_unpoisoned, FlushPolicy};
use tagging_telemetry::{Counter, Gauge, Histogram};

use crate::appender::{
    apply_to_mirror, open_wal, parse_generation, snap_path, sync_dir, wal_path, Shard, ShardCell,
};
use crate::compactor::remove_stale;
use crate::event::WalEvent;

/// Configuration of a [`PersistStore`].
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Root directory; created (with shard subdirectories) if missing.
    pub data_dir: PathBuf,
    /// Number of shards — must equal the server registry's shard count so
    /// that `shard_of(session)` addresses the same segment across restarts.
    pub shards: usize,
    /// Events appended to one shard between snapshots (compaction cadence).
    pub snapshot_every: u64,
    /// `fsync` policy of the append path.
    pub flush: FlushPolicy,
    /// Cadence of the `wal-flusher` group-commit tenant, in milliseconds
    /// (also sizes the appender's self-sync fallback deadline). Only
    /// meaningful with [`FlushPolicy::Group`].
    pub flush_interval_ms: u64,
    /// Cadence of the `wal-compactor` tenant, in milliseconds. `0` disables
    /// background maintenance and compacts inline on the append path (the
    /// pre-maintenance behaviour, kept for comparison runs and tests).
    pub compact_interval_ms: u64,
}

impl PersistOptions {
    /// Options with the default cadences (snapshot every 1024 events per
    /// shard, flusher every 5 ms, compactor every 25 ms) and flush policy
    /// for `shards` shards rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>, shards: usize) -> Self {
        Self {
            data_dir: data_dir.into(),
            shards: shards.max(1),
            snapshot_every: 1024,
            flush: FlushPolicy::default(),
            flush_interval_ms: 5,
            compact_interval_ms: 25,
        }
    }
}

/// What [`PersistStore::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// Every persisted session, as `(session id, durable state)`, sorted by
    /// id. The caller rebuilds live sessions by replaying `events` onto a
    /// fresh session built from `registration`.
    pub sessions: Vec<(u64, SessionState)>,
    /// True when the WAL chain ended with a [`WalEvent::CleanShutdown`]
    /// marker (or held no events at all). Informational: recovery works the
    /// same either way.
    pub clean_shutdown: bool,
}

/// Handles into the global telemetry registry for every metric the store
/// records. Resolved once at [`PersistStore::open`] so the append path never
/// touches the registry lock.
///
/// Because these are plain registry families, they flow into the server's
/// trailing-window projection for free: `GET /stats?window=10s` reports
/// `persist_wal_appends_total_per_s` (the live WAL append rate) and windowed
/// fsync/append latency quantiles without the store knowing windows exist.
pub(crate) struct StoreMetrics {
    /// `persist_wal_append_us`: time to mirror + frame + write one event.
    pub(crate) wal_append_us: Arc<Histogram>,
    /// `persist_wal_fsync_us`: time of each device sync on the append path.
    pub(crate) wal_fsync_us: Arc<Histogram>,
    /// `persist_wal_appends_total` / `persist_wal_append_bytes_total`.
    pub(crate) wal_appends: Arc<Counter>,
    pub(crate) wal_append_bytes: Arc<Counter>,
    /// `persist_wal_fsyncs_total`.
    pub(crate) wal_fsyncs: Arc<Counter>,
    /// `persist_snapshot_write_us`: full compaction (snapshot + WAL swap +
    /// stale cleanup) duration.
    pub(crate) snapshot_write_us: Arc<Histogram>,
    /// `persist_snapshots_total` / `persist_snapshot_bytes_total`.
    pub(crate) snapshots: Arc<Counter>,
    pub(crate) snapshot_bytes: Arc<Counter>,
    /// `persist_compactions_total`: segment compactions completed.
    pub(crate) compactions: Arc<Counter>,
    /// `persist_compaction_backlog_events`: events in segments queued for
    /// the background compactor.
    pub(crate) compaction_backlog: Arc<Gauge>,
    /// `persist_group_commit_batch`: appends released per shared fsync.
    pub(crate) group_batch: Arc<Histogram>,
    /// `persist_flush_wait_us`: time an append spent parked on the
    /// group-commit gate.
    pub(crate) flush_wait_us: Arc<Histogram>,
    /// `persist_stale_files_deleted_total`: stale generation files removed.
    pub(crate) stale_deleted: Arc<Counter>,
    /// `persist_compactor_errors_total` / `persist_flusher_errors_total`:
    /// maintenance ticks that failed (the shard is retried, never dropped).
    pub(crate) compactor_errors: Arc<Counter>,
    pub(crate) flusher_errors: Arc<Counter>,
    /// Recovery stats, set once per open: sessions and events rebuilt, and a
    /// counter of opens that found no clean-shutdown marker.
    pub(crate) recovered_sessions: Arc<Gauge>,
    pub(crate) recovered_events: Arc<Gauge>,
    pub(crate) unclean_recoveries: Arc<Counter>,
}

impl StoreMetrics {
    fn resolve() -> Self {
        let registry = tagging_telemetry::global();
        Self {
            wal_append_us: registry.histogram(
                "persist_wal_append_us",
                &[],
                "WAL event append latency (mirror apply + frame write) in microseconds",
            ),
            wal_fsync_us: registry.histogram(
                "persist_wal_fsync_us",
                &[],
                "WAL fsync latency in microseconds",
            ),
            wal_appends: registry.counter("persist_wal_appends_total", &[], "WAL events appended"),
            wal_append_bytes: registry.counter(
                "persist_wal_append_bytes_total",
                &[],
                "Framed WAL bytes written",
            ),
            wal_fsyncs: registry.counter(
                "persist_wal_fsyncs_total",
                &[],
                "Device syncs issued on the WAL append path",
            ),
            snapshot_write_us: registry.histogram(
                "persist_snapshot_write_us",
                &[],
                "Snapshot compaction (write + rotate + cleanup) latency in microseconds",
            ),
            snapshots: registry.counter(
                "persist_snapshots_total",
                &[],
                "Snapshot generations written",
            ),
            snapshot_bytes: registry.counter(
                "persist_snapshot_bytes_total",
                &[],
                "Snapshot bytes written",
            ),
            compactions: registry.counter(
                "persist_compactions_total",
                &[],
                "Segment compactions completed (inline or by the wal-compactor tenant)",
            ),
            compaction_backlog: registry.gauge(
                "persist_compaction_backlog_events",
                &[],
                "Events in segments queued for background compaction",
            ),
            group_batch: registry.histogram(
                "persist_group_commit_batch",
                &[],
                "Appends released per shared group-commit fsync",
            ),
            flush_wait_us: registry.histogram(
                "persist_flush_wait_us",
                &[],
                "Time an append waited on the group-commit gate in microseconds",
            ),
            stale_deleted: registry.counter(
                "persist_stale_files_deleted_total",
                &[],
                "Stale generation files deleted by compaction",
            ),
            compactor_errors: registry.counter(
                "persist_compactor_errors_total",
                &[],
                "Background compaction attempts that failed (and were re-queued)",
            ),
            flusher_errors: registry.counter(
                "persist_flusher_errors_total",
                &[],
                "wal-flusher ticks whose shared fsync failed",
            ),
            recovered_sessions: registry.gauge(
                "persist_recovered_sessions",
                &[],
                "Sessions rebuilt from disk at the most recent open",
            ),
            recovered_events: registry.gauge(
                "persist_recovered_events",
                &[],
                "Session events replayed from disk at the most recent open",
            ),
            unclean_recoveries: registry.counter(
                "persist_unclean_recoveries_total",
                &[],
                "Store opens that found no clean-shutdown marker",
            ),
        }
    }
}

/// Recover one shard directory. Returns the rebuilt mirror, the highest
/// generation seen on disk, and whether the WAL chain ended cleanly.
fn recover_shard(dir: &Path) -> io::Result<(HashMap<u64, SessionState>, u64, bool)> {
    let mut snap_gens: Vec<u64> = Vec::new();
    let mut wal_gens: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(generation) = parse_generation(name, "snap-", ".snap") {
            snap_gens.push(generation);
        } else if let Some(generation) = parse_generation(name, "wal-", ".log") {
            wal_gens.push(generation);
        }
    }
    snap_gens.sort_unstable();
    wal_gens.sort_unstable();
    let top = snap_gens
        .last()
        .copied()
        .max(wal_gens.last().copied())
        .unwrap_or(0);

    // Newest generation with a *valid* snapshot wins; a corrupt or torn
    // snapshot (a kill mid-publish, before the atomic rename's directory
    // entry is durable) falls back to the previous generation, whose WAL
    // still holds its events.
    let mut sessions = HashMap::new();
    let mut base = None;
    for &generation in snap_gens.iter().rev() {
        if let Some(loaded) = snapshot::load(&snap_path(dir, generation)) {
            sessions = loaded;
            base = Some(generation);
            break;
        }
    }
    // Replay every WAL generation at or above the base, oldest first. The
    // background compactor opens generation N+1's WAL *before* snapshot N+1
    // publishes, so a kill in that window legitimately leaves the shard's
    // events split across wal-N (sealed) and wal-N+1 (fresh appends) with
    // snap-N as the newest valid snapshot — the chain replay loses neither
    // half. Without any valid snapshot, the WAL chain is all there is.
    let replay: Vec<u64> = match base {
        Some(base) => wal_gens.iter().copied().filter(|g| *g >= base).collect(),
        None => wal_gens,
    };
    let mut clean = true;
    let mut last_was_marker = true;
    for generation in replay {
        let path = wal_path(dir, generation);
        if !path.exists() {
            continue;
        }
        let bytes = fs::read(&path)?;
        let segment = scan(&bytes, WAL_MAGIC);
        for payload in &segment.records {
            match WalEvent::decode(payload) {
                Ok(event) => {
                    last_was_marker = matches!(event, WalEvent::CleanShutdown);
                    apply_to_mirror(&mut sessions, &event, false)?;
                }
                // A CRC-valid but undecodable record is format skew;
                // treat it like a torn tail and stop replaying this segment.
                Err(_) => {
                    last_was_marker = false;
                    break;
                }
            }
        }
        clean &= segment.is_clean();
    }
    clean &= last_was_marker;
    Ok((sessions, top, clean))
}

/// The durable store: per-shard WAL segments with snapshot compaction.
///
/// See the module docs for the layout and recovery rules. All methods are
/// `&self`; each shard serializes its own appends behind its own mutex. The
/// append path lives in [`crate::appender`], compaction and the maintenance
/// tenants in [`crate::compactor`].
pub struct PersistStore {
    pub(crate) shards: Box<[ShardCell]>,
    pub(crate) snapshot_every: u64,
    pub(crate) flush: FlushPolicy,
    /// `wal-flusher` tenant period.
    pub(crate) flush_interval: Duration,
    /// `wal-compactor` tenant period; zero = inline compaction.
    pub(crate) compact_interval: Duration,
    /// How long a group-commit waiter parks before syncing on its own.
    pub(crate) group_wait_timeout: Duration,
    /// Shard indices awaiting background compaction, in marking order.
    pub(crate) backlog: Mutex<VecDeque<usize>>,
    /// Segment compactions completed since open (plain atomic so status
    /// reporting works identically under `telemetry-noop`).
    pub(crate) compactions: AtomicU64,
    pub(crate) metrics: StoreMetrics,
}

impl PersistStore {
    /// Open (or create) the store at `options.data_dir`, recovering whatever
    /// a previous process left behind.
    ///
    /// Recovery also *rotates*: the recovered state is immediately written
    /// out as a fresh snapshot generation with an empty WAL, and stale files
    /// are deleted — so the on-disk layout is canonical after every startup
    /// and the snapshot path is exercised even on an idle server.
    pub fn open(options: &PersistOptions) -> io::Result<(Self, RecoveredState)> {
        let shard_count = options.shards.max(1);
        let snapshot_every = options.snapshot_every.max(1);
        let metrics = StoreMetrics::resolve();
        let mut shards = Vec::with_capacity(shard_count);
        let mut recovered = Vec::new();
        let mut clean_shutdown = true;
        for index in 0..shard_count {
            let dir = options.data_dir.join(format!("shard-{index:03}"));
            fs::create_dir_all(&dir)?;
            let (sessions, top, clean) = recover_shard(&dir)?;
            clean_shutdown &= clean;

            // Rotate to a fresh generation holding exactly the recovered
            // state, then clear out everything older.
            let generation = top + 1;
            let written = snapshot::write_atomic(&snap_path(&dir, generation), &sessions)?;
            metrics.snapshots.inc();
            metrics.snapshot_bytes.add(written);
            let wal = open_wal(&wal_path(&dir, generation), true)?;
            remove_stale(&dir, generation, &metrics)?;
            sync_dir(&dir)?;

            recovered.extend(sessions.iter().map(|(id, state)| (*id, state.clone())));
            shards.push(ShardCell::new(Shard {
                dir,
                generation,
                wal,
                appended_since_sync: 0,
                events_in_segment: 0,
                appended_total: 0,
                synced_total: 0,
                compaction_pending: false,
                sessions,
            }));
        }
        recovered.sort_by_key(|(id, _)| *id);
        metrics.recovered_sessions.set(recovered.len() as i64);
        metrics
            .recovered_events
            .set(recovered.iter().map(|(_, s)| s.events.len() as i64).sum());
        if !clean_shutdown {
            metrics.unclean_recoveries.inc();
        }
        let flush_interval = Duration::from_millis(options.flush_interval_ms.max(1));
        Ok((
            Self {
                shards: shards.into_boxed_slice(),
                snapshot_every,
                flush: options.flush,
                flush_interval,
                compact_interval: Duration::from_millis(options.compact_interval_ms),
                // Generous multiple of the flusher cadence: the fallback is
                // for a missing or wedged tenant, not a slow tick.
                group_wait_timeout: (flush_interval * 20)
                    .clamp(Duration::from_millis(50), Duration::from_secs(1)),
                backlog: Mutex::new(VecDeque::new()),
                compactions: AtomicU64::new(0),
                metrics,
            },
            RecoveredState {
                sessions: recovered,
                clean_shutdown,
            },
        ))
    }

    /// Number of shards (fixed at open).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured flush policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.flush
    }

    /// Total persisted sessions across all shards (test/diagnostic helper).
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|cell| lock_unpoisoned(&cell.state).sessions.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CorpusOrigin, Registration};
    use tagging_sim::session::SessionEvent;

    fn registration(seed: u64) -> Registration {
        Registration {
            strategy: "FP".into(),
            budget: 50,
            omega: 5,
            seed,
            source: CorpusOrigin::Generate {
                resources: 10,
                seed,
            },
            stability_window: 15,
            stability_tau: 0.999,
            under_tagged_threshold: 10,
        }
    }

    /// Inline-compaction options: the legacy behaviour the original tests
    /// pinned (background maintenance has its own tests in
    /// `tests/maintenance.rs` and `tests/compactor_race.rs`).
    fn options(dir: &Path) -> PersistOptions {
        PersistOptions {
            data_dir: dir.to_path_buf(),
            shards: 2,
            snapshot_every: 4,
            flush: FlushPolicy::Never,
            flush_interval_ms: 5,
            compact_interval_ms: 0,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tagging-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_fresh_store_is_empty_and_clean() {
        let dir = temp_dir("fresh");
        let (store, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(recovered.sessions.is_empty());
        assert!(recovered.clean_shutdown);
        assert_eq!(store.shard_count(), 2);
        assert!(!store.background());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_appended_state_and_flags_missing_shutdown() {
        let dir = temp_dir("reopen");
        {
            let (store, _) = PersistStore::open(&options(&dir)).unwrap();
            store
                .append(
                    0,
                    &WalEvent::Register {
                        session: 1,
                        registration: registration(1),
                    },
                )
                .unwrap();
            store
                .append(
                    0,
                    &WalEvent::Session {
                        session: 1,
                        event: SessionEvent::Lease { k: 5 },
                    },
                )
                .unwrap();
            store
                .append(
                    1,
                    &WalEvent::Register {
                        session: 2,
                        registration: registration(2),
                    },
                )
                .unwrap();
            // Dropped without shutdown(): simulates a kill.
        }
        let (store, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(!recovered.clean_shutdown);
        assert_eq!(recovered.sessions.len(), 2);
        assert_eq!(recovered.sessions[0].0, 1);
        assert_eq!(
            recovered.sessions[0].1.events,
            vec![SessionEvent::Lease { k: 5 }]
        );
        assert_eq!(recovered.sessions[1].0, 2);
        assert!(recovered.sessions[1].1.events.is_empty());
        store.shutdown().unwrap();

        let (_, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(recovered.clean_shutdown);
        assert_eq!(recovered.sessions.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rotates_generations_and_cleans_old_files() {
        let dir = temp_dir("compact");
        let (store, _) = PersistStore::open(&options(&dir)).unwrap();
        store
            .append(
                0,
                &WalEvent::Register {
                    session: 7,
                    registration: registration(7),
                },
            )
            .unwrap();
        // snapshot_every = 4: four more events force at least one rotation.
        for _ in 0..4 {
            store
                .append(
                    0,
                    &WalEvent::Session {
                        session: 7,
                        event: SessionEvent::Lease { k: 1 },
                    },
                )
                .unwrap();
        }
        let status = store.maintenance_status();
        assert!(status.compactions >= 1, "{status:?}");
        assert_eq!(status.backlog_events, 0);
        let shard_dir = dir.join("shard-000");
        let names: Vec<String> = fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let snaps = names.iter().filter(|n| n.ends_with(".snap")).count();
        let wals = names.iter().filter(|n| n.ends_with(".log")).count();
        assert_eq!(
            (snaps, wals),
            (1, 1),
            "stale generations left behind: {names:?}"
        );

        let (_, recovered) = PersistStore::open(&options(&dir)).unwrap();
        let (id, state) = &recovered.sessions[0];
        assert_eq!(*id, 7);
        assert_eq!(state.events.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_event_for_an_unknown_session_is_rejected() {
        let dir = temp_dir("strict");
        let (store, _) = PersistStore::open(&options(&dir)).unwrap();
        let err = store
            .append(
                0,
                &WalEvent::Session {
                    session: 99,
                    event: SessionEvent::Lease { k: 1 },
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_wal_chain_split_across_generations_replays_in_order() {
        // Simulate a kill between the compactor's seal and publish phases:
        // events split across wal-N (sealed) and wal-N+1, snap-N+1 missing.
        let dir = temp_dir("chain");
        {
            let (store, _) = PersistStore::open(&options(&dir)).unwrap();
            store
                .append(
                    0,
                    &WalEvent::Register {
                        session: 3,
                        registration: registration(3),
                    },
                )
                .unwrap();
            store
                .append(
                    0,
                    &WalEvent::Session {
                        session: 3,
                        event: SessionEvent::Lease { k: 2 },
                    },
                )
                .unwrap();
        }
        // Hand-create the next generation's WAL holding a later event, as
        // the sealed-but-unpublished window would leave it.
        let shard_dir = dir.join("shard-000");
        let generation = fs::read_dir(&shard_dir)
            .unwrap()
            .filter_map(|e| {
                parse_generation(e.unwrap().file_name().to_str().unwrap(), "wal-", ".log")
            })
            .max()
            .unwrap();
        let mut wal = open_wal(&wal_path(&shard_dir, generation + 1), true).unwrap();
        use std::io::Write as _;
        wal.write_all(&crate::record::frame(
            &WalEvent::Session {
                session: 3,
                event: SessionEvent::Lease { k: 9 },
            }
            .encode(),
        ))
        .unwrap();
        drop(wal);

        let (_, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert_eq!(recovered.sessions.len(), 1);
        assert_eq!(
            recovered.sessions[0].1.events,
            vec![SessionEvent::Lease { k: 2 }, SessionEvent::Lease { k: 9 }],
            "the sealed WAL and the next generation's WAL must both replay, in order"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
