//! The durable session store: one WAL segment + snapshot per registry shard.
//!
//! ## Layout
//!
//! ```text
//! data_dir/
//!   shard-000/
//!     snap-0000000004.snap    # full shard state as of the segment switch
//!     wal-0000000004.log      # events appended since that snapshot
//!   shard-001/
//!     ...
//! ```
//!
//! A shard's durable state is *snapshot ∘ WAL*: load the snapshot of the
//! current generation, then replay the WAL of the same generation on top.
//! Compaction advances the generation: write a new snapshot of the in-memory
//! mirror (atomic tmp + rename), open a fresh empty WAL, then delete the old
//! generation's files. A crash between any two of those steps leaves a
//! recoverable directory — recovery picks the newest generation with a valid
//! snapshot, ignores stale files, and tolerates a torn final WAL record by
//! discarding the tail.
//!
//! ## Concurrency
//!
//! One mutex per shard, mirroring the server's registry sharding: appends on
//! different shards never contend, and the server appends *after* releasing
//! the session lock, so the WAL mutex is never held under a shard lock.

use crate::event::{SessionState, WalEvent};
use crate::record::{frame, scan, WAL_MAGIC};
use crate::snapshot;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use tagging_runtime::{lock_unpoisoned, FlushPolicy};
use tagging_telemetry::{Counter, Gauge, Histogram};

/// Configuration of a [`PersistStore`].
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Root directory; created (with shard subdirectories) if missing.
    pub data_dir: PathBuf,
    /// Number of shards — must equal the server registry's shard count so
    /// that `shard_of(session)` addresses the same segment across restarts.
    pub shards: usize,
    /// Events appended to one shard between snapshots (compaction cadence).
    pub snapshot_every: u64,
    /// `fsync` policy of the append path.
    pub flush: FlushPolicy,
}

impl PersistOptions {
    /// Options with the default cadence (snapshot every 1024 events per
    /// shard) and flush policy for `shards` shards rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>, shards: usize) -> Self {
        Self {
            data_dir: data_dir.into(),
            shards: shards.max(1),
            snapshot_every: 1024,
            flush: FlushPolicy::default(),
        }
    }
}

/// What [`PersistStore::open`] recovered from disk.
#[derive(Debug)]
pub struct RecoveredState {
    /// Every persisted session, as `(session id, durable state)`, sorted by
    /// id. The caller rebuilds live sessions by replaying `events` onto a
    /// fresh session built from `registration`.
    pub sessions: Vec<(u64, SessionState)>,
    /// True when every shard's WAL ended with a [`WalEvent::CleanShutdown`]
    /// marker (or held no events at all). Informational: recovery works the
    /// same either way.
    pub clean_shutdown: bool,
}

/// Handles into the global telemetry registry for every metric the store
/// records. Resolved once at [`PersistStore::open`] so the append path never
/// touches the registry lock.
///
/// Because these are plain registry families, they flow into the server's
/// trailing-window projection for free: `GET /stats?window=10s` reports
/// `persist_wal_appends_total_per_s` (the live WAL append rate) and windowed
/// fsync/append latency quantiles without the store knowing windows exist.
struct StoreMetrics {
    /// `persist_wal_append_us`: time to mirror + frame + write one event.
    wal_append_us: Arc<Histogram>,
    /// `persist_wal_fsync_us`: time of each device sync on the append path.
    wal_fsync_us: Arc<Histogram>,
    /// `persist_wal_appends_total` / `persist_wal_append_bytes_total`.
    wal_appends: Arc<Counter>,
    wal_append_bytes: Arc<Counter>,
    /// `persist_wal_fsyncs_total`.
    wal_fsyncs: Arc<Counter>,
    /// `persist_snapshot_write_us`: full compaction (snapshot + WAL swap +
    /// stale cleanup) duration.
    snapshot_write_us: Arc<Histogram>,
    /// `persist_snapshots_total` / `persist_snapshot_bytes_total`.
    snapshots: Arc<Counter>,
    snapshot_bytes: Arc<Counter>,
    /// Recovery stats, set once per open: sessions and events rebuilt, and a
    /// counter of opens that found no clean-shutdown marker.
    recovered_sessions: Arc<Gauge>,
    recovered_events: Arc<Gauge>,
    unclean_recoveries: Arc<Counter>,
}

impl StoreMetrics {
    fn resolve() -> Self {
        let registry = tagging_telemetry::global();
        Self {
            wal_append_us: registry.histogram(
                "persist_wal_append_us",
                &[],
                "WAL event append latency (mirror apply + frame write) in microseconds",
            ),
            wal_fsync_us: registry.histogram(
                "persist_wal_fsync_us",
                &[],
                "WAL fsync latency in microseconds",
            ),
            wal_appends: registry.counter("persist_wal_appends_total", &[], "WAL events appended"),
            wal_append_bytes: registry.counter(
                "persist_wal_append_bytes_total",
                &[],
                "Framed WAL bytes written",
            ),
            wal_fsyncs: registry.counter(
                "persist_wal_fsyncs_total",
                &[],
                "Device syncs issued on the WAL append path",
            ),
            snapshot_write_us: registry.histogram(
                "persist_snapshot_write_us",
                &[],
                "Snapshot compaction (write + rotate + cleanup) latency in microseconds",
            ),
            snapshots: registry.counter(
                "persist_snapshots_total",
                &[],
                "Snapshot generations written",
            ),
            snapshot_bytes: registry.counter(
                "persist_snapshot_bytes_total",
                &[],
                "Snapshot bytes written",
            ),
            recovered_sessions: registry.gauge(
                "persist_recovered_sessions",
                &[],
                "Sessions rebuilt from disk at the most recent open",
            ),
            recovered_events: registry.gauge(
                "persist_recovered_events",
                &[],
                "Session events replayed from disk at the most recent open",
            ),
            unclean_recoveries: registry.counter(
                "persist_unclean_recoveries_total",
                &[],
                "Store opens that found no clean-shutdown marker",
            ),
        }
    }
}

struct Shard {
    dir: PathBuf,
    generation: u64,
    wal: File,
    /// Records appended since the last fsync (drives [`FlushPolicy`]).
    appended_since_sync: u64,
    /// Events appended since the last snapshot (drives compaction).
    events_in_segment: u64,
    /// In-memory mirror of the shard's durable state — the source of the
    /// next snapshot, so compaction never re-reads the log.
    sessions: HashMap<u64, SessionState>,
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:010}.log"))
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation:010}.snap"))
}

/// Parse `prefix-<generation>.<ext>` back out of a file name.
fn parse_generation(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_data()
}

fn open_wal(path: &Path, create_magic: bool) -> io::Result<File> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if create_magic {
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
    }
    Ok(file)
}

/// Apply one WAL event to a shard mirror. `strict` makes an event for an
/// unknown session an error (the append path guarantees ordering); recovery
/// passes `false` and skips such debris.
fn apply_to_mirror(
    sessions: &mut HashMap<u64, SessionState>,
    event: &WalEvent,
    strict: bool,
) -> io::Result<()> {
    match event {
        WalEvent::Register {
            session,
            registration,
        } => {
            sessions.insert(
                *session,
                SessionState {
                    registration: registration.clone(),
                    events: Vec::new(),
                },
            );
        }
        WalEvent::Session { session, event } => match sessions.get_mut(session) {
            Some(state) => state.events.push(event.clone()),
            None if strict => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("WAL event for unregistered session {session}"),
                ))
            }
            None => {}
        },
        WalEvent::CleanShutdown => {}
    }
    Ok(())
}

/// Recover one shard directory. Returns the rebuilt mirror, the highest
/// generation seen on disk, and whether the WAL ended cleanly.
fn recover_shard(dir: &Path) -> io::Result<(HashMap<u64, SessionState>, u64, bool)> {
    let mut snap_gens: Vec<u64> = Vec::new();
    let mut wal_gens: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(generation) = parse_generation(name, "snap-", ".snap") {
            snap_gens.push(generation);
        } else if let Some(generation) = parse_generation(name, "wal-", ".log") {
            wal_gens.push(generation);
        }
    }
    snap_gens.sort_unstable();
    wal_gens.sort_unstable();
    let top = snap_gens
        .last()
        .copied()
        .max(wal_gens.last().copied())
        .unwrap_or(0);

    // Newest generation with a *valid* snapshot wins; a corrupt or torn
    // snapshot (impossible under atomic rename, but disks disagree) falls
    // back to the previous generation, whose WAL still holds its events.
    let mut sessions = HashMap::new();
    let mut base = None;
    for &generation in snap_gens.iter().rev() {
        if let Some(loaded) = snapshot::load(&snap_path(dir, generation)) {
            sessions = loaded;
            base = Some(generation);
            break;
        }
    }
    // The WAL to replay is the one of the base generation. Without any valid
    // snapshot, the newest WAL is all there is.
    let replay_gen = base.or(wal_gens.last().copied());
    let mut clean = true;
    if let Some(generation) = replay_gen {
        let path = wal_path(dir, generation);
        if path.exists() {
            let bytes = fs::read(&path)?;
            let segment = scan(&bytes, WAL_MAGIC);
            let mut last_was_marker = true;
            for payload in &segment.records {
                match WalEvent::decode(payload) {
                    Ok(event) => {
                        last_was_marker = matches!(event, WalEvent::CleanShutdown);
                        apply_to_mirror(&mut sessions, &event, false)?;
                    }
                    // A CRC-valid but undecodable record is format skew;
                    // treat it like a torn tail and stop replaying.
                    Err(_) => {
                        last_was_marker = false;
                        break;
                    }
                }
            }
            clean = segment.is_clean() && last_was_marker;
        }
    }
    Ok((sessions, top, clean))
}

/// The durable store: per-shard WAL segments with snapshot compaction.
///
/// See the module docs for the layout and recovery rules. All methods are
/// `&self`; each shard serializes its own appends behind its own mutex.
pub struct PersistStore {
    shards: Box<[Mutex<Shard>]>,
    snapshot_every: u64,
    flush: FlushPolicy,
    metrics: StoreMetrics,
}

impl PersistStore {
    /// Open (or create) the store at `options.data_dir`, recovering whatever
    /// a previous process left behind.
    ///
    /// Recovery also *rotates*: the recovered state is immediately written
    /// out as a fresh snapshot generation with an empty WAL, and stale files
    /// are deleted — so the on-disk layout is canonical after every startup
    /// and the snapshot path is exercised even on an idle server.
    pub fn open(options: &PersistOptions) -> io::Result<(Self, RecoveredState)> {
        let shard_count = options.shards.max(1);
        let snapshot_every = options.snapshot_every.max(1);
        let metrics = StoreMetrics::resolve();
        let mut shards = Vec::with_capacity(shard_count);
        let mut recovered = Vec::new();
        let mut clean_shutdown = true;
        for index in 0..shard_count {
            let dir = options.data_dir.join(format!("shard-{index:03}"));
            fs::create_dir_all(&dir)?;
            let (sessions, top, clean) = recover_shard(&dir)?;
            clean_shutdown &= clean;

            // Rotate to a fresh generation holding exactly the recovered
            // state, then clear out everything older.
            let generation = top + 1;
            let written = snapshot::write_atomic(&snap_path(&dir, generation), &sessions)?;
            metrics.snapshots.inc();
            metrics.snapshot_bytes.add(written);
            let wal = open_wal(&wal_path(&dir, generation), true)?;
            remove_stale(&dir, generation)?;
            sync_dir(&dir)?;

            recovered.extend(sessions.iter().map(|(id, state)| (*id, state.clone())));
            shards.push(Mutex::new(Shard {
                dir,
                generation,
                wal,
                appended_since_sync: 0,
                events_in_segment: 0,
                sessions,
            }));
        }
        recovered.sort_by_key(|(id, _)| *id);
        metrics.recovered_sessions.set(recovered.len() as i64);
        metrics
            .recovered_events
            .set(recovered.iter().map(|(_, s)| s.events.len() as i64).sum());
        if !clean_shutdown {
            metrics.unclean_recoveries.inc();
        }
        Ok((
            Self {
                shards: shards.into_boxed_slice(),
                snapshot_every,
                flush: options.flush,
                metrics,
            },
            RecoveredState {
                sessions: recovered,
                clean_shutdown,
            },
        ))
    }

    /// Number of shards (fixed at open).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Append one event to `shard`'s WAL and mirror. The record is written
    /// and flushed to the OS before this returns (so it survives a process
    /// kill); device sync follows the configured [`FlushPolicy`].
    pub fn append(&self, shard: usize, event: &WalEvent) -> io::Result<()> {
        let mut guard = lock_unpoisoned(&self.shards[shard % self.shards.len()]);
        let append_timer = self.metrics.wal_append_us.start_timer();
        apply_to_mirror(&mut guard.sessions, event, true)?;
        let framed = frame(&event.encode());
        guard.wal.write_all(&framed)?;
        drop(append_timer);
        self.metrics.wal_appends.inc();
        self.metrics.wal_append_bytes.add(framed.len() as u64);
        guard.appended_since_sync += 1;
        if self.flush.should_sync(guard.appended_since_sync) {
            let _fsync_timer = self.metrics.wal_fsync_us.start_timer();
            FlushPolicy::sync(&guard.wal)?;
            self.metrics.wal_fsyncs.inc();
            guard.appended_since_sync = 0;
        }
        guard.events_in_segment += 1;
        if guard.events_in_segment >= self.snapshot_every {
            rotate(&mut guard, &self.metrics)?;
        }
        Ok(())
    }

    /// Force a compaction of every shard (snapshot + fresh WAL) regardless of
    /// cadence. Used by tests; the server relies on the cadence.
    pub fn compact(&self) -> io::Result<()> {
        for shard in self.shards.iter() {
            rotate(&mut lock_unpoisoned(shard), &self.metrics)?;
        }
        Ok(())
    }

    /// Append a [`WalEvent::CleanShutdown`] marker to every shard and fsync,
    /// regardless of flush policy. Call after the server has drained.
    pub fn shutdown(&self) -> io::Result<()> {
        for shard in self.shards.iter() {
            let mut guard = lock_unpoisoned(shard);
            guard
                .wal
                .write_all(&frame(&WalEvent::CleanShutdown.encode()))?;
            let _fsync_timer = self.metrics.wal_fsync_us.start_timer();
            FlushPolicy::sync(&guard.wal)?;
            self.metrics.wal_fsyncs.inc();
            guard.appended_since_sync = 0;
        }
        Ok(())
    }

    /// Total persisted sessions across all shards (test/diagnostic helper).
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_unpoisoned(shard).sessions.len())
            .sum()
    }
}

/// Advance `shard` one generation: snapshot the mirror, open a fresh WAL,
/// delete the previous generation's files.
fn rotate(shard: &mut Shard, metrics: &StoreMetrics) -> io::Result<()> {
    let _compact_timer = metrics.snapshot_write_us.start_timer();
    let next = shard.generation + 1;
    let written = snapshot::write_atomic(&snap_path(&shard.dir, next), &shard.sessions)?;
    metrics.snapshots.inc();
    metrics.snapshot_bytes.add(written);
    let wal = open_wal(&wal_path(&shard.dir, next), true)?;
    shard.wal = wal;
    shard.generation = next;
    shard.appended_since_sync = 0;
    shard.events_in_segment = 0;
    remove_stale(&shard.dir, next)?;
    sync_dir(&shard.dir)
}

/// Delete every snapshot/WAL file of a generation other than `keep`, plus
/// leftover `.tmp` files from interrupted snapshot writes.
fn remove_stale(dir: &Path, keep: u64) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match (
            parse_generation(name, "snap-", ".snap"),
            parse_generation(name, "wal-", ".log"),
        ) {
            (Some(generation), _) | (_, Some(generation)) => generation != keep,
            _ => name.ends_with(".tmp"),
        };
        if stale {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CorpusOrigin, Registration};
    use tagging_sim::session::SessionEvent;

    fn registration(seed: u64) -> Registration {
        Registration {
            strategy: "FP".into(),
            budget: 50,
            omega: 5,
            seed,
            source: CorpusOrigin::Generate {
                resources: 10,
                seed,
            },
            stability_window: 15,
            stability_tau: 0.999,
            under_tagged_threshold: 10,
        }
    }

    fn options(dir: &Path) -> PersistOptions {
        PersistOptions {
            data_dir: dir.to_path_buf(),
            shards: 2,
            snapshot_every: 4,
            flush: FlushPolicy::Never,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tagging-persist-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_fresh_store_is_empty_and_clean() {
        let dir = temp_dir("fresh");
        let (store, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(recovered.sessions.is_empty());
        assert!(recovered.clean_shutdown);
        assert_eq!(store.shard_count(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_appended_state_and_flags_missing_shutdown() {
        let dir = temp_dir("reopen");
        {
            let (store, _) = PersistStore::open(&options(&dir)).unwrap();
            store
                .append(
                    0,
                    &WalEvent::Register {
                        session: 1,
                        registration: registration(1),
                    },
                )
                .unwrap();
            store
                .append(
                    0,
                    &WalEvent::Session {
                        session: 1,
                        event: SessionEvent::Lease { k: 5 },
                    },
                )
                .unwrap();
            store
                .append(
                    1,
                    &WalEvent::Register {
                        session: 2,
                        registration: registration(2),
                    },
                )
                .unwrap();
            // Dropped without shutdown(): simulates a kill.
        }
        let (store, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(!recovered.clean_shutdown);
        assert_eq!(recovered.sessions.len(), 2);
        assert_eq!(recovered.sessions[0].0, 1);
        assert_eq!(
            recovered.sessions[0].1.events,
            vec![SessionEvent::Lease { k: 5 }]
        );
        assert_eq!(recovered.sessions[1].0, 2);
        assert!(recovered.sessions[1].1.events.is_empty());
        store.shutdown().unwrap();

        let (_, recovered) = PersistStore::open(&options(&dir)).unwrap();
        assert!(recovered.clean_shutdown);
        assert_eq!(recovered.sessions.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rotates_generations_and_cleans_old_files() {
        let dir = temp_dir("compact");
        let (store, _) = PersistStore::open(&options(&dir)).unwrap();
        store
            .append(
                0,
                &WalEvent::Register {
                    session: 7,
                    registration: registration(7),
                },
            )
            .unwrap();
        // snapshot_every = 4: four more events force at least one rotation.
        for _ in 0..4 {
            store
                .append(
                    0,
                    &WalEvent::Session {
                        session: 7,
                        event: SessionEvent::Lease { k: 1 },
                    },
                )
                .unwrap();
        }
        let shard_dir = dir.join("shard-000");
        let names: Vec<String> = fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        let snaps = names.iter().filter(|n| n.ends_with(".snap")).count();
        let wals = names.iter().filter(|n| n.ends_with(".log")).count();
        assert_eq!(
            (snaps, wals),
            (1, 1),
            "stale generations left behind: {names:?}"
        );

        let (_, recovered) = PersistStore::open(&options(&dir)).unwrap();
        let (id, state) = &recovered.sessions[0];
        assert_eq!(*id, 7);
        assert_eq!(state.events.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_event_for_an_unknown_session_is_rejected() {
        let dir = temp_dir("strict");
        let (store, _) = PersistStore::open(&options(&dir)).unwrap();
        let err = store
            .append(
                0,
                &WalEvent::Session {
                    session: 99,
                    event: SessionEvent::Lease { k: 1 },
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }
}
