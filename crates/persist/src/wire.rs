//! A tiny byte-level codec for WAL and snapshot payloads.
//!
//! Everything on disk is little-endian and length-prefixed; there is no
//! self-description (the record framing in [`crate::record`] carries the CRC,
//! and the payloads start with a one-byte tag where a choice exists). The
//! format is versioned by the segment magic, not per field — a format change
//! bumps `TAGWAL01` / `TAGSNP01` and old files are rejected as corrupt rather
//! than misread.

use std::fmt;

/// Decoding failure: the payload was shorter than the declared structure or
/// contained an invalid tag / non-UTF-8 string.
///
/// A `WireError` after a CRC match means a programming error or a format
/// version skew, not bit rot — callers treat it like corruption anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload while decoding {}", self.context)
    }
}

impl std::error::Error for WireError {}

fn err(context: &'static str) -> WireError {
    WireError { context }
}

/// Append-only payload builder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte (used for enum tags and option flags).
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// A `usize` stored as `u64` (sizes are platform-independent on disk).
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// An `f64` stored by bit pattern, so round-trips are exact.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value.as_bytes());
    }
}

/// Cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True once every byte has been consumed — decoders check this to reject
    /// payloads with trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(err(context))?;
        if end > self.buf.len() {
            return Err(err(context));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// One raw byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let bytes = self.take(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// A `u64` narrowed back to `usize`, rejecting values that don't fit.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, WireError> {
        usize::try_from(self.get_u64(context)?).map_err(|_| err(context))
    }

    /// An `f64` restored from its bit pattern.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.get_usize(context)?;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err(context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12_345);
        w.put_f64(-0.125);
        w.put_str("naïve — utf8");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("t").unwrap(), 7);
        assert_eq!(r.get_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX);
        assert_eq!(r.get_usize("t").unwrap(), 12_345);
        assert_eq!(r.get_f64("t").unwrap(), -0.125);
        assert_eq!(r.get_str("t").unwrap(), "naïve — utf8");
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_fail_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.get_u64("short").is_err());
        // A huge string length must not attempt a huge allocation.
        let mut w = Writer::new();
        w.put_usize(usize::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).get_str("huge").is_err());
    }
}
