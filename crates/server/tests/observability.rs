//! End-to-end tests for the time-resolved observability layer: the flight
//! recorder rings behind `GET /debug/flight` / `GET /debug/slow`, the
//! windowed `GET /stats?window=...` projection, and the event-loop watchdog
//! (via the `inject_sweep_stall_us` test hook).
//!
//! Everything observation-dependent is gated on
//! [`tagging_telemetry::enabled`] so the suite also passes when the server
//! is built with `telemetry-noop`.

use serde::Value;

use tagging_server::http::HttpClient;
use tagging_server::{ServerOptions, TaggingServer, TelemetryOptions};

fn spawn_with(options: ServerOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = TaggingServer::bind_opts("127.0.0.1:0", options).expect("bind ephemeral port");
    let (addr, handle) = server.spawn().expect("spawn server");
    (addr.to_string(), handle)
}

fn shutdown(client: &mut HttpClient, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    client.request("POST", "/shutdown", None).expect("shutdown");
    handle.join().expect("join").expect("clean exit");
}

fn uint_at(value: &Value, path: &[&str]) -> Option<u64> {
    let mut cursor = value;
    for key in path {
        cursor = cursor.get(key)?;
    }
    match *cursor {
        Value::UInt(n) => Some(n),
        Value::Int(n) => u64::try_from(n).ok(),
        _ => None,
    }
}

fn records_of(body: &Value) -> Vec<Value> {
    match body.get("records") {
        Some(Value::Array(records)) => records.clone(),
        other => panic!("no records array: {other:?}"),
    }
}

/// The flight ring keeps the most recent N requests: with capacity 4 and
/// more requests than that, the scrape returns exactly the 4 newest (ids
/// strictly increasing, ending at the most recent), while `recorded` counts
/// everything that ever passed through.
#[test]
fn flight_ring_returns_most_recent_requests() {
    let mut options = ServerOptions::new(2);
    options.telemetry = TelemetryOptions {
        flight_capacity: 4,
        ..TelemetryOptions::default()
    };
    let (addr, handle) = spawn_with(options);
    let mut client = HttpClient::connect(&addr).expect("connect");

    const DRIVEN: u64 = 10;
    for _ in 0..DRIVEN {
        let (status, _) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }
    let (status, flight) = client.request("GET", "/debug/flight", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(uint_at(&flight, &["capacity"]), Some(4));

    if tagging_telemetry::enabled() {
        assert!(
            uint_at(&flight, &["recorded"]).unwrap() >= DRIVEN,
            "every request passes through the ring: {flight:?}"
        );
        let records = records_of(&flight);
        assert_eq!(records.len(), 4, "capacity bounds the scrape: {flight:?}");
        let ids: Vec<u64> = records
            .iter()
            .map(|r| uint_at(r, &["id"]).expect("record id"))
            .collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "records must be ordered oldest to newest: {ids:?}"
        );
        for record in &records {
            assert!(record.get("route").is_some(), "record has a route");
            assert!(record.get("status").is_some(), "record has a status");
            assert!(record.get("latency_us").is_some(), "record has latency");
            assert!(record.get("queue_us").is_some(), "record has queue wait");
        }
    } else {
        assert_eq!(uint_at(&flight, &["recorded"]), Some(0));
    }

    // `?n=` truncates to the newest K.
    let (status, two) = client.request("GET", "/debug/flight?n=2", None).unwrap();
    assert_eq!(status, 200);
    if tagging_telemetry::enabled() {
        assert_eq!(records_of(&two).len(), 2);
    }

    shutdown(&mut client, handle);
}

/// With the threshold at 0 every request is "slow", so the slow ring
/// retains each one; with the threshold effectively infinite it retains
/// none while the flight ring still sees everything.
#[test]
fn slow_ring_honors_the_latency_threshold() {
    // Threshold 0: everything qualifies.
    let mut options = ServerOptions::new(2);
    options.telemetry = TelemetryOptions {
        slow_threshold_us: 0,
        ..TelemetryOptions::default()
    };
    let (addr, handle) = spawn_with(options);
    let mut client = HttpClient::connect(&addr).expect("connect");
    for _ in 0..5 {
        client.request("GET", "/healthz", None).unwrap();
    }
    let (status, slow) = client.request("GET", "/debug/slow", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(uint_at(&slow, &["threshold_us"]), Some(0));
    if tagging_telemetry::enabled() {
        assert!(
            uint_at(&slow, &["recorded"]).unwrap() >= 5,
            "threshold 0 retains every request: {slow:?}"
        );
    }
    shutdown(&mut client, handle);

    // Threshold u64::MAX: nothing qualifies, but the flight ring still fills.
    let mut options = ServerOptions::new(2);
    options.telemetry = TelemetryOptions {
        slow_threshold_us: u64::MAX,
        ..TelemetryOptions::default()
    };
    let (addr, handle) = spawn_with(options);
    let mut client = HttpClient::connect(&addr).expect("connect");
    for _ in 0..5 {
        client.request("GET", "/healthz", None).unwrap();
    }
    let (_, slow) = client.request("GET", "/debug/slow", None).unwrap();
    assert_eq!(uint_at(&slow, &["recorded"]), Some(0));
    if tagging_telemetry::enabled() {
        let (_, flight) = client.request("GET", "/debug/flight", None).unwrap();
        assert!(uint_at(&flight, &["recorded"]).unwrap() >= 5);
    }
    shutdown(&mut client, handle);
}

/// `GET /stats?window=...` carries a window descriptor and parses units;
/// malformed windows are a 400, and the wrong method on the debug routes a
/// 405 — never a panic.
#[test]
fn windowed_stats_and_debug_routes_validate_input() {
    let (addr, handle) = spawn_with(ServerOptions::new(2));
    let mut client = HttpClient::connect(&addr).expect("connect");

    let (status, stats) = client.request("GET", "/stats?window=2s", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(uint_at(&stats, &["window", "requested_ms"]), Some(2_000));
    assert!(
        stats.get("histograms").is_some(),
        "windowed stats project histograms"
    );
    assert!(stats.get("rates").is_some(), "windowed stats project rates");

    let (status, ms) = client.request("GET", "/stats?window=250ms", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(uint_at(&ms, &["window", "requested_ms"]), Some(250));

    for bad in [
        "/stats?window=bogus",
        "/stats?window=0",
        "/stats?window=-1s",
    ] {
        let (status, _) = client.request("GET", bad, None).unwrap();
        assert_eq!(status, 400, "{bad} must be rejected");
    }
    let (status, _) = client.request("POST", "/debug/flight", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.request("DELETE", "/debug/slow", None).unwrap();
    assert_eq!(status, 405);

    shutdown(&mut client, handle);
}

/// Injecting a sleep into the readiness sweep longer than the stall budget
/// must be counted: `server_loop_stalls_total` goes up and the gap is
/// surfaced through the `/stats` gauges. This is the watchdog's contract —
/// an event loop that stops breathing is visible from the outside.
#[test]
fn injected_sweep_stall_is_counted_and_surfaced() {
    if !tagging_telemetry::enabled() {
        return;
    }
    let mut options = ServerOptions::new(2);
    options.telemetry = TelemetryOptions {
        stall_budget_us: 20_000,
        inject_sweep_stall_us: 80_000,
        ..TelemetryOptions::default()
    };
    let (addr, handle) = spawn_with(options);
    // Connecting already rides through the stalled sweep; by the time the
    // first response arrives the overrun has been measured and recorded.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    let (status, stats) = client.request("GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    let stalls = uint_at(&stats, &["counters", "server_loop_stalls_total"])
        .expect("stall counter projected into /stats");
    assert!(stalls >= 1, "injected stall must be counted: {stats:?}");
    let last = uint_at(&stats, &["gauges", "server_loop_last_stall_us"])
        .expect("last-stall gauge projected into /stats");
    assert!(
        last >= 20_000,
        "the surfaced gap must exceed the budget: {last}"
    );
    let heartbeats = uint_at(&stats, &["counters", "server_loop_heartbeats_total"])
        .expect("heartbeat counter projected into /stats");
    assert!(heartbeats >= 1, "the loop heartbeats while serving");

    shutdown(&mut client, handle);
}
