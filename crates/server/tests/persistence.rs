//! Durable-session tests straight against [`TaggingService`] (no sockets):
//! a service backed by a [`PersistStore`] must come back from an abrupt stop
//! with every session intact — identical metrics, identical pending tasks,
//! a continuing id sequence — and must answer corpus problems with 4xx, not
//! a panicking 500.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::Value;
use tagging_persist::{PersistOptions, PersistStore};
use tagging_runtime::{FlushPolicy, Runtime};
use tagging_server::http::Request;
use tagging_server::TaggingService;

const SHARDS: usize = 4;

fn request(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn store_options(dir: &Path) -> PersistOptions {
    PersistOptions {
        data_dir: dir.to_path_buf(),
        shards: SHARDS,
        // Small cadence so these tests exercise compaction, not just the WAL.
        snapshot_every: 8,
        flush: FlushPolicy::Never,
        flush_interval_ms: 5,
        // Inline compaction: these tests drive the service without the
        // scheduler, so the legacy mode keeps them exercising rotation. The
        // kill-point sweep below covers the background-compaction windows.
        compact_interval_ms: 0,
    }
}

/// Open (or reopen) a durable service over `dir`.
fn open_service(dir: &Path) -> TaggingService {
    let (store, recovered) = PersistStore::open(&store_options(dir)).expect("open store");
    TaggingService::with_persist(Runtime::new(2), SHARDS, Arc::new(store), &recovered)
        .expect("recover service")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tagging-server-persist-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn call(service: &TaggingService, method: &str, path: &str, body: &str) -> (u16, Value) {
    let handled = service.handle(&request(method, path, body));
    (handled.response.status, handled.response.body)
}

fn register(service: &TaggingService, strategy: &str, budget: u64, seed: u64) -> u64 {
    let body = format!(
        r#"{{"strategy":"{strategy}","budget":{budget},
            "source":{{"generate":{{"resources":20,"seed":{seed}}}}}}}"#
    );
    let (status, response) = call(service, "POST", "/scenarios", &body);
    assert_eq!(status, 200, "{response:?}");
    match response.get("scenario_id") {
        Some(&Value::UInt(id)) => id,
        other => panic!("no scenario_id: {other:?}"),
    }
}

/// Leases `k` tasks and returns their ids.
fn lease(service: &TaggingService, id: u64, k: usize) -> Vec<u64> {
    let (status, response) = call(
        service,
        "POST",
        &format!("/scenarios/{id}/batch"),
        &format!(r#"{{"k":{k}}}"#),
    );
    assert_eq!(status, 200, "{response:?}");
    match response.get("tasks") {
        Some(Value::Array(tasks)) => tasks
            .iter()
            .map(|t| match t.get("task_id") {
                Some(&Value::UInt(id)) => id,
                other => panic!("no task_id: {other:?}"),
            })
            .collect(),
        other => panic!("no tasks: {other:?}"),
    }
}

fn report_replay(service: &TaggingService, id: u64, tasks: &[u64]) {
    let completions: Vec<String> = tasks
        .iter()
        .map(|t| format!(r#"{{"task_id":{t}}}"#))
        .collect();
    let (status, response) = call(
        service,
        "POST",
        &format!("/scenarios/{id}/report"),
        &format!(r#"{{"completions":[{}]}}"#, completions.join(",")),
    );
    assert_eq!(status, 200, "{response:?}");
}

fn pending_tasks(service: &TaggingService, id: u64) -> Vec<u64> {
    let (status, response) = call(service, "GET", &format!("/scenarios/{id}/tasks"), "");
    assert_eq!(status, 200, "{response:?}");
    match response.get("pending") {
        Some(Value::Array(ids)) => ids
            .iter()
            .map(|v| match v {
                Value::UInt(id) => *id,
                other => panic!("bad id: {other:?}"),
            })
            .collect(),
        other => panic!("no pending: {other:?}"),
    }
}

/// Metrics JSON with the wall-clock field removed (it legitimately differs
/// across processes; everything else must be bit-identical).
fn comparable_metrics(service: &TaggingService, id: u64) -> Value {
    let (status, response) = call(service, "GET", &format!("/scenarios/{id}/metrics"), "");
    assert_eq!(status, 200, "{response:?}");
    match response {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "runtime_seconds")
                .collect(),
        ),
        other => panic!("metrics not an object: {other:?}"),
    }
}

#[test]
fn sessions_survive_an_abrupt_stop_with_identical_state() {
    let dir = temp_dir("abrupt");
    let (ids, before): (Vec<u64>, Vec<Value>) = {
        let service = open_service(&dir);
        let mut ids = Vec::new();
        for (strategy, seed) in [("FP", 1), ("RR", 2), ("MU", 3), ("FP-MU", 4), ("FC", 5)] {
            ids.push(register(&service, strategy, 40, seed));
        }
        for &id in &ids {
            // Mixed history: reported leases, tagged reports, and one batch
            // left pending so recovery has ghosts to restore.
            let tasks = lease(&service, id, 6);
            report_replay(&service, id, &tasks);
            let tasks = lease(&service, id, 5);
            let completions: Vec<String> = tasks
                .iter()
                .map(|t| format!(r#"{{"task_id":{t},"tags":["x","y-{t}"]}}"#))
                .collect();
            let (status, _) = call(
                &service,
                "POST",
                &format!("/scenarios/{id}/report"),
                &format!(r#"{{"completions":[{}]}}"#, completions.join(",")),
            );
            assert_eq!(status, 200);
            lease(&service, id, 4); // left pending
        }
        let before = ids
            .iter()
            .map(|&id| comparable_metrics(&service, id))
            .collect();
        (ids, before)
        // The service (and its store) drops here without any shutdown call —
        // the closest a unit test gets to a kill.
    };

    let service = open_service(&dir);
    assert_eq!(service.session_count(), ids.len());
    for (&id, before) in ids.iter().zip(&before) {
        assert_eq!(
            comparable_metrics(&service, id),
            *before,
            "session {id} diverged across restart"
        );
        assert_eq!(pending_tasks(&service, id).len(), 4);
    }

    // The id sequence continues: no recycled ids after recovery.
    let next = register(&service, "FP", 10, 9);
    assert_eq!(next, *ids.iter().max().unwrap() + 1);

    // And recovered sessions keep working: drain one to budget exhaustion.
    let id = ids[0];
    loop {
        let tasks = lease(&service, id, 8);
        let pending = pending_tasks(&service, id);
        report_replay(&service, id, &pending);
        if tasks.is_empty() {
            break;
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_survives_a_second_restart_after_new_traffic() {
    // Restart, write more (exercising post-recovery WAL segments and
    // compaction), restart again.
    let dir = temp_dir("tworestarts");
    let id = {
        let service = open_service(&dir);
        let id = register(&service, "FP-MU", 30, 7);
        let tasks = lease(&service, id, 7);
        report_replay(&service, id, &tasks);
        id
    };
    let before = {
        let service = open_service(&dir);
        let tasks = lease(&service, id, 9);
        report_replay(&service, id, &tasks);
        comparable_metrics(&service, id)
    };
    let service = open_service(&dir);
    assert_eq!(comparable_metrics(&service, id), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_wal_tail_is_truncated_not_fatal() {
    let dir = temp_dir("torn");
    let id = {
        let service = open_service(&dir);
        let id = register(&service, "RR", 20, 3);
        let tasks = lease(&service, id, 5);
        report_replay(&service, id, &tasks);
        id
    };
    // Tear the tail of every shard WAL by a few bytes; only one shard holds
    // the session, the others are empty (magic only, torn to a bad header).
    let mut torn = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let shard_dir = entry.unwrap().path();
        for file in std::fs::read_dir(&shard_dir).unwrap() {
            let path = file.unwrap().path();
            if path.extension().is_some_and(|e| e == "log") {
                let len = std::fs::metadata(&path).unwrap().len();
                if len > 8 {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .unwrap()
                        .set_len(len - 3)
                        .unwrap();
                    torn += 1;
                }
            }
        }
    }
    assert!(torn >= 1, "expected at least one non-empty WAL");

    // The session survives; the torn final record (the report) is discarded,
    // so its five tasks are pending again — exactly the ghost-lease shape.
    let service = open_service(&dir);
    assert_eq!(service.session_count(), 1);
    assert_eq!(pending_tasks(&service, id).len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Kill-point sweep: background compaction proceeds seal → publish → retire,
// and a kill (SIGKILL, power loss) can land between any two steps. Each case
// below reconstructs one such on-disk state exactly — the same bytes a kill
// at that point leaves behind — and asserts the service recovers bit-exact
// session state from it. The CI crash-recovery job delivers real SIGKILLs
// under load; this sweep pins each window deterministically.
// ---------------------------------------------------------------------------

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn shard_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs
}

/// Highest WAL generation present in one shard directory.
fn max_wal_gen(shard: &Path) -> u64 {
    std::fs::read_dir(shard)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().ok()?;
            let gen = name.strip_prefix("wal-")?.strip_suffix(".log")?;
            gen.parse::<u64>().ok()
        })
        .max()
        .expect("shard dir has at least one WAL")
}

fn wal_file(shard: &Path, gen: u64) -> PathBuf {
    shard.join(format!("wal-{gen:010}.log"))
}

fn snap_file(shard: &Path, gen: u64) -> PathBuf {
    shard.join(format!("snap-{gen:010}.snap"))
}

/// Builds a mixed-history base state under `dir`, returning the session ids
/// and their reference metrics. The directory is left as an abrupt stop
/// leaves it: no clean-shutdown marker, pending leases in the WAL tail.
fn build_base_state(dir: &Path) -> (Vec<u64>, Vec<Value>) {
    let service = open_service(dir);
    let mut ids = Vec::new();
    for (strategy, seed) in [("FP", 11), ("RR", 12), ("MU", 13), ("FP-MU", 14)] {
        ids.push(register(&service, strategy, 60, seed));
    }
    for &id in &ids {
        let tasks = lease(&service, id, 6);
        report_replay(&service, id, &tasks);
        let tasks = lease(&service, id, 2);
        report_replay(&service, id, &tasks);
        lease(&service, id, 3); // left pending: recovery restores ghosts
    }
    let before = ids
        .iter()
        .map(|&id| comparable_metrics(&service, id))
        .collect();
    (ids, before)
}

/// Reopens a service over `dir` and asserts every session recovered with
/// metrics identical to the reference.
fn assert_recovers_bit_exact(dir: &Path, ids: &[u64], before: &[Value], case: &str) {
    let service = open_service(dir);
    assert_eq!(service.session_count(), ids.len(), "{case}: session count");
    for (&id, want) in ids.iter().zip(before) {
        assert_eq!(
            comparable_metrics(&service, id),
            *want,
            "{case}: session {id} diverged"
        );
    }
}

/// Kill point 1 — after the compactor sealed a generation (created the
/// next-generation WAL, still empty) but before the snapshot was cut. The
/// chain replay must traverse both generations.
#[test]
fn kill_after_seal_before_snapshot_recovers_bit_exactly() {
    let dir = temp_dir("kp-seal");
    let (ids, before) = build_base_state(&dir);
    for shard in shard_dirs(&dir) {
        let gen = max_wal_gen(&shard);
        std::fs::write(
            wal_file(&shard, gen + 1),
            tagging_persist::record::WAL_MAGIC,
        )
        .unwrap();
    }
    assert_recovers_bit_exact(&dir, &ids, &before, "seal-only");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill point 2 — the appender moved on to the next generation and wrote
/// records there while the compactor was still publishing the snapshot: the
/// live event stream is split across two WAL files. Recovery must replay
/// both, in order, as one journal.
#[test]
fn kill_with_events_split_across_wal_generations_recovers_bit_exactly() {
    use tagging_persist::record::{frame, scan, WAL_MAGIC};

    let dir = temp_dir("kp-split");
    let (ids, before) = build_base_state(&dir);
    let mut split = 0;
    for shard in shard_dirs(&dir) {
        let gen = max_wal_gen(&shard);
        let bytes = std::fs::read(wal_file(&shard, gen)).unwrap();
        let segment = scan(&bytes, WAL_MAGIC);
        assert!(segment.is_clean(), "base WAL must be clean");
        if segment.records.len() < 2 {
            continue;
        }
        let cut = segment.records.len() / 2;
        let mut head = WAL_MAGIC.to_vec();
        for record in &segment.records[..cut] {
            head.extend_from_slice(&frame(record));
        }
        let mut tail = WAL_MAGIC.to_vec();
        for record in &segment.records[cut..] {
            tail.extend_from_slice(&frame(record));
        }
        std::fs::write(wal_file(&shard, gen), head).unwrap();
        std::fs::write(wal_file(&shard, gen + 1), tail).unwrap();
        split += 1;
    }
    assert!(split >= 1, "expected at least one WAL with two records");
    assert_recovers_bit_exact(&dir, &ids, &before, "split-wal");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill point 3 — the snapshot of the next generation is published but the
/// stale previous-generation files were not yet deleted. Recovery must pick
/// the newest snapshot and ignore the leftovers.
#[test]
fn kill_before_stale_removal_recovers_bit_exactly() {
    let dir = temp_dir("kp-stale");
    let (ids, before) = build_base_state(&dir);

    // Advance every shard one generation the way the compactor does (the
    // forced compaction also retires stale files), then resurrect the old
    // generation's files next to the new ones.
    let backup = temp_dir("kp-stale-backup");
    copy_tree(&dir, &backup);
    {
        let (store, _) = PersistStore::open(&store_options(&dir)).expect("open store");
        store.compact().expect("forced compaction");
    }
    for (old, new) in shard_dirs(&backup).iter().zip(shard_dirs(&dir).iter()) {
        for entry in std::fs::read_dir(old).unwrap() {
            let entry = entry.unwrap();
            let to = new.join(entry.file_name());
            if !to.exists() {
                std::fs::copy(entry.path(), &to).unwrap();
            }
        }
    }
    assert_recovers_bit_exact(&dir, &ids, &before, "stale-left-behind");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&backup).unwrap();
}

/// Kill point 4 — the next generation's snapshot is torn (a power loss ate
/// its tail before the bytes hit the device). Recovery must reject it and
/// fall back one generation, replaying the previous snapshot plus the full
/// WAL chain.
#[test]
fn a_torn_snapshot_falls_back_a_generation_bit_exactly() {
    let dir = temp_dir("kp-torn-snap");
    let (ids, before) = build_base_state(&dir);

    let backup = temp_dir("kp-torn-snap-backup");
    copy_tree(&dir, &backup);
    {
        let (store, _) = PersistStore::open(&store_options(&dir)).expect("open store");
        store.compact().expect("forced compaction");
    }
    for (old, new) in shard_dirs(&backup).iter().zip(shard_dirs(&dir).iter()) {
        for entry in std::fs::read_dir(old).unwrap() {
            let entry = entry.unwrap();
            let to = new.join(entry.file_name());
            if !to.exists() {
                std::fs::copy(entry.path(), &to).unwrap();
            }
        }
        // Tear the freshly published snapshot: recovery must fall back to
        // the resurrected previous generation.
        let snap = snap_file(new, max_wal_gen(new));
        let len = std::fs::metadata(&snap).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&snap)
            .unwrap()
            .set_len(len.saturating_sub(3))
            .unwrap();
    }
    assert_recovers_bit_exact(&dir, &ids, &before, "torn-snapshot");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&backup).unwrap();
}

#[test]
fn durable_flag_reflects_configuration() {
    let dir = temp_dir("flag");
    let service = open_service(&dir);
    assert!(service.durable());
    assert!(!TaggingService::with_shards(Runtime::new(1), SHARDS).durable());
    std::fs::remove_dir_all(&dir).unwrap();
}
