//! Durable-session tests straight against [`TaggingService`] (no sockets):
//! a service backed by a [`PersistStore`] must come back from an abrupt stop
//! with every session intact — identical metrics, identical pending tasks,
//! a continuing id sequence — and must answer corpus problems with 4xx, not
//! a panicking 500.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::Value;
use tagging_persist::{PersistOptions, PersistStore};
use tagging_runtime::{FlushPolicy, Runtime};
use tagging_server::http::Request;
use tagging_server::TaggingService;

const SHARDS: usize = 4;

fn request(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn store_options(dir: &Path) -> PersistOptions {
    PersistOptions {
        data_dir: dir.to_path_buf(),
        shards: SHARDS,
        // Small cadence so these tests exercise compaction, not just the WAL.
        snapshot_every: 8,
        flush: FlushPolicy::Never,
    }
}

/// Open (or reopen) a durable service over `dir`.
fn open_service(dir: &Path) -> TaggingService {
    let (store, recovered) = PersistStore::open(&store_options(dir)).expect("open store");
    TaggingService::with_persist(Runtime::new(2), SHARDS, Arc::new(store), &recovered)
        .expect("recover service")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tagging-server-persist-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn call(service: &TaggingService, method: &str, path: &str, body: &str) -> (u16, Value) {
    let handled = service.handle(&request(method, path, body));
    (handled.response.status, handled.response.body)
}

fn register(service: &TaggingService, strategy: &str, budget: u64, seed: u64) -> u64 {
    let body = format!(
        r#"{{"strategy":"{strategy}","budget":{budget},
            "source":{{"generate":{{"resources":20,"seed":{seed}}}}}}}"#
    );
    let (status, response) = call(service, "POST", "/scenarios", &body);
    assert_eq!(status, 200, "{response:?}");
    match response.get("scenario_id") {
        Some(&Value::UInt(id)) => id,
        other => panic!("no scenario_id: {other:?}"),
    }
}

/// Leases `k` tasks and returns their ids.
fn lease(service: &TaggingService, id: u64, k: usize) -> Vec<u64> {
    let (status, response) = call(
        service,
        "POST",
        &format!("/scenarios/{id}/batch"),
        &format!(r#"{{"k":{k}}}"#),
    );
    assert_eq!(status, 200, "{response:?}");
    match response.get("tasks") {
        Some(Value::Array(tasks)) => tasks
            .iter()
            .map(|t| match t.get("task_id") {
                Some(&Value::UInt(id)) => id,
                other => panic!("no task_id: {other:?}"),
            })
            .collect(),
        other => panic!("no tasks: {other:?}"),
    }
}

fn report_replay(service: &TaggingService, id: u64, tasks: &[u64]) {
    let completions: Vec<String> = tasks
        .iter()
        .map(|t| format!(r#"{{"task_id":{t}}}"#))
        .collect();
    let (status, response) = call(
        service,
        "POST",
        &format!("/scenarios/{id}/report"),
        &format!(r#"{{"completions":[{}]}}"#, completions.join(",")),
    );
    assert_eq!(status, 200, "{response:?}");
}

fn pending_tasks(service: &TaggingService, id: u64) -> Vec<u64> {
    let (status, response) = call(service, "GET", &format!("/scenarios/{id}/tasks"), "");
    assert_eq!(status, 200, "{response:?}");
    match response.get("pending") {
        Some(Value::Array(ids)) => ids
            .iter()
            .map(|v| match v {
                Value::UInt(id) => *id,
                other => panic!("bad id: {other:?}"),
            })
            .collect(),
        other => panic!("no pending: {other:?}"),
    }
}

/// Metrics JSON with the wall-clock field removed (it legitimately differs
/// across processes; everything else must be bit-identical).
fn comparable_metrics(service: &TaggingService, id: u64) -> Value {
    let (status, response) = call(service, "GET", &format!("/scenarios/{id}/metrics"), "");
    assert_eq!(status, 200, "{response:?}");
    match response {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "runtime_seconds")
                .collect(),
        ),
        other => panic!("metrics not an object: {other:?}"),
    }
}

#[test]
fn sessions_survive_an_abrupt_stop_with_identical_state() {
    let dir = temp_dir("abrupt");
    let (ids, before): (Vec<u64>, Vec<Value>) = {
        let service = open_service(&dir);
        let mut ids = Vec::new();
        for (strategy, seed) in [("FP", 1), ("RR", 2), ("MU", 3), ("FP-MU", 4), ("FC", 5)] {
            ids.push(register(&service, strategy, 40, seed));
        }
        for &id in &ids {
            // Mixed history: reported leases, tagged reports, and one batch
            // left pending so recovery has ghosts to restore.
            let tasks = lease(&service, id, 6);
            report_replay(&service, id, &tasks);
            let tasks = lease(&service, id, 5);
            let completions: Vec<String> = tasks
                .iter()
                .map(|t| format!(r#"{{"task_id":{t},"tags":["x","y-{t}"]}}"#))
                .collect();
            let (status, _) = call(
                &service,
                "POST",
                &format!("/scenarios/{id}/report"),
                &format!(r#"{{"completions":[{}]}}"#, completions.join(",")),
            );
            assert_eq!(status, 200);
            lease(&service, id, 4); // left pending
        }
        let before = ids
            .iter()
            .map(|&id| comparable_metrics(&service, id))
            .collect();
        (ids, before)
        // The service (and its store) drops here without any shutdown call —
        // the closest a unit test gets to a kill.
    };

    let service = open_service(&dir);
    assert_eq!(service.session_count(), ids.len());
    for (&id, before) in ids.iter().zip(&before) {
        assert_eq!(
            comparable_metrics(&service, id),
            *before,
            "session {id} diverged across restart"
        );
        assert_eq!(pending_tasks(&service, id).len(), 4);
    }

    // The id sequence continues: no recycled ids after recovery.
    let next = register(&service, "FP", 10, 9);
    assert_eq!(next, *ids.iter().max().unwrap() + 1);

    // And recovered sessions keep working: drain one to budget exhaustion.
    let id = ids[0];
    loop {
        let tasks = lease(&service, id, 8);
        let pending = pending_tasks(&service, id);
        report_replay(&service, id, &pending);
        if tasks.is_empty() {
            break;
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_survives_a_second_restart_after_new_traffic() {
    // Restart, write more (exercising post-recovery WAL segments and
    // compaction), restart again.
    let dir = temp_dir("tworestarts");
    let id = {
        let service = open_service(&dir);
        let id = register(&service, "FP-MU", 30, 7);
        let tasks = lease(&service, id, 7);
        report_replay(&service, id, &tasks);
        id
    };
    let before = {
        let service = open_service(&dir);
        let tasks = lease(&service, id, 9);
        report_replay(&service, id, &tasks);
        comparable_metrics(&service, id)
    };
    let service = open_service(&dir);
    assert_eq!(comparable_metrics(&service, id), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_wal_tail_is_truncated_not_fatal() {
    let dir = temp_dir("torn");
    let id = {
        let service = open_service(&dir);
        let id = register(&service, "RR", 20, 3);
        let tasks = lease(&service, id, 5);
        report_replay(&service, id, &tasks);
        id
    };
    // Tear the tail of every shard WAL by a few bytes; only one shard holds
    // the session, the others are empty (magic only, torn to a bad header).
    let mut torn = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let shard_dir = entry.unwrap().path();
        for file in std::fs::read_dir(&shard_dir).unwrap() {
            let path = file.unwrap().path();
            if path.extension().is_some_and(|e| e == "log") {
                let len = std::fs::metadata(&path).unwrap().len();
                if len > 8 {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .unwrap()
                        .set_len(len - 3)
                        .unwrap();
                    torn += 1;
                }
            }
        }
    }
    assert!(torn >= 1, "expected at least one non-empty WAL");

    // The session survives; the torn final record (the report) is discarded,
    // so its five tasks are pending again — exactly the ghost-lease shape.
    let service = open_service(&dir);
    assert_eq!(service.session_count(), 1);
    assert_eq!(pending_tasks(&service, id).len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_flag_reflects_configuration() {
    let dir = temp_dir("flag");
    let service = open_service(&dir);
    assert!(service.durable());
    assert!(!TaggingService::with_shards(Runtime::new(1), SHARDS).durable());
    std::fs::remove_dir_all(&dir).unwrap();
}
