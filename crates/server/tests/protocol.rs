//! End-to-end protocol tests: a real server on an ephemeral port, a real TCP
//! client, every endpooint round-tripped, malformed input answered with error
//! responses (never a panic), and the online path checked bit-for-bit against
//! the offline engine.

use serde::Value;

use tagging_server::http::HttpClient;
use tagging_server::protocol::{default_scenario_params, generator_config};
use tagging_server::TaggingServer;

use delicious_sim::generator::generate;
use tagging_sim::engine::{run_strategy, RunConfig};
use tagging_sim::scenario::Scenario;
use tagging_strategies::StrategyKind;

fn spawn_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = TaggingServer::bind("127.0.0.1:0", 2).expect("bind ephemeral port");
    let (addr, handle) = server.spawn().expect("spawn server");
    (addr.to_string(), handle)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn register_small(client: &mut HttpClient, strategy: &str, budget: u64) -> u64 {
    let body = obj(vec![
        ("strategy", Value::String(strategy.to_string())),
        ("budget", Value::UInt(budget)),
        (
            "source",
            obj(vec![(
                "generate",
                obj(vec![
                    ("resources", Value::UInt(30)),
                    ("seed", Value::UInt(7)),
                ]),
            )]),
        ),
    ]);
    let (status, response) = client
        .request("POST", "/scenarios", Some(&body))
        .expect("register");
    assert_eq!(status, 200, "{response:?}");
    match response.get("scenario_id") {
        Some(&Value::UInt(id)) => id,
        other => panic!("no scenario_id: {other:?}"),
    }
}

#[test]
fn full_session_round_trip() {
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // Health first.
    let (status, health) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(health.get("sessions"), Some(&Value::UInt(0)));

    let id = register_small(&mut client, "FP-MU", 40);

    // Lease a batch of 10.
    let (status, batch) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::UInt(10))])),
        )
        .unwrap();
    assert_eq!(status, 200);
    let tasks = match batch.get("tasks") {
        Some(Value::Array(tasks)) => tasks.clone(),
        other => panic!("no tasks: {other:?}"),
    };
    assert_eq!(tasks.len(), 10);
    assert_eq!(batch.get("budget_spent"), Some(&Value::UInt(10)));
    assert_eq!(batch.get("remaining_budget"), Some(&Value::UInt(30)));

    // Report half by replay, half with explicit tags.
    let completions: Vec<Value> = tasks
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let task_id = task.get("task_id").cloned().expect("task_id");
            if i % 2 == 0 {
                obj(vec![("task_id", task_id)])
            } else {
                obj(vec![
                    ("task_id", task_id),
                    (
                        "tags",
                        Value::Array(vec![
                            Value::String("rust".to_string()),
                            Value::String("tagging".to_string()),
                        ]),
                    ),
                ])
            }
        })
        .collect();
    let (status, reported) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/report"),
            Some(&obj(vec![("completions", Value::Array(completions))])),
        )
        .unwrap();
    assert_eq!(status, 200, "{reported:?}");
    assert_eq!(reported.get("accepted"), Some(&Value::UInt(10)));

    // Metrics reflect the 10 spent tasks.
    let (status, metrics) = client
        .request("GET", &format!("/scenarios/{id}/metrics"), None)
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(metrics.get("budget_spent"), Some(&Value::UInt(10)));
    assert_eq!(metrics.get("pending_tasks"), Some(&Value::UInt(0)));
    assert_eq!(
        metrics.get("strategy"),
        Some(&Value::String("FP-MU".to_string()))
    );
    match metrics.get("mean_quality") {
        Some(Value::Float(q)) => assert!((0.0..=1.0).contains(q)),
        other => panic!("no mean_quality: {other:?}"),
    }
    match metrics.get("allocation") {
        Some(Value::Array(allocation)) => assert_eq!(allocation.len(), 30),
        other => panic!("no allocation: {other:?}"),
    }

    // Draining the whole budget clamps the final batch and then goes empty.
    let (_, batch) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::UInt(1000))])),
        )
        .unwrap();
    match batch.get("tasks") {
        Some(Value::Array(tasks)) => assert_eq!(tasks.len(), 30, "clamped to remaining"),
        other => panic!("no tasks: {other:?}"),
    }
    let (_, batch) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::UInt(1))])),
        )
        .unwrap();
    match batch.get("tasks") {
        Some(Value::Array(tasks)) => assert!(tasks.is_empty(), "budget exhausted"),
        other => panic!("no tasks: {other:?}"),
    }

    let (status, _) = client.request("POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    handle.join().unwrap().unwrap();
}

#[test]
fn online_batch_one_matches_the_offline_engine() {
    // The same scenario the server builds for {resources: 30, seed: 7} with
    // default parameters, run offline...
    let corpus = generate(&generator_config(30, 7));
    let scenario = Scenario::from_corpus(&corpus, &default_scenario_params());
    let config = RunConfig {
        budget: 60,
        omega: 5,
        seed: 1,
    };
    let offline = run_strategy(&scenario, StrategyKind::Fp, &config);

    // ...must match the server-driven run at batch size 1 with replay reports.
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");
    let id = register_small(&mut client, "FP", 60);
    loop {
        let (_, batch) = client
            .request(
                "POST",
                &format!("/scenarios/{id}/batch"),
                Some(&obj(vec![("k", Value::UInt(1))])),
            )
            .unwrap();
        let tasks = match batch.get("tasks") {
            Some(Value::Array(tasks)) => tasks.clone(),
            other => panic!("no tasks: {other:?}"),
        };
        if tasks.is_empty() {
            break;
        }
        let completions: Vec<Value> = tasks
            .iter()
            .map(|t| obj(vec![("task_id", t.get("task_id").cloned().unwrap())]))
            .collect();
        let (status, _) = client
            .request(
                "POST",
                &format!("/scenarios/{id}/report"),
                Some(&obj(vec![("completions", Value::Array(completions))])),
            )
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, metrics) = client
        .request("GET", &format!("/scenarios/{id}/metrics"), None)
        .unwrap();

    assert_eq!(
        metrics.get("mean_quality"),
        Some(&Value::Float(offline.mean_quality)),
        "online mean quality must equal the offline engine bit for bit"
    );
    assert_eq!(
        metrics.get("wasted_posts"),
        Some(&Value::UInt(offline.wasted_posts as u64))
    );
    assert_eq!(
        metrics.get("under_tagged_fraction"),
        Some(&Value::Float(offline.under_tagged_fraction))
    );
    let expected: Vec<Value> = offline
        .allocation
        .iter()
        .map(|&x| Value::UInt(x as u64))
        .collect();
    assert_eq!(metrics.get("allocation"), Some(&Value::Array(expected)));

    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn corpus_file_registration_round_trips() {
    let corpus = generate(&generator_config(25, 3));
    let dir = std::env::temp_dir().join("tagging-server-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus_25_3.json");
    delicious_sim::io::save_corpus(&corpus, &path).expect("save corpus");

    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");
    let body = obj(vec![
        ("budget", Value::UInt(10)),
        (
            "source",
            obj(vec![(
                "corpus_path",
                Value::String(path.display().to_string()),
            )]),
        ),
    ]);
    let (status, response) = client.request("POST", "/scenarios", Some(&body)).unwrap();
    assert_eq!(status, 200, "{response:?}");
    assert_eq!(response.get("resources"), Some(&Value::UInt(25)));

    // A missing file is a clean 400, not a crash.
    let body = obj(vec![(
        "source",
        obj(vec![(
            "corpus_path",
            Value::String("/nonexistent/corpus.json".to_string()),
        )]),
    )]);
    let (status, response) = client.request("POST", "/scenarios", Some(&body)).unwrap();
    assert_eq!(status, 400);
    assert!(response.get("error").is_some());

    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_input_gets_error_responses_not_panics() {
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // Broken JSON on every POST endpoint.
    let id = register_small(&mut client, "RR", 20);
    for path in [
        "/scenarios".to_string(),
        format!("/scenarios/{id}/batch"),
        format!("/scenarios/{id}/report"),
    ] {
        let (status, response) = client
            .request_raw("POST", &path, b"{ not json at all")
            .unwrap();
        assert_eq!(status, 400, "{path}: {response:?}");
        match response.get("error") {
            Some(Value::String(message)) => assert!(!message.is_empty()),
            other => panic!("{path}: no error message: {other:?}"),
        }
        // The keep-alive connection survives the error.
        let (status, _) = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
    }

    // Type errors inside valid JSON.
    let (status, _) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::String("many".to_string()))])),
        )
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client
        .request(
            "POST",
            "/scenarios",
            Some(&obj(vec![(
                "strategy",
                Value::String("gradient-descent".to_string()),
            )])),
        )
        .unwrap();
    assert_eq!(status, 400);

    // Unknown routes, methods, sessions and tasks.
    let (status, _) = client.request("GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/healthz", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client
        .request("GET", "/scenarios/9999/metrics", None)
        .unwrap();
    assert_eq!(status, 404);
    let (status, _) = client
        .request("GET", "/scenarios/banana/metrics", None)
        .unwrap();
    assert_eq!(status, 404);
    let (status, response) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/report"),
            Some(&obj(vec![(
                "completions",
                Value::Array(vec![obj(vec![("task_id", Value::UInt(424242))])]),
            )])),
        )
        .unwrap();
    assert_eq!(status, 409, "{response:?}");

    // The server is still healthy after all of that.
    let (status, health) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("sessions"), Some(&Value::UInt(1)));

    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn shutdown_completes_while_an_idle_keep_alive_connection_is_open() {
    let (addr, handle) = spawn_server();
    // An idle client that connects and then never sends a byte: its worker
    // sits parked in a read. Shutdown must still complete promptly.
    let idle = HttpClient::connect(&addr).expect("connect idle");
    let mut admin = HttpClient::connect(&addr).expect("connect admin");
    let (status, _) = admin.request("POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);

    // Join with a watchdog so a regression fails fast instead of hanging CI.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        tx.send(handle.join().expect("server thread")).ok();
    });
    let result = rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("server did not shut down while an idle connection was open");
    result.expect("server exited with an error");
    drop(idle);
}

#[test]
fn concurrent_clients_share_one_session_consistently() {
    let (addr, handle) = spawn_server();
    let mut admin = HttpClient::connect(&addr).expect("connect");
    let id = register_small(&mut admin, "FP", 200);

    let mut clients = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(&addr).expect("connect");
            let mut leased = 0usize;
            loop {
                let (status, batch) = client
                    .request(
                        "POST",
                        &format!("/scenarios/{id}/batch"),
                        Some(&obj(vec![("k", Value::UInt(7))])),
                    )
                    .unwrap();
                assert_eq!(status, 200);
                let tasks = match batch.get("tasks") {
                    Some(Value::Array(tasks)) => tasks.clone(),
                    other => panic!("no tasks: {other:?}"),
                };
                if tasks.is_empty() {
                    return leased;
                }
                leased += tasks.len();
                let completions: Vec<Value> = tasks
                    .iter()
                    .map(|t| obj(vec![("task_id", t.get("task_id").cloned().unwrap())]))
                    .collect();
                let (status, _) = client
                    .request(
                        "POST",
                        &format!("/scenarios/{id}/report"),
                        Some(&obj(vec![("completions", Value::Array(completions))])),
                    )
                    .unwrap();
                assert_eq!(status, 200);
            }
        }));
    }
    let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(total, 200, "every budget unit leased exactly once");

    let (_, metrics) = admin
        .request("GET", &format!("/scenarios/{id}/metrics"), None)
        .unwrap();
    assert_eq!(metrics.get("budget_spent"), Some(&Value::UInt(200)));
    assert_eq!(metrics.get("pending_tasks"), Some(&Value::UInt(0)));

    admin.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn corpus_problems_are_client_errors_not_500s() {
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // A corpus path that does not exist: 400 with a JSON error body.
    let body = obj(vec![(
        "source",
        obj(vec![(
            "corpus_path",
            Value::String("/nonexistent/corpus.json".to_string()),
        )]),
    )]);
    let (status, response) = client
        .request("POST", "/scenarios", Some(&body))
        .expect("request");
    assert_eq!(status, 400, "{response:?}");
    match response.get("error") {
        Some(Value::String(message)) => {
            assert!(message.contains("corpus"), "unhelpful error: {message}")
        }
        other => panic!("no error field: {other:?}"),
    }

    // A file that is not a corpus at all: still a 400, never a 500.
    let bogus = std::env::temp_dir().join(format!("bogus-corpus-{}.json", std::process::id()));
    std::fs::write(&bogus, b"{\"not\":\"a corpus\"}").unwrap();
    let body = obj(vec![(
        "source",
        obj(vec![(
            "corpus_path",
            Value::String(bogus.display().to_string()),
        )]),
    )]);
    let (status, response) = client
        .request("POST", "/scenarios", Some(&body))
        .expect("request");
    assert_eq!(status, 400, "{response:?}");
    std::fs::remove_file(&bogus).unwrap();

    // A syntactically valid corpus with zero resources: rejected up front
    // (it used to panic inside session construction and surface as a 500).
    let saved = std::env::temp_dir().join(format!("empty-corpus-{}.json", std::process::id()));
    let corpus = generate(&generator_config(1, 7));
    delicious_sim::io::save_corpus(&corpus, &saved).unwrap();
    let text = std::fs::read_to_string(&saved).unwrap();
    let emptied = text.replace(
        &format!("\"resources\":{}", resources_json(&text)),
        "\"resources\":[]",
    );
    std::fs::write(&saved, emptied).unwrap();
    let body = obj(vec![(
        "source",
        obj(vec![(
            "corpus_path",
            Value::String(saved.display().to_string()),
        )]),
    )]);
    let (status, response) = client
        .request("POST", "/scenarios", Some(&body))
        .expect("request");
    assert!(
        status == 400,
        "want 400 for an empty corpus, got {status}: {response:?}"
    );
    std::fs::remove_file(&saved).unwrap();

    // The server is still healthy afterwards.
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

/// Extracts the JSON text of the first top-level-ish `"resources":[...]`
/// array so the test can blank it without modelling the whole corpus schema.
fn resources_json(text: &str) -> String {
    let start = text.find("\"resources\":[").expect("resources field") + "\"resources\":".len();
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (offset, &b) in bytes[start..].iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_string => escaped = true,
            b'"' => in_string = !in_string,
            b'[' if !in_string => depth += 1,
            b']' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return text[start..start + offset + 1].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unterminated resources array");
}

/// The `server_requests_total{route="..."}` counter value in a `/stats`
/// body, or 0 when the family has not been touched yet.
fn route_count(stats: &Value, route: &str) -> u64 {
    match stats
        .get("counters")
        .and_then(|c| c.get(&format!("server_requests_total{{route=\"{route}\"}}")))
    {
        Some(&Value::UInt(n)) => n,
        _ => 0,
    }
}

/// Whether this server build records telemetry (the `/stats` marker).
fn telemetry_on(stats: &Value) -> bool {
    stats.get("telemetry") == Some(&Value::String("on".to_string()))
}

#[test]
fn stats_and_metrics_endpoints_expose_telemetry() {
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");

    // The enriched health body: ok/sessions as before, plus uptime and
    // build/durability info.
    let (status, health) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
    assert!(
        matches!(health.get("uptime_seconds"), Some(Value::UInt(_))),
        "no uptime_seconds: {health:?}"
    );
    assert_eq!(
        health.get("version"),
        Some(&Value::String(env!("CARGO_PKG_VERSION").to_string()))
    );
    assert_eq!(health.get("durable"), Some(&Value::Bool(false)));

    // Drive a little traffic so the families have something to show.
    let id = register_small(&mut client, "FP", 20);
    let (status, _) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::UInt(5))])),
        )
        .unwrap();
    assert_eq!(status, 200);

    // /stats: the JSON projection.
    let (status, stats) = client.request("GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{stats:?}");
    for section in ["counters", "gauges", "histograms"] {
        assert!(
            matches!(stats.get(section), Some(Value::Object(_))),
            "missing {section}: {stats:?}"
        );
    }
    assert!(
        matches!(stats.get("uptime_seconds"), Some(Value::UInt(_))),
        "no uptime_seconds: {stats:?}"
    );
    if telemetry_on(&stats) {
        assert!(route_count(&stats, "healthz") >= 1, "{stats:?}");
        assert!(route_count(&stats, "batch") >= 1, "{stats:?}");
        let request_us = stats
            .get("histograms")
            .and_then(|h| h.get("server_request_us"))
            .unwrap_or_else(|| panic!("no server_request_us histogram: {stats:?}"));
        match request_us.get("count") {
            Some(&Value::UInt(n)) => assert!(n >= 1),
            other => panic!("no count: {other:?}"),
        }
    }

    // /metrics: the Prometheus text exposition.
    let (status, text) = client.request_text("GET", "/metrics").unwrap();
    assert_eq!(status, 200);
    for needle in [
        "# TYPE server_requests_total counter",
        "# TYPE server_request_us histogram",
        "# TYPE registry_shard_sessions gauge",
        "server_request_us_bucket{le=\"+Inf\"}",
        "server_request_us_count",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Wrong methods on the new routes are 405s, not 404s.
    let (status, _) = client.request("POST", "/stats", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = client.request("POST", "/metrics", None).unwrap();
    assert_eq!(status, 405);

    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

/// Pins the fix this PR ships: the failure paths — `POST /shutdown`, parsed
/// requests that match no route, and bytes that never parse — are all
/// visible in the route counters, not just the happy paths.
#[test]
fn shutdown_and_malformed_requests_are_counted() {
    use tagging_runtime::Runtime;
    use tagging_server::http::Request;
    use tagging_server::TaggingService;

    // Shutdown is observable only service-side (the process answers and then
    // stops serving), so pin it straight against the router.
    let service = TaggingService::with_shards(Runtime::new(2), 4);
    let stats_request = Request {
        method: "GET".to_string(),
        path: "/stats".to_string(),
        body: Vec::new(),
        keep_alive: true,
    };
    let before = service.handle(&stats_request).response.body;
    let handled = service.handle(&Request {
        method: "POST".to_string(),
        path: "/shutdown".to_string(),
        body: Vec::new(),
        keep_alive: true,
    });
    assert_eq!(handled.response.status, 200);
    assert!(handled.shutdown);
    let bad = service.handle(&Request {
        method: "GET".to_string(),
        path: "/nope".to_string(),
        body: Vec::new(),
        keep_alive: true,
    });
    assert_eq!(bad.response.status, 404);
    let after = service.handle(&stats_request).response.body;
    if telemetry_on(&after) {
        // Deltas, not absolutes: the registry is process-global and other
        // tests in this binary record into the same counters concurrently.
        assert!(
            route_count(&after, "shutdown") > route_count(&before, "shutdown"),
            "shutdown not counted: {after:?}"
        );
        assert!(
            route_count(&after, "bad_request") > route_count(&before, "bad_request"),
            "bad_request not counted: {after:?}"
        );
    }

    // Malformed bytes are rejected by the event loop before a request
    // exists, so drive a real server with raw TCP.
    let (addr, handle) = spawn_server();
    let mut admin = HttpClient::connect(&addr).expect("connect");
    let (_, before) = admin.request("GET", "/stats", None).unwrap();
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(&addr).expect("connect raw");
        raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut response = Vec::new();
        raw.read_to_end(&mut response).unwrap();
        let text = String::from_utf8_lossy(&response);
        assert!(
            text.starts_with("HTTP/1.1 400"),
            "malformed bytes answered with: {text}"
        );
    }
    let (_, after) = admin.request("GET", "/stats", None).unwrap();
    if telemetry_on(&after) {
        assert!(
            route_count(&after, "malformed") > route_count(&before, "malformed"),
            "malformed not counted: {after:?}"
        );
    }

    admin.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn tasks_route_lists_pending_leases() {
    let (addr, handle) = spawn_server();
    let mut client = HttpClient::connect(&addr).expect("connect");
    let id = register_small(&mut client, "FP", 20);

    let (status, response) = client
        .request("GET", &format!("/scenarios/{id}/tasks"), None)
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(response.get("pending"), Some(&Value::Array(vec![])));

    let (_, batch) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            Some(&obj(vec![("k", Value::UInt(5))])),
        )
        .unwrap();
    let leased: Vec<Value> = match batch.get("tasks") {
        Some(Value::Array(tasks)) => tasks
            .iter()
            .map(|t| t.get("task_id").cloned().unwrap())
            .collect(),
        other => panic!("no tasks: {other:?}"),
    };
    let (status, response) = client
        .request("GET", &format!("/scenarios/{id}/tasks"), None)
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(response.get("pending"), Some(&Value::Array(leased.clone())));

    // Report them all: pending drains to empty again.
    let completions: Vec<Value> = leased
        .iter()
        .map(|t| obj(vec![("task_id", t.clone())]))
        .collect();
    let (status, _) = client
        .request(
            "POST",
            &format!("/scenarios/{id}/report"),
            Some(&obj(vec![("completions", Value::Array(completions))])),
        )
        .unwrap();
    assert_eq!(status, 200);
    let (_, response) = client
        .request("GET", &format!("/scenarios/{id}/tasks"), None)
        .unwrap();
    assert_eq!(response.get("pending"), Some(&Value::Array(vec![])));

    // Wrong method on the route: 405.
    let (status, _) = client
        .request("POST", &format!("/scenarios/{id}/tasks"), None)
        .unwrap();
    assert_eq!(status, 405);

    client.request("POST", "/shutdown", None).unwrap();
    handle.join().unwrap().unwrap();
}
