//! Sharded-registry equivalence and robustness tests, straight against
//! [`TaggingService`] (no sockets): the shard count must be invisible in the
//! responses, per-session work must not serialize behind the registry lock,
//! and a panicked handler must not take any session down with it.

use std::sync::mpsc::channel;
use std::time::Duration;

use serde::Value;
use tagging_runtime::{lock_unpoisoned, Runtime};
use tagging_server::http::{response_bytes, Request};
use tagging_server::TaggingService;

fn service(shards: usize) -> TaggingService {
    TaggingService::with_shards(Runtime::new(2), shards)
}

fn request(method: &str, path: &str, body: &str) -> Request {
    Request {
        method: method.to_string(),
        path: path.to_string(),
        body: body.as_bytes().to_vec(),
        keep_alive: true,
    }
}

fn register_body(strategy: &str, resources: u64, budget: u64, seed: u64) -> String {
    format!(
        r#"{{"strategy":"{strategy}","budget":{budget},"seed":7,"source":{{"generate":{{"resources":{resources},"seed":{seed}}}}}}}"#
    )
}

/// SplitMix64 finalizer, for a deterministic pseudo-random trace.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The task ids leased by a batch response, re-encoded as a report body.
fn report_body_from(batch_response: &Value) -> Option<String> {
    let Some(Value::Array(tasks)) = batch_response.get("tasks") else {
        return None;
    };
    if tasks.is_empty() {
        return None;
    }
    let completions: Vec<String> = tasks
        .iter()
        .filter_map(|t| match t.get("task_id") {
            Some(Value::UInt(id)) => Some(format!(r#"{{"task_id":{id}}}"#)),
            _ => None,
        })
        .collect();
    Some(format!(r#"{{"completions":[{}]}}"#, completions.join(",")))
}

/// Masks the legitimately nondeterministic response fields: metrics carry a
/// wall-clock `runtime_seconds` and `/healthz` an `uptime_seconds`, which
/// differ between any two runs no matter the shard count — and the
/// `maintenance` object, whose `shard_generations` array legitimately has
/// one entry per shard. Everything else must match byte for byte.
fn mask_wall_clock(body: Value) -> Value {
    match body {
        Value::Object(fields) => Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| {
                    if k == "runtime_seconds" || k == "uptime_seconds" || k == "maintenance" {
                        (k, Value::Null)
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        ),
        other => other,
    }
}

/// Plays a fixed request trace — registrations, interleaved batch / report /
/// metrics traffic on every session, unknown routes, malformed ids — and
/// returns every response serialized exactly as the server would put it on
/// the wire.
fn run_trace(service: &TaggingService) -> Vec<Vec<u8>> {
    let mut wire: Vec<Vec<u8>> = Vec::new();
    let mut respond = |service: &TaggingService, req: &Request| -> Value {
        let mut handled = service.handle(req);
        handled.response.body = mask_wall_clock(handled.response.body);
        wire.push(response_bytes(&handled.response, true));
        handled.response.body
    };

    let strategies = ["FP", "RR", "MU", "FP-MU", "FP", "RR"];
    let mut ids: Vec<u64> = Vec::new();
    for (i, strategy) in strategies.iter().enumerate() {
        let body = register_body(strategy, 16 + 4 * i as u64, 200, 11 + i as u64);
        let registered = respond(service, &request("POST", "/scenarios", &body));
        match registered.get("scenario_id") {
            Some(&Value::UInt(id)) => ids.push(id),
            other => panic!("registration failed: {other:?}"),
        }
    }

    for step in 0..240u64 {
        let r = mix(step);
        let id = ids[(r % ids.len() as u64) as usize];
        match r >> 32 & 7 {
            // Mostly lease-and-report round trips.
            0..=4 => {
                let k = 1 + (r >> 8) % 7;
                let batch = respond(
                    service,
                    &request(
                        "POST",
                        &format!("/scenarios/{id}/batch"),
                        &format!(r#"{{"k":{k}}}"#),
                    ),
                );
                if let Some(body) = report_body_from(&batch) {
                    respond(
                        service,
                        &request("POST", &format!("/scenarios/{id}/report"), &body),
                    );
                }
            }
            5 => {
                respond(
                    service,
                    &request("GET", &format!("/scenarios/{id}/metrics"), ""),
                );
            }
            6 => {
                respond(service, &request("GET", "/healthz", ""));
            }
            _ => {
                // Error paths must be shard-invisible too.
                respond(
                    service,
                    &request("POST", "/scenarios/999999/batch", r#"{"k":1}"#),
                );
                respond(
                    service,
                    &request("GET", "/scenarios/not-a-number/metrics", ""),
                );
                respond(service, &request("PUT", "/healthz", ""));
            }
        }
    }
    for id in &ids {
        respond(
            service,
            &request("GET", &format!("/scenarios/{id}/metrics"), ""),
        );
    }
    wire
}

/// Golden equivalence: the sharded registry must answer a recorded trace with
/// exactly the bytes the single-lock baseline produces.
#[test]
fn sharded_registry_byte_matches_the_single_lock_baseline() {
    let baseline = run_trace(&service(1));
    assert!(
        baseline.len() > 400,
        "trace too short to be meaningful: {} responses",
        baseline.len()
    );
    for shards in [4, 16, 64] {
        let sharded = run_trace(&service(shards));
        assert_eq!(baseline.len(), sharded.len());
        for (i, (a, b)) in baseline.iter().zip(&sharded).enumerate() {
            assert_eq!(
                a,
                b,
                "response {i} diverged at {shards} shards:\n  baseline: {}\n  sharded:  {}",
                String::from_utf8_lossy(a),
                String::from_utf8_lossy(b)
            );
        }
    }
}

/// The registry lock must not serialize per-session work: while one session's
/// mutex is held (a slow request in flight), requests on another session —
/// even one in the *same* shard, hence the single-shard service — must still
/// complete.
#[test]
fn a_held_session_does_not_block_other_sessions() {
    let service = std::sync::Arc::new(self::service(1));
    let a = match service
        .handle(&request(
            "POST",
            "/scenarios",
            &register_body("FP", 8, 50, 1),
        ))
        .response
        .body
        .get("scenario_id")
    {
        Some(&Value::UInt(id)) => id,
        other => panic!("registration failed: {other:?}"),
    };
    let b = match service
        .handle(&request(
            "POST",
            "/scenarios",
            &register_body("RR", 8, 50, 2),
        ))
        .response
        .body
        .get("scenario_id")
    {
        Some(&Value::UInt(id)) => id,
        other => panic!("registration failed: {other:?}"),
    };

    // Simulate a slow in-flight request on A by holding its session lock.
    let held = service.session(a).expect("session A registered");
    let guard = lock_unpoisoned(&held);

    let (tx, rx) = channel();
    let worker = {
        let service = std::sync::Arc::clone(&service);
        std::thread::spawn(move || {
            let handled = service.handle(&request(
                "POST",
                &format!("/scenarios/{b}/batch"),
                r#"{"k":4}"#,
            ));
            tx.send(handled.response.status).expect("main thread alive");
        })
    };
    let status = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("request on session B must not wait for session A's lock");
    assert_eq!(status, 200);
    worker.join().expect("worker thread");

    drop(guard);
    let status = service
        .handle(&request(
            "POST",
            &format!("/scenarios/{a}/batch"),
            r#"{"k":4}"#,
        ))
        .response
        .status;
    assert_eq!(status, 200, "session A usable again once released");
}

/// A handler that panics mid-request poisons at most its own session mutex;
/// the poison-recovering locks keep both that session and every other one
/// servable.
#[test]
fn a_panicked_session_leaves_every_session_servable() {
    let service = service(8);
    let mut ids = Vec::new();
    for seed in 0..3u64 {
        let body = register_body(["FP", "RR", "MU"][seed as usize], 8, 50, seed);
        match service
            .handle(&request("POST", "/scenarios", &body))
            .response
            .body
            .get("scenario_id")
        {
            Some(&Value::UInt(id)) => ids.push(id),
            other => panic!("registration failed: {other:?}"),
        }
    }

    // Panic while holding session 0's lock, the way a crashing handler would.
    let victim = service.session(ids[0]).expect("session registered");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = victim.lock().expect("not yet poisoned");
        panic!("handler crash while holding the session lock");
    }));
    assert!(result.is_err());
    assert!(
        victim.is_poisoned(),
        "the panic must have poisoned the mutex"
    );

    // Every session — including the poisoned one — still answers.
    for id in &ids {
        let handled = service.handle(&request(
            "POST",
            &format!("/scenarios/{id}/batch"),
            r#"{"k":2}"#,
        ));
        assert_eq!(
            handled.response.status, 200,
            "session {id} unusable after an unrelated panic: {:?}",
            handled.response.body
        );
    }
    let handled = service.handle(&request(
        "GET",
        &format!("/scenarios/{}/metrics", ids[0]),
        "",
    ));
    assert_eq!(handled.response.status, 200);
}
