//! Load generator for the tagging server: N concurrent deterministic clients
//! lease task batches, report completions and poll metrics over real TCP,
//! recording throughput and latency percentiles into a growing benchmark
//! history.
//!
//! Usage:
//! `cargo run --release -p tagging-server --bin repro_loadgen -- [options]`
//!
//! * `--workload single|mixed` — `single` (default) drives one scenario, the
//!   original PR-4 workload; `mixed` registers many small sessions plus a few
//!   giant ones and spreads clients over them with a skewed session choice
//!   (the giants soak up most of the traffic);
//! * `--addr HOST:PORT` — target an already-running server (default: spawn an
//!   in-process server on an ephemeral port and verify its clean shutdown);
//! * `--clients N` — concurrent clients (default 4);
//! * `--idle N` — additionally open N keep-alive connections that stay
//!   *silent* for the whole run and must still answer a final probe (default
//!   0; exercises the nonblocking accept path's cold sweep);
//! * `--requests N` — total HTTP requests to drive (default 12000);
//! * `--batch K` — tasks leased per batch request (default 8);
//! * `--resources N` / `--budget B` / `--strategy S` / `--seed X` — the
//!   scenario registered for a `single` run (defaults 120 / 50000 / FP / 1);
//!   `mixed` derives its scenario fleet from `--seed`;
//! * `--small N` / `--large N` — mixed-workload scenario counts (defaults
//!   6 small / 2 giant);
//! * `--shards S` — registry shard count for the in-process server (default
//!   16); recorded in the report entry;
//! * `--corpus PATH` — register the single scenario from a saved corpus;
//! * `--check PATH` — after draining every scenario, write a canonical JSON
//!   digest of the final per-scenario state; two runs with the same options
//!   against servers with *different shard counts* must produce byte-equal
//!   digests (CI diffs them) — and a `--crash-after` run must produce the
//!   same digest as an uninterrupted one; `--check` also cross-checks the
//!   client-side latency percentiles against the server's own
//!   `server_request_us` histogram scraped from `GET /stats` (skipped when
//!   the server was built with telemetry compiled to no-ops);
//! * `--data-dir DIR` — run the in-process server with durable sessions
//!   (WAL + snapshots) under `DIR`; recorded as `durability: "wal"` in the
//!   report entry so WAL-on and WAL-off throughput can be compared;
//! * `--snapshot-every N` / `--fsync POLICY` / `--flush-interval-ms N` /
//!   `--compact-interval-ms N` — forwarded to the store (and to the daemon
//!   in crash mode) exactly as `tagging_server` takes them; the effective
//!   flush policy is recorded as `flush_mode` in the report entry, so
//!   `always` and `group` runs can be compared line against line;
//! * `--crash-after N` — the crash-recovery harness: spawn the
//!   `tagging_server` *daemon* as a child process on `--data-dir`, SIGKILL
//!   it after N requests mid-drive, restart it on the same directory, verify
//!   every session recovered, resume the drive, report the recovered pending
//!   ("ghost") leases, drain, and write the `--check` digest — which must be
//!   byte-identical to an uninterrupted run's (requires `--data-dir`;
//!   N must be well below `--requests`);
//! * `--scrape-interval T` — spawn a scraper thread that samples the run
//!   every `T` (`500ms`, `2s`, or a bare millisecond count): request
//!   progress plus the server's trailing-1s windowed latency view from
//!   `GET /stats?window=1s`, recorded as a `timeline` array in the report
//!   entry;
//! * `--out PATH` — the JSON report history (default `BENCH_loadgen.json`);
//!   each run appends an entry instead of overwriting, so the file tracks
//!   performance over time;
//! * `--shutdown` — send `POST /shutdown` when done (implied in-process).
//!
//! Every client runs a fixed request pattern derived from its index, so a run
//! is reproducible up to thread interleaving; the server-side sessions stay
//! consistent under any interleaving, which the final metrics checks verify.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Value;
use tagging_persist::PersistOptions;
use tagging_runtime::{lock_unpoisoned, FlushPolicy};
use tagging_server::http::HttpClient;
use tagging_server::{ServerOptions, TaggingServer, TelemetryOptions};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    Single,
    Mixed,
}

#[derive(Debug, Clone)]
struct Options {
    workload: Workload,
    addr: Option<String>,
    clients: usize,
    idle: usize,
    requests: usize,
    batch: usize,
    resources: usize,
    budget: usize,
    strategy: String,
    seed: u64,
    small: usize,
    large: usize,
    shards: usize,
    corpus: Option<String>,
    check: Option<String>,
    data_dir: Option<String>,
    snapshot_every: Option<usize>,
    fsync: Option<String>,
    flush_interval_ms: Option<usize>,
    compact_interval_ms: Option<usize>,
    crash_after: Option<usize>,
    scrape_interval_ms: Option<u64>,
    out: String,
    shutdown: bool,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let value = |name: &str| -> Option<String> {
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                if arg == name {
                    return iter.next().cloned();
                }
            }
            None
        };
        let number = |name: &str, default: usize| -> usize {
            value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Self {
            workload: match value("--workload").as_deref() {
                Some("mixed") => Workload::Mixed,
                _ => Workload::Single,
            },
            addr: value("--addr"),
            clients: number("--clients", 4).max(1),
            idle: number("--idle", 0),
            requests: number("--requests", 12_000),
            batch: number("--batch", 8).max(1),
            resources: number("--resources", 120).max(1),
            budget: number("--budget", 50_000),
            strategy: value("--strategy").unwrap_or_else(|| "FP".to_string()),
            seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(1),
            small: number("--small", 6),
            large: number("--large", 2),
            shards: number("--shards", 16).max(1),
            corpus: value("--corpus"),
            check: value("--check"),
            data_dir: value("--data-dir"),
            snapshot_every: value("--snapshot-every").and_then(|v| v.parse().ok()),
            fsync: value("--fsync"),
            flush_interval_ms: value("--flush-interval-ms").and_then(|v| v.parse().ok()),
            compact_interval_ms: value("--compact-interval-ms").and_then(|v| v.parse().ok()),
            crash_after: value("--crash-after").and_then(|v| v.parse().ok()),
            scrape_interval_ms: value("--scrape-interval").and_then(|v| parse_interval_ms(&v)),
            out: value("--out").unwrap_or_else(|| "BENCH_loadgen.json".to_string()),
            shutdown: args.iter().any(|a| a == "--shutdown"),
        }
    }

    /// The `durability` value recorded in the report entry.
    fn durability(&self) -> &'static str {
        if self.data_dir.is_some() {
            "wal"
        } else {
            "off"
        }
    }

    /// Store options for the in-process server, mirroring the daemon's flag
    /// semantics (a `--flush-interval-ms` without `--fsync` selects group
    /// commit — the cadence names the tenant it drives).
    fn persist_options(&self) -> Option<PersistOptions> {
        let dir = self.data_dir.as_ref()?;
        let mut persist = PersistOptions::new(dir, self.shards);
        if let Some(every) = self.snapshot_every {
            persist.snapshot_every = (every as u64).max(1);
        }
        match self.fsync.as_deref() {
            Some(policy) => match FlushPolicy::parse(policy) {
                Some(policy) => persist.flush = policy,
                None => eprintln!(
                    "--fsync expects always|never|group|every:N, got `{policy}`; using {}",
                    persist.flush
                ),
            },
            None => {
                if self.flush_interval_ms.is_some() {
                    persist.flush = FlushPolicy::Group;
                }
            }
        }
        if let Some(interval) = self.flush_interval_ms {
            persist.flush_interval_ms = (interval as u64).max(1);
        }
        if let Some(interval) = self.compact_interval_ms {
            persist.compact_interval_ms = interval as u64;
        }
        Some(persist)
    }

    /// The `flush_mode` value recorded in the report entry: the effective
    /// WAL flush policy, or `off` when the run is not durable at all.
    fn flush_mode(&self) -> String {
        match self.persist_options() {
            Some(persist) => persist.flush.to_string(),
            None => "off".to_string(),
        }
    }
}

/// One scenario registered for the run.
#[derive(Debug, Clone)]
struct ScenarioHandle {
    id: u64,
    strategy: String,
    resources: usize,
    budget: usize,
}

/// Per-client tallies, merged after the join.
#[derive(Debug, Default)]
struct Tally {
    latencies_us: Vec<u64>,
    batch_requests: usize,
    report_requests: usize,
    metrics_requests: usize,
    /// Tasks leased per scenario id.
    tasks_leased: HashMap<u64, usize>,
}

impl Tally {
    fn leased_total(&self) -> usize {
        self.tasks_leased.values().sum()
    }
}

/// SplitMix64 finalizer: drives the deterministic skewed scenario choice.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options::parse(&args);
    let result = match options.crash_after {
        Some(crash_after) => run_crash(&options, crash_after),
        None => run(&options),
    };
    if let Err(message) = result {
        eprintln!("repro_loadgen failed: {message}");
        std::process::exit(1);
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn run(options: &Options) -> Result<(), String> {
    // Either target the given server or spawn one in-process; in-process runs
    // always verify clean shutdown at the end.
    let (addr, server_handle) = match &options.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let server_options = ServerOptions {
                workers: (options.clients + 1).min(8),
                shards: options.shards,
                persist: options.persist_options(),
                telemetry: TelemetryOptions::default(),
            };
            let server = TaggingServer::bind_opts("127.0.0.1:0", server_options)
                .map_err(|e| format!("cannot bind in-process server: {e}"))?;
            let (addr, handle) = server
                .spawn()
                .map_err(|e| format!("cannot start in-process server: {e}"))?;
            eprintln!(
                "spawned in-process server on {addr} ({} registry shards, durability {})",
                options.shards,
                options.durability()
            );
            (addr.to_string(), Some(handle))
        }
    };

    let mut admin = HttpClient::connect(&addr).map_err(|e| format!("cannot connect: {e}"))?;
    let scenarios = match options.workload {
        Workload::Single => vec![register_single(&mut admin, options)?],
        Workload::Mixed => register_mixed(&mut admin, options)?,
    };
    for scenario in &scenarios {
        eprintln!(
            "registered scenario {}: {} resources, budget {}, strategy {}",
            scenario.id, scenario.resources, scenario.budget, scenario.strategy
        );
    }

    // The silent keep-alive fleet: each connection proves liveness once, then
    // does not send a single byte until the final probe after the drive.
    let mut idle_fleet: Vec<HttpClient> = Vec::with_capacity(options.idle);
    for i in 0..options.idle {
        let mut client =
            HttpClient::connect(&addr).map_err(|e| format!("idle connection {i}: connect: {e}"))?;
        let (status, _) = client
            .request("GET", "/healthz", None)
            .map_err(|e| format!("idle connection {i}: probe: {e}"))?;
        if status != 200 {
            return Err(format!("idle connection {i}: probe rejected ({status})"));
        }
        idle_fleet.push(client);
    }
    if options.idle > 0 {
        eprintln!("opened {} silent keep-alive connections", options.idle);
    }

    // Fire the clients (and, when asked, the timeline scraper alongside).
    let issued = Arc::new(AtomicUsize::new(0));
    let tallies: Arc<Mutex<Vec<Tally>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let scraper = options
        .scrape_interval_ms
        .map(|interval_ms| spawn_scraper(&addr, interval_ms, Arc::clone(&issued)));
    drive_clients(&addr, &scenarios, options, &issued, &tallies, None)?;
    let elapsed = start.elapsed();
    let timeline = match scraper {
        Some(scraper) => {
            scraper.stop.store(true, Ordering::SeqCst);
            scraper.handle.join().unwrap_or_default()
        }
        None => Vec::new(),
    };

    // Scrape the trailing-10s windowed view *now*, while the window still
    // covers the drive — the drain below would skew it with its batch-64
    // traffic. `None` when the server compiled telemetry to no-ops.
    let windowed_stats = if options.check.is_some() {
        scrape_windowed_stats(&mut admin)?
    } else {
        None
    };

    // Merge tallies.
    let tallies = Arc::try_unwrap(tallies)
        .expect("clients joined")
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let total_requests: usize = latencies.len();
    let batch_requests: usize = tallies.iter().map(|t| t.batch_requests).sum();
    let report_requests: usize = tallies.iter().map(|t| t.report_requests).sum();
    let metrics_requests: usize = tallies.iter().map(|t| t.metrics_requests).sum();
    let mut tasks_leased: HashMap<u64, usize> = HashMap::new();
    for tally in &tallies {
        for (&id, &n) in &tally.tasks_leased {
            *tasks_leased.entry(id).or_insert(0) += n;
        }
    }
    let driven_leases: usize = tallies.iter().map(|t| t.leased_total()).sum();

    // Drain every scenario to budget exhaustion so the final state is a pure
    // function of the workload, independent of thread interleaving — the
    // property the --check digest (and CI's shard-count diff) relies on.
    for scenario in &scenarios {
        let drained = drain_scenario(&mut admin, scenario.id)
            .map_err(|e| format!("draining scenario {}: {e}", scenario.id))?;
        *tasks_leased.entry(scenario.id).or_insert(0) += drained;
    }

    // Final metrics: the non-empty responses the smoke job asserts on.
    let mut final_metrics: Vec<(ScenarioHandle, Value)> = Vec::new();
    for scenario in &scenarios {
        let (status, metrics) = admin
            .request("GET", &format!("/scenarios/{}/metrics", scenario.id), None)
            .map_err(|e| format!("final metrics request failed: {e}"))?;
        if status != 200 {
            return Err(format!("final metrics rejected ({status}): {metrics:?}"));
        }
        let spent = match metrics.get("budget_spent") {
            Some(&Value::UInt(n)) => n as usize,
            other => return Err(format!("final metrics missing budget_spent: {other:?}")),
        };
        let leased = tasks_leased.get(&scenario.id).copied().unwrap_or(0);
        if spent == 0 || spent != leased {
            return Err(format!(
                "scenario {}: server accounted {spent} tasks but clients leased {leased}",
                scenario.id
            ));
        }
        if spent != scenario.budget {
            return Err(format!(
                "scenario {}: drained {spent} of budget {}",
                scenario.id, scenario.budget
            ));
        }
        match metrics.get("mean_quality") {
            Some(Value::Float(q)) if (0.0..=1.0).contains(q) => {}
            other => return Err(format!("final metrics missing mean_quality: {other:?}")),
        }
        final_metrics.push((scenario.clone(), metrics));
    }

    // The silent fleet must still be alive after the whole drive.
    for (i, client) in idle_fleet.iter_mut().enumerate() {
        let (status, _) = client
            .request("GET", "/healthz", None)
            .map_err(|e| format!("idle connection {i}: final probe: {e}"))?;
        if status != 200 {
            return Err(format!(
                "idle connection {i}: final probe rejected ({status})"
            ));
        }
    }
    drop(idle_fleet);

    // Scrape the server's own request-latency histogram so the report entry
    // carries both sides of the latency story. Never part of the --check
    // digest: telemetry must not perturb determinism.
    let server_stats = scrape_server_stats(&mut admin)?;

    if let Some(path) = &options.check {
        let digest = check_digest(&final_metrics);
        let text = serde_json::to_string_pretty(&digest).expect("Value serialization is total");
        std::fs::write(path, text.as_bytes()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote response digest to {path}");
    }

    if options.shutdown || server_handle.is_some() {
        let (status, _) = admin
            .request("POST", "/shutdown", None)
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        if status != 200 {
            return Err(format!("shutdown rejected ({status})"));
        }
    }
    if let Some(handle) = server_handle {
        handle
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server exited with error: {e}"))?;
        eprintln!("in-process server shut down cleanly");
    }

    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };

    // Cross-check the two latency views in --check mode: the server-side
    // histogram must have seen at least every driven request, its quantile
    // upper bounds must be monotone, and — since the handler time it measures
    // is a subset of the client-observed round trip and bucket upper bounds
    // overshoot by strictly less than 2x — its p50 cannot plausibly exceed
    // twice the client p50 plus slack. Skipped when the server was built
    // with telemetry compiled out.
    if options.check.is_some() && server_stats.telemetry == "on" {
        if server_stats.count < total_requests as u64 {
            return Err(format!(
                "server histogram counted {} requests but the clients drove {total_requests}",
                server_stats.count
            ));
        }
        if !(server_stats.p50 <= server_stats.p90 && server_stats.p90 <= server_stats.p99) {
            return Err(format!(
                "server percentiles are not monotone: p50 {} p90 {} p99 {}",
                server_stats.p50, server_stats.p90, server_stats.p99
            ));
        }
        let bound = 2 * percentile(0.50) + 1000;
        if server_stats.p50 > bound {
            return Err(format!(
                "server p50 {}us exceeds client-derived bound {bound}us",
                server_stats.p50
            ));
        }
        eprintln!(
            "latency cross-check ok: server saw {} requests, p50 {}us within bound {bound}us",
            server_stats.count, server_stats.p50
        );
    }

    // Same discipline for the windowed view, except the bound derives from
    // the client p99: the trailing-10s window covers only the tail of the
    // drive, and under group commit the drain tail legitimately runs slower
    // than the run-wide median (every straggler waits out a flusher tick) —
    // but no time-local median can plausibly exceed twice the run-wide p99
    // plus bucket slack.
    if let Some(windowed) = &windowed_stats {
        if !(windowed.p50 <= windowed.p90 && windowed.p90 <= windowed.p99) {
            return Err(format!(
                "windowed percentiles are not monotone: p50 {} p90 {} p99 {}",
                windowed.p50, windowed.p90, windowed.p99
            ));
        }
        let bound = 2 * percentile(0.99) + 1000;
        if windowed.p50 > bound {
            return Err(format!(
                "windowed p50 {}us exceeds client-derived bound {bound}us",
                windowed.p50
            ));
        }
        eprintln!(
            "windowed cross-check ok: trailing-10s window saw {} requests, p50 {}us p99 {}us",
            windowed.count, windowed.p50, windowed.p99
        );
    }

    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    let scenarios_value: Vec<Value> = final_metrics
        .iter()
        .map(|(scenario, metrics)| {
            obj(vec![
                ("id", Value::UInt(scenario.id)),
                ("strategy", Value::String(scenario.strategy.clone())),
                ("resources", Value::UInt(scenario.resources as u64)),
                ("budget", Value::UInt(scenario.budget as u64)),
                (
                    "budget_spent",
                    metrics.get("budget_spent").cloned().unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    let mut entry = obj(vec![
        (
            "workload",
            Value::String(
                match options.workload {
                    Workload::Single => "single",
                    Workload::Mixed => "mixed",
                }
                .to_string(),
            ),
        ),
        ("addr", Value::String(addr.clone())),
        (
            "shards",
            if options.addr.is_some() {
                Value::String("external".to_string())
            } else {
                Value::UInt(options.shards as u64)
            },
        ),
        (
            "durability",
            Value::String(options.durability().to_string()),
        ),
        ("flush_mode", Value::String(options.flush_mode())),
        ("clients", Value::UInt(options.clients as u64)),
        ("idle_connections", Value::UInt(options.idle as u64)),
        ("batch", Value::UInt(options.batch as u64)),
        ("requests", Value::UInt(total_requests as u64)),
        (
            "requests_by_kind",
            obj(vec![
                ("batch", Value::UInt(batch_requests as u64)),
                ("report", Value::UInt(report_requests as u64)),
                ("metrics", Value::UInt(metrics_requests as u64)),
            ]),
        ),
        ("tasks_leased", Value::UInt(driven_leases as u64)),
        ("elapsed_seconds", Value::Float(elapsed.as_secs_f64())),
        ("throughput_rps", Value::Float(throughput)),
        (
            "latency_us",
            obj(vec![
                ("p50", Value::UInt(percentile(0.50))),
                ("p90", Value::UInt(percentile(0.90))),
                ("p99", Value::UInt(percentile(0.99))),
                ("max", Value::UInt(latencies.last().copied().unwrap_or(0))),
            ]),
        ),
        (
            "server_latency_us",
            obj(vec![
                ("p50", Value::UInt(server_stats.p50)),
                ("p90", Value::UInt(server_stats.p90)),
                ("p99", Value::UInt(server_stats.p99)),
                ("max", Value::UInt(server_stats.max)),
                ("count", Value::UInt(server_stats.count)),
            ]),
        ),
        ("telemetry", Value::String(server_stats.telemetry.clone())),
        ("scenarios", Value::Array(scenarios_value)),
    ]);
    if let Some(interval) = options.scrape_interval_ms {
        if let Value::Object(fields) = &mut entry {
            fields.push(("scrape_interval_ms".to_string(), Value::UInt(interval)));
            fields.push(("timeline".to_string(), Value::Array(timeline)));
        }
    }
    append_history(&options.out, entry)?;

    println!(
        "drove {total_requests} requests ({batch_requests} batch / {report_requests} report / {metrics_requests} metrics) with {} clients (+{} idle connections) in {:.2}s",
        options.clients,
        options.idle,
        elapsed.as_secs_f64()
    );
    println!(
        "throughput {throughput:.0} req/s, latency p50 {}us p90 {}us p99 {}us; history appended to {}",
        percentile(0.50),
        percentile(0.90),
        percentile(0.99),
        options.out
    );
    println!(
        "server-side handler latency (telemetry {}): p50 {}us p90 {}us p99 {}us over {} requests",
        server_stats.telemetry,
        server_stats.p50,
        server_stats.p90,
        server_stats.p99,
        server_stats.count
    );
    if total_requests < options.requests {
        return Err(format!(
            "only {total_requests} of the requested {} requests were driven",
            options.requests
        ));
    }
    Ok(())
}

/// Spawns `--clients` threads that drive the workload until the shared
/// `issued` counter reaches `--requests`, pushing their tallies into
/// `tallies`.
///
/// When `aborted` is given the drive is crash-tolerant: once the flag is set
/// (the harness sets it immediately before SIGKILLing the server), request
/// failures end the client quietly instead of failing the run.
fn drive_clients(
    addr: &str,
    scenarios: &[ScenarioHandle],
    options: &Options,
    issued: &Arc<AtomicUsize>,
    tallies: &Arc<Mutex<Vec<Tally>>>,
    aborted: Option<&Arc<AtomicBool>>,
) -> Result<(), String> {
    let mut workers = Vec::new();
    for client_index in 0..options.clients {
        let addr = addr.to_string();
        let issued = Arc::clone(issued);
        let tallies = Arc::clone(tallies);
        let scenarios = scenarios.to_vec();
        let target = options.requests;
        let batch = options.batch;
        let seed = options.seed;
        let aborted = aborted.map(Arc::clone);
        workers.push(
            std::thread::Builder::new()
                .name(format!("loadgen-client-{client_index}"))
                .spawn(move || -> Result<(), String> {
                    let crashed = || {
                        aborted
                            .as_ref()
                            .is_some_and(|flag| flag.load(Ordering::SeqCst))
                    };
                    let mut client = match HttpClient::connect(&addr) {
                        Ok(client) => client,
                        Err(_) if crashed() => return Ok(()),
                        Err(e) => return Err(format!("client {client_index}: connect: {e}")),
                    };
                    let mut tally = Tally::default();
                    let mut iteration = 0usize;
                    while issued.load(Ordering::Relaxed) < target {
                        let scenario = pick_scenario(&scenarios, seed, client_index, iteration);
                        if let Err(e) = drive_iteration(
                            &mut client,
                            scenario,
                            batch,
                            iteration,
                            &issued,
                            &mut tally,
                        ) {
                            if crashed() {
                                break;
                            }
                            return Err(format!("client {client_index}: {e}"));
                        }
                        iteration += 1;
                    }
                    lock_unpoisoned(&tallies).push(tally);
                    Ok(())
                })
                .expect("spawn client thread"),
        );
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
    }
    Ok(())
}

/// A `tagging_server` child process and the address it bound.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

/// Spawns the `tagging_server` daemon (expected next to this binary) on an
/// ephemeral port with `--data-dir`, and parses the bound address from its
/// startup banner.
fn spawn_daemon(options: &Options, data_dir: &str) -> Result<Daemon, String> {
    use std::io::BufRead;

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let bin = exe
        .parent()
        .ok_or("current_exe has no parent directory")?
        .join("tagging_server");
    if !bin.exists() {
        return Err(format!(
            "daemon binary not found at {}; build the tagging_server bin first",
            bin.display()
        ));
    }
    let mut args: Vec<String> = [
        "--port",
        "0",
        "--workers",
        &(options.clients + 1).min(8).to_string(),
        "--shards",
        &options.shards.to_string(),
        "--data-dir",
        data_dir,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    // Forward the store-tuning flags so the daemon persists exactly the way
    // an in-process run with the same options would.
    if let Some(every) = options.snapshot_every {
        args.extend(["--snapshot-every".to_string(), every.to_string()]);
    }
    if let Some(policy) = &options.fsync {
        args.extend(["--fsync".to_string(), policy.clone()]);
    }
    if let Some(interval) = options.flush_interval_ms {
        args.extend(["--flush-interval-ms".to_string(), interval.to_string()]);
    }
    if let Some(interval) = options.compact_interval_ms {
        args.extend(["--compact-interval-ms".to_string(), interval.to_string()]);
    }
    let mut child = std::process::Command::new(&bin)
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("daemon stdout not captured")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut addr = None;
    for _ in 0..64 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                eprint!("daemon: {line}");
                if let Some(rest) = line.strip_prefix("listening on ") {
                    addr = Some(rest.trim().to_string());
                    break;
                }
            }
            Err(e) => return Err(format!("reading daemon stdout: {e}")),
        }
    }
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("daemon never printed its listening address".to_string());
    };
    // Keep draining the pipe so the daemon never blocks on a full buffer.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(Daemon { child, addr })
}

/// The crash-recovery harness (`--crash-after N`, requires `--data-dir`):
///
/// 1. spawn the daemon as a child process with durable sessions enabled;
/// 2. drive the workload; once N requests have been served, SIGKILL the
///    daemon mid-flight — no flush, no shutdown marker;
/// 3. restart the daemon on the same data directory and verify every
///    scenario recovered;
/// 4. resume the drive to the full `--requests` target, report the recovered
///    pending ("ghost") leases via `GET /scenarios/{id}/tasks`, and drain
///    every scenario to budget exhaustion;
/// 5. write the `--check` digest, which must be byte-identical to the digest
///    of an uninterrupted run with the same options (CI diffs the two).
///
/// The per-scenario lease accounting of the plain run is skipped: leases
/// acknowledged by the first daemon just before the kill never reach a client
/// tally, so the client-side count is legitimately incomplete. The server-side
/// invariants (full budget spent, digest equality) still hold.
fn run_crash(options: &Options, crash_after: usize) -> Result<(), String> {
    let data_dir = options
        .data_dir
        .clone()
        .ok_or("--crash-after requires --data-dir")?;
    if options.addr.is_some() {
        return Err("--crash-after drives its own daemon; drop --addr".to_string());
    }
    if crash_after >= options.requests {
        return Err(format!(
            "--crash-after {crash_after} must be below --requests {}",
            options.requests
        ));
    }

    // Phase 1: spawn, register, drive, kill.
    let daemon = spawn_daemon(options, &data_dir)?;
    let child = Arc::new(Mutex::new(daemon.child));
    let mut admin =
        HttpClient::connect(&daemon.addr).map_err(|e| format!("cannot connect: {e}"))?;
    let scenarios = match options.workload {
        Workload::Single => vec![register_single(&mut admin, options)?],
        Workload::Mixed => register_mixed(&mut admin, options)?,
    };
    drop(admin);

    let issued = Arc::new(AtomicUsize::new(0));
    let tallies: Arc<Mutex<Vec<Tally>>> = Arc::new(Mutex::new(Vec::new()));
    let aborted = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let killer = {
        let issued = Arc::clone(&issued);
        let aborted = Arc::clone(&aborted);
        let child = Arc::clone(&child);
        std::thread::spawn(move || {
            while issued.load(Ordering::Relaxed) < crash_after {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // Set the flag first so every request failure the kill causes is
            // seen as expected by the clients.
            aborted.store(true, Ordering::SeqCst);
            let mut child = lock_unpoisoned(&child);
            let _ = child.kill();
        })
    };
    drive_clients(
        &daemon.addr,
        &scenarios,
        options,
        &issued,
        &tallies,
        Some(&aborted),
    )?;
    killer.join().map_err(|_| "killer thread panicked")?;
    lock_unpoisoned(&child)
        .wait()
        .map_err(|e| format!("waiting for killed daemon: {e}"))?;
    let killed_at = issued.load(Ordering::Relaxed);
    eprintln!("killed the daemon after {killed_at} requests (threshold {crash_after})");

    // Phase 2: restart on the same data directory and verify recovery.
    let daemon = spawn_daemon(options, &data_dir)?;
    let mut admin =
        HttpClient::connect(&daemon.addr).map_err(|e| format!("reconnect after restart: {e}"))?;
    let (status, health) = admin
        .request("GET", "/healthz", None)
        .map_err(|e| format!("healthz after restart: {e}"))?;
    if status != 200 {
        return Err(format!("healthz after restart rejected ({status})"));
    }
    match health.get("sessions") {
        Some(&Value::UInt(n)) if n as usize == scenarios.len() => {}
        other => {
            return Err(format!(
                "expected {} recovered sessions after restart, healthz says {other:?}",
                scenarios.len()
            ));
        }
    }
    eprintln!(
        "daemon restarted on {} with all {} sessions recovered",
        daemon.addr,
        scenarios.len()
    );

    // Resume the drive to the full request target.
    drive_clients(&daemon.addr, &scenarios, options, &issued, &tallies, None)?;
    let elapsed = start.elapsed();

    // Report the ghosts — leases the first daemon persisted but whose tasks
    // died with the clients — then drain every scenario to exhaustion.
    let mut ghosts = 0usize;
    for scenario in &scenarios {
        let (status, response) = admin
            .request("GET", &format!("/scenarios/{}/tasks", scenario.id), None)
            .map_err(|e| format!("pending tasks of scenario {}: {e}", scenario.id))?;
        if status != 200 {
            return Err(format!("pending tasks rejected ({status}): {response:?}"));
        }
        let pending = match response.get("pending") {
            Some(Value::Array(ids)) => ids.clone(),
            other => return Err(format!("no pending array: {other:?}")),
        };
        ghosts += pending.len();
        for chunk in pending.chunks(64) {
            let completions: Vec<Value> = chunk
                .iter()
                .map(|id| obj(vec![("task_id", id.clone())]))
                .collect();
            let (status, _) = admin
                .request(
                    "POST",
                    &format!("/scenarios/{}/report", scenario.id),
                    Some(&obj(vec![("completions", Value::Array(completions))])),
                )
                .map_err(|e| format!("reporting ghost leases: {e}"))?;
            if status != 200 {
                return Err(format!("ghost report rejected ({status})"));
            }
        }
        drain_scenario(&mut admin, scenario.id)
            .map_err(|e| format!("draining scenario {}: {e}", scenario.id))?;
    }
    eprintln!("reported {ghosts} ghost leases recovered from the WAL");

    // Final metrics: full budget spent, no pending work — same server-side
    // invariants as the plain run (client-side lease tallies are skipped).
    let mut final_metrics: Vec<(ScenarioHandle, Value)> = Vec::new();
    for scenario in &scenarios {
        let (status, metrics) = admin
            .request("GET", &format!("/scenarios/{}/metrics", scenario.id), None)
            .map_err(|e| format!("final metrics request failed: {e}"))?;
        if status != 200 {
            return Err(format!("final metrics rejected ({status}): {metrics:?}"));
        }
        match metrics.get("budget_spent") {
            Some(&Value::UInt(n)) if n as usize == scenario.budget => {}
            other => {
                return Err(format!(
                    "scenario {}: expected budget {} spent after the drain, got {other:?}",
                    scenario.id, scenario.budget
                ));
            }
        }
        final_metrics.push((scenario.clone(), metrics));
    }

    if let Some(path) = &options.check {
        let digest = check_digest(&final_metrics);
        let text = serde_json::to_string_pretty(&digest).expect("Value serialization is total");
        std::fs::write(path, text.as_bytes()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote response digest to {path}");
    }

    // Clean shutdown of the second daemon.
    let (status, _) = admin
        .request("POST", "/shutdown", None)
        .map_err(|e| format!("shutdown request failed: {e}"))?;
    if status != 200 {
        return Err(format!("shutdown rejected ({status})"));
    }
    let exit = daemon
        .child
        .wait_with_output()
        .map_err(|e| format!("waiting for daemon shutdown: {e}"))?;
    if !exit.status.success() {
        return Err(format!("daemon exited with {:?}", exit.status));
    }

    let total_requests = issued.load(Ordering::Relaxed);
    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    let scenarios_value: Vec<Value> = final_metrics
        .iter()
        .map(|(scenario, metrics)| {
            obj(vec![
                ("id", Value::UInt(scenario.id)),
                ("strategy", Value::String(scenario.strategy.clone())),
                ("resources", Value::UInt(scenario.resources as u64)),
                ("budget", Value::UInt(scenario.budget as u64)),
                (
                    "budget_spent",
                    metrics.get("budget_spent").cloned().unwrap_or(Value::Null),
                ),
            ])
        })
        .collect();
    let entry = obj(vec![
        (
            "workload",
            Value::String(
                match options.workload {
                    Workload::Single => "single",
                    Workload::Mixed => "mixed",
                }
                .to_string(),
            ),
        ),
        ("addr", Value::String(daemon.addr.clone())),
        ("shards", Value::UInt(options.shards as u64)),
        ("durability", Value::String("wal".to_string())),
        ("flush_mode", Value::String(options.flush_mode())),
        ("crash_after", Value::UInt(crash_after as u64)),
        ("killed_at", Value::UInt(killed_at as u64)),
        ("ghost_leases", Value::UInt(ghosts as u64)),
        ("clients", Value::UInt(options.clients as u64)),
        ("batch", Value::UInt(options.batch as u64)),
        ("requests", Value::UInt(total_requests as u64)),
        ("elapsed_seconds", Value::Float(elapsed.as_secs_f64())),
        ("throughput_rps", Value::Float(throughput)),
        ("scenarios", Value::Array(scenarios_value)),
    ]);
    append_history(&options.out, entry)?;

    println!(
        "crash harness passed: {total_requests} requests across a SIGKILL at {killed_at}, \
         {ghosts} ghost leases recovered, every budget drained; history appended to {}",
        options.out
    );
    Ok(())
}

/// Registers the classic single scenario (`--resources`/`--budget`/
/// `--strategy`, optionally from a saved corpus).
fn register_single(admin: &mut HttpClient, options: &Options) -> Result<ScenarioHandle, String> {
    let source = match &options.corpus {
        Some(path) => obj(vec![("corpus_path", Value::String(path.clone()))]),
        None => obj(vec![(
            "generate",
            obj(vec![
                ("resources", Value::UInt(options.resources as u64)),
                ("seed", Value::UInt(options.seed)),
            ]),
        )]),
    };
    register(
        admin,
        &options.strategy,
        options.budget,
        options.seed,
        source,
    )
}

/// Registers the mixed fleet: `--small` small sessions plus `--large` giant
/// ones, strategies cycled so the fleet exercises every allocator while the
/// giants (which receive most of the traffic) stay on the two strategies
/// whose fully-drained state is interleaving-independent (FP, RR) — the
/// property the `--check` digest relies on.
fn register_mixed(
    admin: &mut HttpClient,
    options: &Options,
) -> Result<Vec<ScenarioHandle>, String> {
    const SMALL_STRATEGIES: [&str; 4] = ["FP", "RR", "MU", "FP-MU"];
    const LARGE_STRATEGIES: [&str; 2] = ["FP", "RR"];
    let mut scenarios = Vec::new();
    for i in 0..options.small.max(1) {
        let source = obj(vec![(
            "generate",
            obj(vec![
                ("resources", Value::UInt(40)),
                ("seed", Value::UInt(options.seed.wrapping_add(i as u64))),
            ]),
        )]);
        scenarios.push(register(
            admin,
            SMALL_STRATEGIES[i % SMALL_STRATEGIES.len()],
            600,
            options.seed,
            source,
        )?);
    }
    for j in 0..options.large.max(1) {
        let source = obj(vec![(
            "generate",
            obj(vec![
                ("resources", Value::UInt(400)),
                (
                    "seed",
                    Value::UInt(options.seed.wrapping_add(1_000 + j as u64)),
                ),
            ]),
        )]);
        scenarios.push(register(
            admin,
            LARGE_STRATEGIES[j % LARGE_STRATEGIES.len()],
            12_000,
            options.seed,
            source,
        )?);
    }
    Ok(scenarios)
}

fn register(
    admin: &mut HttpClient,
    strategy: &str,
    budget: usize,
    seed: u64,
    source: Value,
) -> Result<ScenarioHandle, String> {
    let body = obj(vec![
        ("strategy", Value::String(strategy.to_string())),
        ("budget", Value::UInt(budget as u64)),
        ("seed", Value::UInt(seed)),
        ("source", source),
    ]);
    let (status, registered) = admin
        .request("POST", "/scenarios", Some(&body))
        .map_err(|e| format!("registration failed: {e}"))?;
    if status != 200 {
        return Err(format!("registration rejected ({status}): {registered:?}"));
    }
    let Some(&Value::UInt(id)) = registered.get("scenario_id") else {
        return Err(format!(
            "registration returned no scenario_id: {registered:?}"
        ));
    };
    let resources = match registered.get("resources") {
        Some(&Value::UInt(n)) => n as usize,
        _ => 0,
    };
    Ok(ScenarioHandle {
        id,
        strategy: strategy.to_string(),
        resources,
        budget,
    })
}

/// The deterministic skewed scenario choice: giants (the tail of the list in
/// mixed mode) receive ~3/4 of the traffic. Single-scenario runs always pick
/// the only entry.
fn pick_scenario(
    scenarios: &[ScenarioHandle],
    seed: u64,
    client: usize,
    iteration: usize,
) -> &ScenarioHandle {
    if scenarios.len() == 1 {
        return &scenarios[0];
    }
    // The giants are the scenarios with the largest budgets; partition point:
    // anything at least 10x the smallest budget counts as giant.
    let smallest = scenarios.iter().map(|s| s.budget).min().unwrap_or(1);
    let giants: Vec<usize> = (0..scenarios.len())
        .filter(|&i| scenarios[i].budget >= smallest.saturating_mul(10))
        .collect();
    let r = mix(seed
        ^ (client as u64).wrapping_mul(0x0100_0000_01b3)
        ^ (iteration as u64).wrapping_mul(0x9e37_79b9));
    if !giants.is_empty() && !r.is_multiple_of(4) {
        &scenarios[giants[(r / 4) as usize % giants.len()]]
    } else {
        &scenarios[(r / 4) as usize % scenarios.len()]
    }
}

/// One client iteration: lease a batch, report every lease, poll metrics on
/// every 8th iteration.
fn drive_iteration(
    client: &mut HttpClient,
    scenario: &ScenarioHandle,
    batch: usize,
    iteration: usize,
    issued: &AtomicUsize,
    tally: &mut Tally,
) -> Result<(), String> {
    let tasks = timed_request(
        client,
        "POST",
        &format!("/scenarios/{}/batch", scenario.id),
        Some(&obj(vec![("k", Value::UInt(batch as u64))])),
        issued,
        tally,
    )?;
    tally.batch_requests += 1;
    let leased = match tasks.get("tasks") {
        Some(Value::Array(items)) => items.clone(),
        _ => Vec::new(),
    };
    *tally.tasks_leased.entry(scenario.id).or_insert(0) += leased.len();
    if !leased.is_empty() {
        let completions: Vec<Value> = leased
            .iter()
            .filter_map(|t| t.get("task_id").cloned())
            .map(|id| obj(vec![("task_id", id)]))
            .collect();
        let body = obj(vec![("completions", Value::Array(completions))]);
        let response = timed_request(
            client,
            "POST",
            &format!("/scenarios/{}/report", scenario.id),
            Some(&body),
            issued,
            tally,
        )?;
        tally.report_requests += 1;
        if response.get("accepted").is_none() {
            return Err(format!("report rejected: {response:?}"));
        }
    }
    if iteration % 8 == 7 {
        timed_request(
            client,
            "GET",
            &format!("/scenarios/{}/metrics", scenario.id),
            None,
            issued,
            tally,
        )?;
        tally.metrics_requests += 1;
    }
    Ok(())
}

/// Leases and immediately reports batches of 64 until the scenario's budget
/// is exhausted; returns how many tasks were drained.
fn drain_scenario(admin: &mut HttpClient, id: u64) -> Result<usize, String> {
    let mut drained = 0usize;
    loop {
        let (status, batch) = admin
            .request(
                "POST",
                &format!("/scenarios/{id}/batch"),
                Some(&obj(vec![("k", Value::UInt(64))])),
            )
            .map_err(|e| format!("drain batch: {e}"))?;
        if status != 200 {
            return Err(format!("drain batch rejected ({status})"));
        }
        let tasks = match batch.get("tasks") {
            Some(Value::Array(items)) => items.clone(),
            _ => Vec::new(),
        };
        if tasks.is_empty() {
            return Ok(drained);
        }
        drained += tasks.len();
        let completions: Vec<Value> = tasks
            .iter()
            .filter_map(|t| t.get("task_id").cloned())
            .map(|id| obj(vec![("task_id", id)]))
            .collect();
        let (status, _) = admin
            .request(
                "POST",
                &format!("/scenarios/{id}/report"),
                Some(&obj(vec![("completions", Value::Array(completions))])),
            )
            .map_err(|e| format!("drain report: {e}"))?;
        if status != 200 {
            return Err(format!("drain report rejected ({status})"));
        }
    }
}

/// The server's own view of request latency, scraped from `GET /stats`.
struct ServerStats {
    /// `"on"` or `"noop"` — whether the server recorded anything at all.
    telemetry: String,
    count: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
}

/// Extracts the `server_request_us` histogram summary plus the `telemetry`
/// marker from a `/stats` (or `/stats?window=...`) body.
fn extract_server_stats(stats: &Value) -> Result<ServerStats, String> {
    let telemetry = match stats.get("telemetry") {
        Some(Value::String(s)) => s.clone(),
        other => return Err(format!("stats missing telemetry marker: {other:?}")),
    };
    let hist = stats
        .get("histograms")
        .and_then(|h| h.get("server_request_us"));
    let field = |name: &str| -> u64 {
        match hist.and_then(|h| h.get(name)) {
            Some(&Value::UInt(n)) => n,
            _ => 0,
        }
    };
    Ok(ServerStats {
        telemetry,
        count: field("count"),
        p50: field("p50"),
        p90: field("p90"),
        p99: field("p99"),
        max: field("max"),
    })
}

/// Scrapes `GET /stats` and extracts the `server_request_us` histogram
/// summary plus the `telemetry` marker.
fn scrape_server_stats(admin: &mut HttpClient) -> Result<ServerStats, String> {
    let (status, stats) = admin
        .request("GET", "/stats", None)
        .map_err(|e| format!("stats scrape failed: {e}"))?;
    if status != 200 {
        return Err(format!("stats scrape rejected ({status}): {stats:?}"));
    }
    let stats = extract_server_stats(&stats)?;
    if stats.telemetry == "on" && stats.count == 0 {
        return Err("stats missing the server_request_us histogram".to_string());
    }
    Ok(stats)
}

/// Scrapes `GET /stats?window=10s`, retrying until a window rotation has
/// captured the drive's traffic (rotations happen on the publisher's
/// cadence, nominally once per second). Returns `None` when the server
/// compiled telemetry to no-ops.
fn scrape_windowed_stats(admin: &mut HttpClient) -> Result<Option<ServerStats>, String> {
    const ATTEMPTS: usize = 12;
    for attempt in 0..ATTEMPTS {
        let (status, stats) = admin
            .request("GET", "/stats?window=10s", None)
            .map_err(|e| format!("windowed stats scrape failed: {e}"))?;
        if status != 200 {
            return Err(format!("windowed stats rejected ({status}): {stats:?}"));
        }
        let stats = extract_server_stats(&stats)?;
        if stats.telemetry != "on" {
            return Ok(None);
        }
        if stats.count > 0 {
            return Ok(Some(stats));
        }
        if attempt + 1 < ATTEMPTS {
            std::thread::sleep(Duration::from_millis(500));
        }
    }
    Err("trailing-10s window never showed the drive's traffic".to_string())
}

/// A background thread sampling the run every `--scrape-interval`.
struct Scraper {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Vec<Value>>,
}

/// Parse `--scrape-interval`: `500ms`, `2s`, or a bare millisecond count.
fn parse_interval_ms(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(ms) = text.strip_suffix("ms") {
        return ms.parse().ok().filter(|&n| n > 0);
    }
    if let Some(seconds) = text.strip_suffix('s') {
        return seconds
            .parse::<u64>()
            .ok()
            .filter(|&n| n > 0)
            .and_then(|n| n.checked_mul(1_000));
    }
    text.parse().ok().filter(|&n| n > 0)
}

/// Spawns the timeline scraper: every `interval_ms` it records the request
/// progress (from the shared `issued` counter) and the server's trailing-1s
/// windowed latency view. Scrape failures degrade to progress-only entries —
/// the timeline must never fail a run.
fn spawn_scraper(addr: &str, interval_ms: u64, issued: Arc<AtomicUsize>) -> Scraper {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let addr = addr.to_string();
    let handle = std::thread::Builder::new()
        .name("loadgen-scraper".to_string())
        .spawn(move || {
            let started = Instant::now();
            let mut client = HttpClient::connect(&addr).ok();
            let mut timeline = Vec::new();
            let mut prev_issued = 0usize;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(interval_ms));
                let now_issued = issued.load(Ordering::Relaxed);
                let mut fields = vec![
                    (
                        "t_ms",
                        Value::UInt(started.elapsed().as_millis().min(u64::MAX as u128) as u64),
                    ),
                    ("issued", Value::UInt(now_issued as u64)),
                    (
                        "issued_delta",
                        Value::UInt(now_issued.saturating_sub(prev_issued) as u64),
                    ),
                ];
                prev_issued = now_issued;
                if let Some(admin) = client.as_mut() {
                    if let Ok((200, stats)) = admin.request("GET", "/stats?window=1s", None) {
                        if let Ok(window) = extract_server_stats(&stats) {
                            fields.push(("window_count", Value::UInt(window.count)));
                            fields.push(("window_p50_us", Value::UInt(window.p50)));
                            fields.push(("window_p99_us", Value::UInt(window.p99)));
                        }
                    }
                }
                timeline.push(obj(fields));
            }
            timeline
        })
        .expect("spawn scraper thread");
    Scraper { stop, handle }
}

/// Canonical digest of the fully-drained final state, for byte-diffing runs
/// against servers with different shard counts.
///
/// All scenarios contribute their invariant fields; scenarios on FP/RR
/// additionally contribute the full metric set (quality, undelivered count,
/// the allocation vector), because for those two strategies the fully-drained
/// allocation is a pure function of the total spend — independent of how
/// concurrent clients interleaved. MU/FP-MU state depends on observation
/// order, so their detailed fields are legitimately interleaving-dependent
/// and excluded. Telemetry never contributes: the digest must be byte-equal
/// whether the server records metrics or compiles them to no-ops.
fn check_digest(final_metrics: &[(ScenarioHandle, Value)]) -> Value {
    let entries: Vec<Value> = final_metrics
        .iter()
        .map(|(scenario, metrics)| {
            let mut fields = vec![
                ("strategy", Value::String(scenario.strategy.clone())),
                ("resources", Value::UInt(scenario.resources as u64)),
                ("budget", Value::UInt(scenario.budget as u64)),
                (
                    "budget_spent",
                    metrics.get("budget_spent").cloned().unwrap_or(Value::Null),
                ),
                (
                    "pending_tasks",
                    metrics.get("pending_tasks").cloned().unwrap_or(Value::Null),
                ),
            ];
            if matches!(scenario.strategy.as_str(), "FP" | "RR") {
                for key in ["mean_quality", "undelivered", "allocation"] {
                    fields.push((key, metrics.get(key).cloned().unwrap_or(Value::Null)));
                }
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("report", Value::String("loadgen-check".to_string())),
        ("scenarios", Value::Array(entries)),
    ])
}

/// Appends `entry` to the report history at `path`. An existing PR-4-era
/// single-report file becomes the first history entry; a missing or
/// unreadable file starts a fresh history.
fn append_history(path: &str, entry: Value) -> Result<(), String> {
    let mut entries: Vec<Value> = match std::fs::read_to_string(path) {
        Ok(text) => match serde_json::from_str(&text) {
            Ok(Value::Object(fields)) => {
                let mut map: HashMap<String, Value> = fields.iter().cloned().collect();
                match map.remove("entries") {
                    Some(Value::Array(entries)) => entries,
                    _ => vec![Value::Object(fields)],
                }
            }
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    entries.push(entry);
    let history = obj(vec![
        ("report", Value::String("loadgen-history".to_string())),
        ("entries", Value::Array(entries)),
    ]);
    let text = serde_json::to_string_pretty(&history).expect("Value serialization is total");
    std::fs::write(path, text.as_bytes()).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Performs one HTTP request, recording its latency and bumping the global
/// request counter.
fn timed_request(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: Option<&Value>,
    issued: &AtomicUsize,
    tally: &mut Tally,
) -> Result<Value, String> {
    let start = Instant::now();
    let (status, value) = client
        .request(method, path, body)
        .map_err(|e| format!("{method} {path}: {e}"))?;
    tally
        .latencies_us
        .push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    issued.fetch_add(1, Ordering::Relaxed);
    if status != 200 {
        return Err(format!("{method} {path} returned {status}: {value:?}"));
    }
    Ok(value)
}
