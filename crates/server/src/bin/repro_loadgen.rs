//! Load generator for the tagging server: N concurrent deterministic clients
//! lease task batches, report completions and poll metrics over real TCP,
//! recording throughput and latency percentiles.
//!
//! Usage:
//! `cargo run --release -p tagging-server --bin repro_loadgen -- [options]`
//!
//! * `--addr HOST:PORT` — target an already-running server (default: spawn an
//!   in-process server on an ephemeral port and verify its clean shutdown);
//! * `--clients N` — concurrent clients (default 4);
//! * `--requests N` — total HTTP requests to drive (default 12000);
//! * `--batch K` — tasks leased per batch request (default 8);
//! * `--resources N` / `--budget B` / `--strategy S` / `--seed X` — the
//!   scenario registered for the run (defaults 120 / 50000 / FP / 1);
//! * `--corpus PATH` — register the scenario from a saved corpus instead of
//!   generating one;
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_loadgen.json`, next to `BENCH_sweep.json`);
//! * `--shutdown` — send `POST /shutdown` when done (implied in-process).
//!
//! Every client runs the same fixed request pattern (batch → report → every
//! 8th iteration a metrics poll), so a run is reproducible up to thread
//! interleaving; the server-side session stays consistent under any
//! interleaving, which the final metrics check verifies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Value;
use tagging_server::http::HttpClient;
use tagging_server::TaggingServer;

#[derive(Debug, Clone)]
struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    batch: usize,
    resources: usize,
    budget: usize,
    strategy: String,
    seed: u64,
    corpus: Option<String>,
    out: String,
    shutdown: bool,
}

impl Options {
    fn parse(args: &[String]) -> Self {
        let value = |name: &str| -> Option<String> {
            let mut iter = args.iter();
            while let Some(arg) = iter.next() {
                if arg == name {
                    return iter.next().cloned();
                }
            }
            None
        };
        let number = |name: &str, default: usize| -> usize {
            value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Self {
            addr: value("--addr"),
            clients: number("--clients", 4).max(1),
            requests: number("--requests", 12_000),
            batch: number("--batch", 8).max(1),
            resources: number("--resources", 120).max(1),
            budget: number("--budget", 50_000),
            strategy: value("--strategy").unwrap_or_else(|| "FP".to_string()),
            seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(1),
            corpus: value("--corpus"),
            out: value("--out").unwrap_or_else(|| "BENCH_loadgen.json".to_string()),
            shutdown: args.iter().any(|a| a == "--shutdown"),
        }
    }
}

/// Per-client tallies, merged after the join.
#[derive(Debug, Default)]
struct Tally {
    latencies_us: Vec<u64>,
    batch_requests: usize,
    report_requests: usize,
    metrics_requests: usize,
    tasks_leased: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options::parse(&args);
    if let Err(message) = run(&options) {
        eprintln!("repro_loadgen failed: {message}");
        std::process::exit(1);
    }
}

fn run(options: &Options) -> Result<(), String> {
    // Either target the given server or spawn one in-process; in-process runs
    // always verify clean shutdown at the end.
    let (addr, server_handle) = match &options.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let workers = (options.clients + 1).min(8);
            let server = TaggingServer::bind("127.0.0.1:0", workers)
                .map_err(|e| format!("cannot bind in-process server: {e}"))?;
            let (addr, handle) = server
                .spawn()
                .map_err(|e| format!("cannot start in-process server: {e}"))?;
            eprintln!("spawned in-process server on {addr}");
            (addr.to_string(), Some(handle))
        }
    };

    // Register the scenario for the whole run.
    let mut admin = HttpClient::connect(&addr).map_err(|e| format!("cannot connect: {e}"))?;
    let source = match &options.corpus {
        Some(path) => Value::Object(vec![(
            "corpus_path".to_string(),
            Value::String(path.clone()),
        )]),
        None => Value::Object(vec![(
            "generate".to_string(),
            Value::Object(vec![
                (
                    "resources".to_string(),
                    Value::UInt(options.resources as u64),
                ),
                ("seed".to_string(), Value::UInt(options.seed)),
            ]),
        )]),
    };
    let register = Value::Object(vec![
        (
            "strategy".to_string(),
            Value::String(options.strategy.clone()),
        ),
        ("budget".to_string(), Value::UInt(options.budget as u64)),
        ("seed".to_string(), Value::UInt(options.seed)),
        ("source".to_string(), source),
    ]);
    let (status, registered) = admin
        .request("POST", "/scenarios", Some(&register))
        .map_err(|e| format!("registration failed: {e}"))?;
    if status != 200 {
        return Err(format!("registration rejected ({status}): {registered:?}"));
    }
    let Some(&Value::UInt(scenario_id)) = registered.get("scenario_id") else {
        return Err(format!(
            "registration returned no scenario_id: {registered:?}"
        ));
    };
    eprintln!(
        "registered scenario {scenario_id}: {} resources, budget {}, strategy {}",
        options.resources, options.budget, options.strategy
    );

    // Fire the clients.
    let issued = Arc::new(AtomicUsize::new(0));
    let tallies: Arc<Mutex<Vec<Tally>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let mut workers = Vec::new();
    for client_index in 0..options.clients {
        let addr = addr.clone();
        let issued = Arc::clone(&issued);
        let tallies = Arc::clone(&tallies);
        let target = options.requests;
        let batch = options.batch;
        workers.push(
            std::thread::Builder::new()
                .name(format!("loadgen-client-{client_index}"))
                .spawn(move || -> Result<(), String> {
                    let mut client = HttpClient::connect(&addr)
                        .map_err(|e| format!("client {client_index}: connect: {e}"))?;
                    let mut tally = Tally::default();
                    let mut iteration = 0usize;
                    while issued.load(Ordering::Relaxed) < target {
                        let tasks = timed_request(
                            &mut client,
                            "POST",
                            &format!("/scenarios/{scenario_id}/batch"),
                            Some(&Value::Object(vec![(
                                "k".to_string(),
                                Value::UInt(batch as u64),
                            )])),
                            &issued,
                            &mut tally,
                        )?;
                        tally.batch_requests += 1;
                        let leased = match tasks.get("tasks") {
                            Some(Value::Array(items)) => items.clone(),
                            _ => Vec::new(),
                        };
                        tally.tasks_leased += leased.len();
                        if !leased.is_empty() {
                            let completions: Vec<Value> = leased
                                .iter()
                                .filter_map(|t| t.get("task_id").cloned())
                                .map(|id| Value::Object(vec![("task_id".to_string(), id)]))
                                .collect();
                            let body = Value::Object(vec![(
                                "completions".to_string(),
                                Value::Array(completions),
                            )]);
                            let response = timed_request(
                                &mut client,
                                "POST",
                                &format!("/scenarios/{scenario_id}/report"),
                                Some(&body),
                                &issued,
                                &mut tally,
                            )?;
                            tally.report_requests += 1;
                            if response.get("accepted").is_none() {
                                return Err(format!(
                                    "client {client_index}: report rejected: {response:?}"
                                ));
                            }
                        }
                        if iteration % 8 == 7 {
                            timed_request(
                                &mut client,
                                "GET",
                                &format!("/scenarios/{scenario_id}/metrics"),
                                None,
                                &issued,
                                &mut tally,
                            )?;
                            tally.metrics_requests += 1;
                        }
                        iteration += 1;
                    }
                    tallies.lock().expect("tally lock").push(tally);
                    Ok(())
                })
                .expect("spawn client thread"),
        );
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
    }
    let elapsed = start.elapsed();

    // Merge tallies.
    let tallies = Arc::try_unwrap(tallies)
        .expect("clients joined")
        .into_inner()
        .expect("tally lock");
    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let total_requests: usize = latencies.len();
    let batch_requests: usize = tallies.iter().map(|t| t.batch_requests).sum();
    let report_requests: usize = tallies.iter().map(|t| t.report_requests).sum();
    let metrics_requests: usize = tallies.iter().map(|t| t.metrics_requests).sum();
    let tasks_leased: usize = tallies.iter().map(|t| t.tasks_leased).sum();

    // Final metrics: the non-empty response the smoke job asserts on.
    let (status, final_metrics) = admin
        .request("GET", &format!("/scenarios/{scenario_id}/metrics"), None)
        .map_err(|e| format!("final metrics request failed: {e}"))?;
    if status != 200 {
        return Err(format!(
            "final metrics rejected ({status}): {final_metrics:?}"
        ));
    }
    let spent = match final_metrics.get("budget_spent") {
        Some(&Value::UInt(n)) => n as usize,
        other => return Err(format!("final metrics missing budget_spent: {other:?}")),
    };
    if spent == 0 || spent != tasks_leased {
        return Err(format!(
            "server accounted {spent} tasks but clients leased {tasks_leased}"
        ));
    }
    match final_metrics.get("mean_quality") {
        Some(Value::Float(q)) if (0.0..=1.0).contains(q) => {}
        other => return Err(format!("final metrics missing mean_quality: {other:?}")),
    }

    if options.shutdown || server_handle.is_some() {
        let (status, _) = admin
            .request("POST", "/shutdown", None)
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        if status != 200 {
            return Err(format!("shutdown rejected ({status})"));
        }
    }
    if let Some(handle) = server_handle {
        handle
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server exited with error: {e}"))?;
        eprintln!("in-process server shut down cleanly");
    }

    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    let throughput = total_requests as f64 / elapsed.as_secs_f64();
    let report = Value::Object(vec![
        ("report".to_string(), Value::String("loadgen".to_string())),
        ("addr".to_string(), Value::String(addr.clone())),
        ("clients".to_string(), Value::UInt(options.clients as u64)),
        ("batch".to_string(), Value::UInt(options.batch as u64)),
        (
            "strategy".to_string(),
            Value::String(options.strategy.clone()),
        ),
        ("requests".to_string(), Value::UInt(total_requests as u64)),
        (
            "requests_by_kind".to_string(),
            Value::Object(vec![
                ("batch".to_string(), Value::UInt(batch_requests as u64)),
                ("report".to_string(), Value::UInt(report_requests as u64)),
                ("metrics".to_string(), Value::UInt(metrics_requests as u64)),
            ]),
        ),
        ("tasks_leased".to_string(), Value::UInt(tasks_leased as u64)),
        (
            "elapsed_seconds".to_string(),
            Value::Float(elapsed.as_secs_f64()),
        ),
        ("throughput_rps".to_string(), Value::Float(throughput)),
        (
            "latency_us".to_string(),
            Value::Object(vec![
                ("p50".to_string(), Value::UInt(percentile(0.50))),
                ("p90".to_string(), Value::UInt(percentile(0.90))),
                ("p99".to_string(), Value::UInt(percentile(0.99))),
                (
                    "max".to_string(),
                    Value::UInt(latencies.last().copied().unwrap_or(0)),
                ),
            ]),
        ),
        ("final_metrics".to_string(), final_metrics),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("Value serialization is total");
    std::fs::write(&options.out, text.as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", options.out))?;

    println!(
        "drove {total_requests} requests ({batch_requests} batch / {report_requests} report / {metrics_requests} metrics) with {} clients in {:.2}s",
        options.clients,
        elapsed.as_secs_f64()
    );
    println!(
        "throughput {throughput:.0} req/s, latency p50 {}us p90 {}us p99 {}us; report written to {}",
        percentile(0.50),
        percentile(0.90),
        percentile(0.99),
        options.out
    );
    if total_requests < options.requests {
        return Err(format!(
            "only {total_requests} of the requested {} requests were driven",
            options.requests
        ));
    }
    Ok(())
}

/// Performs one HTTP request, recording its latency and bumping the global
/// request counter.
fn timed_request(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: Option<&Value>,
    issued: &AtomicUsize,
    tally: &mut Tally,
) -> Result<Value, String> {
    let start = Instant::now();
    let (status, value) = client
        .request(method, path, body)
        .map_err(|e| format!("{method} {path}: {e}"))?;
    tally
        .latencies_us
        .push(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
    issued.fetch_add(1, Ordering::Relaxed);
    if status != 200 {
        return Err(format!("{method} {path} returned {status}: {value:?}"));
    }
    Ok(value)
}
