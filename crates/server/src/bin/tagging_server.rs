//! The tagging-server daemon.
//!
//! Usage:
//! `cargo run --release -p tagging-server --bin tagging_server -- [--port P] [--workers N] [--shards S] [--threads N]`
//!
//! * `--port P` — TCP port to bind on 127.0.0.1 (default 0 = ephemeral; the
//!   chosen address is printed as `listening on 127.0.0.1:PORT`);
//! * `--workers N` — request-handling worker threads (default 4; connections
//!   themselves cost no threads — the accept/read path is nonblocking);
//! * `--shards S` — session-registry shard count, rounded up to a power of
//!   two (default 16; 1 = the single-lock baseline used by the CI
//!   divergence check);
//! * `--threads N` — compute threads for corpus generation / scenario
//!   preparation (defaults to `TAGGING_THREADS` / available cores).
//!
//! The process exits cleanly after a `POST /shutdown`.

use std::io::Write;

use tagging_server::TaggingServer;

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => return Some(n),
                None => {
                    eprintln!("{name} expects a non-negative integer, ignoring");
                    return None;
                }
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(threads) = arg_value(&args, "--threads") {
        if threads > 0 {
            tagging_runtime::set_default_threads(threads);
        }
    }
    let port = arg_value(&args, "--port").unwrap_or(0);
    let workers = arg_value(&args, "--workers").unwrap_or(4).max(1);
    let shards = arg_value(&args, "--shards")
        .unwrap_or(tagging_sim::registry::DEFAULT_SHARDS)
        .max(1);

    let server = match TaggingServer::bind_with(&format!("127.0.0.1:{port}"), workers, shards) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    // The startup line scripts (CI's smoke job) parse to find the port.
    println!("listening on {addr}");
    std::io::stdout().flush().expect("stdout");

    match server.run() {
        Ok(()) => {
            println!("shutdown complete");
        }
        Err(e) => {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
    }
}
