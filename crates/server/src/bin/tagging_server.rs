//! The tagging-server daemon.
//!
//! Usage:
//! `cargo run --release -p tagging-server --bin tagging_server -- [--port P] [--workers N] [--shards S] [--threads N] [--data-dir DIR] [--snapshot-every N] [--fsync POLICY]`
//!
//! * `--port P` — TCP port to bind on 127.0.0.1 (default 0 = ephemeral; the
//!   chosen address is printed as `listening on 127.0.0.1:PORT`);
//! * `--workers N` — request-handling worker threads (default 4; connections
//!   themselves cost no threads — the accept/read path is nonblocking);
//! * `--shards S` — session-registry shard count, rounded up to a power of
//!   two (default 16; 1 = the single-lock baseline used by the CI
//!   divergence check);
//! * `--threads N` — compute threads for corpus generation / scenario
//!   preparation (defaults to `TAGGING_THREADS` / available cores);
//! * `--data-dir DIR` — enable durable sessions: a write-ahead log plus
//!   snapshots under `DIR` (one segment per registry shard). On startup the
//!   daemon recovers every session found there and prints what it recovered;
//! * `--snapshot-every N` — events per shard between snapshot compactions
//!   (default 1024; only meaningful with `--data-dir`);
//! * `--fsync POLICY` — `always`, `never`, `group` or `every:N` (default
//!   `every:256`): when the WAL forces bytes to the device. Appends always
//!   reach the OS before they are acknowledged, so any policy survives a
//!   process kill; the policy bounds what a *power loss* can take. `group`
//!   is group commit: acknowledgements wait on the shared fsync the
//!   `wal-flusher` tenant issues, so concurrent requests split one sync;
//! * `--flush-interval-ms N` — the `wal-flusher` tenant's period (default
//!   5). Giving this flag without an explicit `--fsync` selects `group`;
//! * `--compact-interval-ms N` — the `wal-compactor` tenant's period
//!   (default 25). Snapshot compaction runs on that tenant, never on a
//!   request thread; `0` restores the legacy inline compaction where the
//!   append crossing the cadence pays for the snapshot itself.
//!
//! Observability flags (all observation-only):
//!
//! * `--publish-interval-ms N` — window-rotation / publisher period
//!   (default 1000); with `--data-dir` the publisher also appends one JSONL
//!   telemetry sample per interval to `DIR/telemetry.jsonl`;
//! * `--flight-capacity N` / `--slow-capacity N` — ring sizes behind
//!   `GET /debug/flight` and `GET /debug/slow` (defaults 256 / 512);
//! * `--slow-threshold-us N` — handler latency at or above which a request
//!   also enters the slow ring (default 10000);
//! * `--stall-budget-us N` — event-loop heartbeat gap / sweep duration above
//!   which a stall is counted under `server_loop_*` (default 100000).
//!
//! The process exits cleanly after a `POST /shutdown`, marking the WAL so
//! the next start knows the shutdown was clean.
//!
//! Observability: `GET /metrics` serves the Prometheus text exposition,
//! `GET /stats` a JSON projection of the same registry (request counters per
//! route, latency histograms, WAL/snapshot activity, per-shard session
//! gauges), and `GET /stats?window=10s` the same projection over a trailing
//! window. Setting the `TAGGING_TRACE` environment variable to anything but
//! `0` additionally emits one structured `TRACE ...` line per request to
//! stderr, carrying a process-unique request id.

use std::io::Write;

use tagging_persist::PersistOptions;
use tagging_runtime::FlushPolicy;
use tagging_server::{ServerOptions, TaggingServer, TelemetryOptions};

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    arg_text(args, name).and_then(|v| match v.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("{name} expects a non-negative integer, ignoring");
            None
        }
    })
}

fn arg_text(args: &[String], name: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == name {
            return iter.next().cloned();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(threads) = arg_value(&args, "--threads") {
        if threads > 0 {
            tagging_runtime::set_default_threads(threads);
        }
    }
    let port = arg_value(&args, "--port").unwrap_or(0);
    let workers = arg_value(&args, "--workers").unwrap_or(4).max(1);
    let shards = arg_value(&args, "--shards")
        .unwrap_or(tagging_sim::registry::DEFAULT_SHARDS)
        .max(1);
    let persist = arg_text(&args, "--data-dir").map(|dir| {
        let mut options = PersistOptions::new(dir, shards);
        if let Some(every) = arg_value(&args, "--snapshot-every") {
            options.snapshot_every = (every as u64).max(1);
        }
        match arg_text(&args, "--fsync") {
            Some(policy) => match FlushPolicy::parse(&policy) {
                Some(policy) => options.flush = policy,
                None => {
                    eprintln!(
                        "--fsync expects always|never|group|every:N, got `{policy}`; using {}",
                        options.flush
                    );
                }
            },
            // Asking for a flusher cadence without naming a policy means
            // group commit — that is the tenant the cadence drives.
            None => {
                if args.iter().any(|arg| arg == "--flush-interval-ms") {
                    options.flush = FlushPolicy::Group;
                }
            }
        }
        if let Some(interval) = arg_value(&args, "--flush-interval-ms") {
            options.flush_interval_ms = (interval as u64).max(1);
        }
        if let Some(interval) = arg_value(&args, "--compact-interval-ms") {
            options.compact_interval_ms = interval as u64;
        }
        options
    });

    let mut telemetry = TelemetryOptions::default();
    if let Some(interval) = arg_value(&args, "--publish-interval-ms") {
        telemetry.publish_interval_ms = (interval as u64).max(1);
    }
    if let Some(capacity) = arg_value(&args, "--flight-capacity") {
        telemetry.flight_capacity = capacity.max(1);
    }
    if let Some(capacity) = arg_value(&args, "--slow-capacity") {
        telemetry.slow_capacity = capacity.max(1);
    }
    if let Some(threshold) = arg_value(&args, "--slow-threshold-us") {
        telemetry.slow_threshold_us = threshold as u64;
    }
    if let Some(budget) = arg_value(&args, "--stall-budget-us") {
        telemetry.stall_budget_us = (budget as u64).max(1);
    }

    let options = ServerOptions {
        workers,
        shards,
        persist,
        telemetry,
    };
    let server = match TaggingServer::bind_opts(&format!("127.0.0.1:{port}"), options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot start on 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(recovered) = server.recovered() {
        println!(
            "recovered {} session(s) from the data directory (previous shutdown {})",
            recovered.sessions.len(),
            if recovered.clean_shutdown {
                "clean"
            } else {
                "unclean"
            }
        );
    }
    let addr = server.local_addr().expect("bound listener has an address");
    // The startup line scripts (CI's smoke job) parse to find the port.
    println!("listening on {addr}");
    std::io::stdout().flush().expect("stdout");

    match server.run() {
        Ok(()) => {
            println!("shutdown complete");
        }
        Err(e) => {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
    }
}
