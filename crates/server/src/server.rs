//! The TCP front of the service: accept loop, keep-alive connection handling
//! on a [`WorkerPool`], and graceful shutdown.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tagging_runtime::{Runtime, WorkerPool};

use crate::http::{read_request, write_response, Response};
use crate::service::TaggingService;

/// Tracks the open connections so shutdown can unblock workers parked in a
/// read on an idle keep-alive connection: without this, one idle client would
/// keep the worker join (and therefore process exit) waiting forever.
#[derive(Debug, Default)]
struct ConnectionRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_token: AtomicU64,
}

impl ConnectionRegistry {
    /// Registers a connection; the returned token deregisters it.
    fn register(&self, stream: &TcpStream) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .expect("registry poisoned")
                .insert(token, clone);
        }
        token
    }

    fn deregister(&self, token: u64) {
        self.streams
            .lock()
            .expect("registry poisoned")
            .remove(&token);
    }

    /// Closes the *read* half of every open connection: parked `read_request`
    /// calls observe EOF and wind down cleanly, while any response still
    /// being written goes out on the intact write half.
    fn shutdown_reads(&self) {
        for stream in self.streams.lock().expect("registry poisoned").values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A bound-but-not-yet-running tagging server.
#[derive(Debug)]
pub struct TaggingServer {
    listener: TcpListener,
    service: Arc<TaggingService>,
    pool: WorkerPool,
    shutdown: Arc<AtomicBool>,
    connections: Arc<ConnectionRegistry>,
}

impl TaggingServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with `threads`
    /// connection-handling workers.
    pub fn bind(addr: &str, threads: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            service: Arc::new(TaggingService::new(Runtime::from_env())),
            pool: WorkerPool::new(threads),
            shutdown: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(ConnectionRegistry::default()),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `POST /shutdown` arrives, then joins the workers so
    /// every in-flight request finishes before returning.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                // Transient per-connection failures (client reset before the
                // accept, interrupted syscall) must not take the server down.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => return Err(e),
            };
            if self.shutdown.load(Ordering::Acquire) {
                // The wake-up connection (or a late client); stop accepting.
                break;
            }
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let connections = Arc::clone(&self.connections);
            self.pool.execute(move || {
                let token = connections.register(&stream);
                // A broken connection only affects that client.
                let _ = handle_connection(stream, &service, &shutdown, addr);
                connections.deregister(token);
            });
        }
        // Unpark workers blocked reading idle keep-alive connections, then
        // join: dropping the pool waits for in-flight requests to drain.
        self.connections.shutdown_reads();
        drop(self.pool);
        Ok(())
    }

    /// Starts the server on a background thread; returns its address and the
    /// join handle (which yields once the server shuts down cleanly).
    pub fn spawn(self) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("tagging-server-accept".to_string())
            .spawn(move || self.run())?;
        Ok((addr, handle))
    }
}

/// Serves one keep-alive connection until EOF, a `Connection: close`, a
/// protocol error, or a shutdown request.
fn handle_connection(
    stream: TcpStream,
    service: &TaggingService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // client closed between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed HTTP: answer politely, then drop the connection.
                write_response(&mut writer, &Response::error(400, e.to_string()), false)?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let keep_alive = request.keep_alive;
        let handled = service.handle(&request);
        write_response(
            &mut writer,
            &handled.response,
            keep_alive && !handled.shutdown,
        )?;
        writer.flush()?;
        if handled.shutdown {
            shutdown.store(true, Ordering::Release);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            return Ok(());
        }
        if !keep_alive {
            return Ok(());
        }
    }
}
