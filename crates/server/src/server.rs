//! The TCP front of the service: a readiness-based nonblocking accept/read
//! loop feeding a [`WorkerPool`], and graceful shutdown.
//!
//! ## Execution model
//!
//! One *event thread* (the thread that called [`TaggingServer::run`]) owns
//! the listener and every connection. Everything it touches is nonblocking:
//!
//! 1. accept every connection the listener has pending;
//! 2. sweep the open connections, draining whatever bytes each socket has
//!    into its per-connection buffer ([`tagging_runtime::poll`]);
//! 3. when a buffer holds one *complete* request
//!    ([`crate::http::parse_request`]), hand it to the worker pool and mark
//!    the connection busy until the worker reports back.
//!
//! Workers therefore only ever run fully-parsed requests: an idle keep-alive
//! connection costs one entry in the sweep (no thread, no stack, no parked
//! read), so thousands of idle clients are fine with a handful of workers.
//! Long-idle connections are polled on a stride of sweeps rather than every
//! sweep, bounding the sweep cost of a mostly-idle fleet; the first request
//! after a long silence pays at most a few milliseconds of extra latency.
//!
//! A worker that panics answers 500 and poisons nothing: the service's locks
//! recover (see [`tagging_runtime::lock_unpoisoned`]), the connection is
//! re-armed by the completion message, and the pool thread survives because
//! the panic is caught at the job boundary.

use std::collections::HashMap;
use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tagging_persist::{PersistOptions, PersistStore, RecoveredState};
use tagging_runtime::poll::{read_available, write_all_polling, IdleBackoff, ReadOutcome};
use tagging_runtime::{lock_unpoisoned, Runtime, Scheduler, WorkerPool};
use tagging_telemetry::{trace, RequestRecord};

use crate::http::{parse_request, response_bytes, Request, Response, MAX_REQUEST_BYTES};
use crate::service::{Handled, TaggingService};
use crate::telemetry::{Route, TelemetryOptions};

/// How a [`TaggingServer`] is configured beyond its bind address.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Request-handling worker threads.
    pub workers: usize,
    /// Session-registry shard count (rounded up to a power of two).
    pub shards: usize,
    /// Durable-session store configuration; `None` runs memory-only.
    ///
    /// The store's shard count is overridden to match the registry's — one
    /// WAL segment per registry shard is the design invariant.
    pub persist: Option<PersistOptions>,
    /// Time-resolved observability configuration: window rotation, flight
    /// ring capacities, slow threshold, watchdog budget.
    pub telemetry: TelemetryOptions,
}

impl ServerOptions {
    /// `workers` workers, default shard count, no persistence.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            shards: tagging_sim::registry::DEFAULT_SHARDS,
            persist: None,
            telemetry: TelemetryOptions::default(),
        }
    }
}

/// Sweeps without bytes before a connection is considered cold.
const COLD_AFTER_SWEEPS: u32 = 64;

/// A cold connection is polled once per this many sweeps (staggered by
/// connection token so cold polls spread over sweeps instead of bunching).
const COLD_POLL_STRIDE: u64 = 16;

/// One open connection, owned by the event thread.
#[derive(Debug)]
struct Connection {
    stream: TcpStream,
    /// Bytes read but not yet consumed by a parsed request.
    buf: Vec<u8>,
    /// True while a request from this connection is on the worker pool; the
    /// sweep skips busy connections, which also guarantees at most one writer
    /// per stream and in-order responses.
    busy: bool,
    /// Consecutive sweeps that found no bytes (drives the cold stride).
    idle_sweeps: u32,
}

impl Connection {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            busy: false,
            idle_sweeps: 0,
        }
    }

    /// True when this sweep should skip polling the socket: the connection
    /// has been silent for a while and it is not its turn on the cold stride.
    fn skip_cold_poll(&self, sweep: u64, token: u64) -> bool {
        self.buf.is_empty()
            && self.idle_sweeps > COLD_AFTER_SWEEPS
            && !sweep.wrapping_add(token).is_multiple_of(COLD_POLL_STRIDE)
    }
}

/// What a worker reports when it finishes a request.
#[derive(Debug)]
struct Done {
    token: u64,
    /// Keep the connection open for the next request?
    keep_alive: bool,
    /// The handled request asked the server to shut down.
    shutdown: bool,
    /// Writing the response failed; the connection is dead.
    write_failed: bool,
}

/// A bound-but-not-yet-running tagging server.
#[derive(Debug)]
pub struct TaggingServer {
    listener: TcpListener,
    service: Arc<TaggingService>,
    pool: WorkerPool,
    /// What the durable store recovered at bind time (`None` without
    /// persistence).
    recovered: Option<RecoveredState>,
    /// Observability configuration the background tenants run on.
    telemetry: TelemetryOptions,
    /// Where the publisher appends JSONL telemetry samples (`None` without a
    /// data directory).
    publish_path: Option<PathBuf>,
}

impl TaggingServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with `threads`
    /// request-handling workers and the default registry shard count.
    pub fn bind(addr: &str, threads: usize) -> io::Result<Self> {
        Self::bind_with(addr, threads, tagging_sim::registry::DEFAULT_SHARDS)
    }

    /// Binds with an explicit session-registry shard count (rounded up to a
    /// power of two; 1 = the single-lock baseline).
    pub fn bind_with(addr: &str, threads: usize, shards: usize) -> io::Result<Self> {
        Self::bind_opts(
            addr,
            ServerOptions {
                workers: threads,
                shards,
                persist: None,
                telemetry: TelemetryOptions::default(),
            },
        )
    }

    /// Binds with full [`ServerOptions`]. With persistence configured this
    /// opens (or creates) the data directory, recovers every durable session
    /// and reports what it found via [`TaggingServer::recovered`].
    pub fn bind_opts(addr: &str, options: ServerOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let runtime = Runtime::from_env();
        let mut publish_path = None;
        let (mut service, recovered) = match options.persist {
            None => (TaggingService::with_shards(runtime, options.shards), None),
            Some(mut persist) => {
                // One WAL segment per registry shard: force agreement.
                persist.shards =
                    tagging_sim::registry::SessionRegistry::new(options.shards).shard_count();
                let (store, recovered) = PersistStore::open(&persist)?;
                let mut service = TaggingService::with_persist(
                    runtime,
                    options.shards,
                    Arc::new(store),
                    &recovered,
                )?;
                service.describe_persistence(
                    persist.data_dir.display().to_string(),
                    persist.flush.to_string(),
                );
                // The publisher appends telemetry samples next to the WAL.
                publish_path = Some(persist.data_dir.join("telemetry.jsonl"));
                (service, Some(recovered))
            }
        };
        service.configure_telemetry(&options.telemetry);
        Ok(Self {
            listener,
            service: Arc::new(service),
            pool: WorkerPool::new(options.workers),
            recovered,
            telemetry: options.telemetry,
            publish_path,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service behind this server (tests and diagnostics).
    pub fn service(&self) -> &Arc<TaggingService> {
        &self.service
    }

    /// What the durable store recovered at bind time (`None` when running
    /// memory-only).
    pub fn recovered(&self) -> Option<&RecoveredState> {
        self.recovered.as_ref()
    }

    /// Serves until a `POST /shutdown` arrives, then drains: every dispatched
    /// request finishes (and its response is written) before this returns.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (done_tx, done_rx) = channel::<Done>();
        let mut connections: HashMap<u64, Connection> = HashMap::new();
        let mut next_token: u64 = 0;
        let mut backoff = IdleBackoff::new();
        let mut sweep: u64 = 0;
        let mut draining = false;
        let metrics = self.service.metrics();

        // Background tenants: the telemetry publisher (window rotation +
        // optional JSONL samples), the event-loop watchdog, and — with a
        // durable store — the WAL maintenance pair (`wal-flusher` syncing
        // the group-commit cohorts, `wal-compactor` cutting snapshots off
        // the request path). Joined after the drain so process exit never
        // races a half-written sample line or a half-published snapshot.
        let mut scheduler = Scheduler::new();
        spawn_telemetry_tenants(
            &mut scheduler,
            &self.service,
            &self.telemetry,
            self.publish_path.clone(),
        );
        let _maintenance = self
            .service
            .persist_store()
            .map(|store| tagging_persist::spawn_maintenance(&store, &mut scheduler));
        let mut stall_injected = self.telemetry.inject_sweep_stall_us == 0;

        loop {
            sweep = sweep.wrapping_add(1);
            metrics.loop_watchdog.beat();
            let sweep_started = Instant::now();
            let sweep_timer = metrics.sweep_us.start_timer();
            let mut progress = false;
            if !stall_injected {
                // Test hook: a deliberate one-off stall in the sweep path, so
                // the watchdog's stall accounting can be proven end-to-end.
                stall_injected = true;
                std::thread::sleep(Duration::from_micros(self.telemetry.inject_sweep_stall_us));
            }

            // 1. Accept everything pending (stop taking new work once
            //    draining).
            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            connections.insert(next_token, Connection::new(stream));
                            next_token = next_token.wrapping_add(1);
                            progress = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        // Transient per-connection failures (client reset
                        // before the accept, interrupted syscall) must not
                        // take the server down.
                        Err(e)
                            if matches!(
                                e.kind(),
                                io::ErrorKind::ConnectionAborted
                                    | io::ErrorKind::ConnectionReset
                                    | io::ErrorKind::Interrupted
                            ) =>
                        {
                            continue
                        }
                        Err(e) => return Err(e),
                    }
                }
            }

            // 2. Collect worker completions: re-arm or retire connections.
            while let Ok(done) = done_rx.try_recv() {
                progress = true;
                if done.shutdown {
                    draining = true;
                }
                if let Some(connection) = connections.get_mut(&done.token) {
                    connection.busy = false;
                    connection.idle_sweeps = 0;
                    if !done.keep_alive || done.write_failed {
                        connections.remove(&done.token);
                    }
                }
            }

            // 3. Sweep: read available bytes, dispatch complete requests.
            let mut retired: Vec<u64> = Vec::new();
            if !draining {
                for (&token, connection) in connections.iter_mut() {
                    if connection.busy || connection.skip_cold_poll(sweep, token) {
                        continue;
                    }
                    match read_available(
                        &mut connection.stream,
                        &mut connection.buf,
                        MAX_REQUEST_BYTES,
                    ) {
                        Ok(ReadOutcome::Read(_)) => {
                            connection.idle_sweeps = 0;
                            progress = true;
                        }
                        Ok(ReadOutcome::WouldBlock) => {
                            connection.idle_sweeps = connection.idle_sweeps.saturating_add(1);
                        }
                        Ok(ReadOutcome::Closed) | Err(_) => {
                            // EOF with a partial request buffered is the peer
                            // going away — a clean close, never a 500.
                            retired.push(token);
                            continue;
                        }
                    }
                    if connection.buf.is_empty() {
                        continue;
                    }
                    match parse_request(&connection.buf) {
                        Ok(Some((request, consumed))) => {
                            connection.buf.drain(..consumed);
                            progress = true;
                            let Ok(stream) = connection.stream.try_clone() else {
                                retired.push(token);
                                continue;
                            };
                            connection.busy = true;
                            dispatch(&self.pool, &self.service, &done_tx, token, request, stream);
                        }
                        Ok(None) => {} // a valid prefix; keep reading
                        Err(e) => {
                            // Malformed HTTP: answer politely, then drop.
                            // Counted like any other request — 4xx floods
                            // must show up in the route/status metrics.
                            metrics.record_response(Route::Malformed, 400);
                            let bytes = response_bytes(&Response::error(400, e.to_string()), false);
                            let mut write_backoff = IdleBackoff::new();
                            let _ = write_all_polling(
                                &mut connection.stream,
                                &bytes,
                                &mut write_backoff,
                            );
                            retired.push(token);
                        }
                    }
                }
            }
            for token in retired {
                connections.remove(&token);
            }

            metrics.connections_live.set(connections.len() as i64);
            metrics
                .connections_idle
                .set(connections.values().filter(|c| !c.busy).count() as i64);
            metrics.pool_pending.set(self.pool.pending() as i64);
            drop(sweep_timer);
            // A single sweep running over the stall budget is a stall even if
            // the next heartbeat arrives promptly — count it here, where the
            // duration is known exactly.
            let sweep_us = u64::try_from(sweep_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            if sweep_us > self.telemetry.stall_budget_us {
                metrics.loop_watchdog.note_stall(sweep_us);
            }

            if draining && connections.values().all(|c| !c.busy) {
                // Every dispatched request has reported back (its response is
                // on the wire); idle keep-alive connections just close.
                break;
            }

            if progress {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
        drop(connections);
        drop(self.pool); // joins the (now idle) workers
        scheduler.shutdown(); // joins the publisher/watchdog/maintenance tenants
                              // Every request has been handled and acknowledged, and the
                              // maintenance tenants are gone; drain the compaction backlog
                              // (final compact) and mark the WAL segments cleanly shut down
                              // (no-op without persistence).
        self.service.persist_shutdown()?;
        Ok(())
    }

    /// Starts the server on a background thread; returns its address and the
    /// join handle (which yields once the server shuts down cleanly).
    pub fn spawn(self) -> io::Result<(SocketAddr, JoinHandle<io::Result<()>>)> {
        let addr = self.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("tagging-server-accept".to_string())
            .spawn(move || self.run())?;
        Ok((addr, handle))
    }
}

/// How often the watchdog tenant measures the event loop's heartbeat gap.
const WATCHDOG_CHECK_MS: u64 = 100;

/// Spawn the server's background observability tenants:
///
/// * `telemetry-publisher` — rotates the window ring against a fresh
///   cumulative snapshot every interval and, when a data directory is
///   attached, appends the newest one-interval delta as a JSONL sample;
/// * `loop-watchdog` — measures the event loop's heartbeat gap and counts a
///   stall when it exceeds the budget.
///
/// Both are observation-only; with `telemetry-noop` the rotations see all
/// zeros and nothing is published.
fn spawn_telemetry_tenants(
    scheduler: &mut Scheduler,
    service: &Arc<TaggingService>,
    options: &TelemetryOptions,
    publish_path: Option<PathBuf>,
) {
    let windows = Arc::clone(&service.metrics().windows);
    let publish = publish_path.filter(|_| tagging_telemetry::enabled());
    scheduler.spawn_periodic(
        "telemetry-publisher",
        Duration::from_millis(options.publish_interval_ms),
        move || {
            let mut ring = lock_unpoisoned(&windows);
            ring.rotate(tagging_telemetry::global().snapshot());
            let rotation = ring.rotations();
            let (delta, _) = ring.window(1);
            drop(ring);
            if let Some(path) = &publish {
                let mut sample = crate::telemetry::snapshot_to_value(&delta);
                if let serde::Value::Object(fields) = &mut sample {
                    fields.insert(0, ("rotation".to_string(), serde::Value::UInt(rotation)));
                    fields.insert(1, ("ts_us".to_string(), serde::Value::UInt(trace::ts_us())));
                }
                let line = serde_json::to_string(&sample).expect("Value serialization is total");
                // A failed append must not take the tenant down; the next
                // interval retries with a fresh line.
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(file, "{line}");
                }
            }
        },
    );

    let watchdog = Arc::clone(&service.metrics().loop_watchdog);
    let budget_us = options.stall_budget_us;
    scheduler.spawn_periodic(
        "loop-watchdog",
        Duration::from_millis(WATCHDOG_CHECK_MS),
        move || {
            watchdog.check(budget_us);
        },
    );
}

/// Queues one parsed request on the pool. The worker routes it, writes the
/// response through the nonblocking stream, and reports completion; a panic
/// inside the handler is caught at this boundary and answered with a 500, so
/// neither the worker thread nor the connection is lost.
fn dispatch(
    pool: &WorkerPool,
    service: &Arc<TaggingService>,
    done_tx: &Sender<Done>,
    token: u64,
    request: Request,
    mut stream: TcpStream,
) {
    let service = Arc::clone(service);
    let done_tx = done_tx.clone();
    // Request id + queue timestamp are taken on the event thread, so the
    // queue-wait histogram covers the full dispatch-to-pickup gap and trace
    // lines correlate the two threads through one id.
    let request_id = trace::next_request_id();
    if trace::enabled() {
        trace::emit(
            "request.recv",
            &[
                ("req", &request_id.to_string()),
                ("conn", &token.to_string()),
                ("method", &request.method),
                ("path", &request.path),
            ],
        );
    }
    let queued_at = Instant::now();
    pool.execute(move || {
        let queue_wait = queued_at.elapsed();
        service
            .metrics()
            .queue_wait_us
            .record(u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX));
        let handled_at = Instant::now();
        let handled = std::panic::catch_unwind(AssertUnwindSafe(|| service.handle(&request)))
            .unwrap_or_else(|_| Handled {
                response: Response::error(500, "internal error: request handler panicked"),
                shutdown: false,
                route: Route::BadRequest,
                session: None,
            });
        let latency_us = u64::try_from(handled_at.elapsed().as_micros()).unwrap_or(u64::MAX);
        service.metrics().record_flight(RequestRecord {
            id: request_id,
            route: handled.route.label(),
            session: handled.session,
            status: handled.response.status,
            latency_us,
            queue_us: u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX),
            ts_us: trace::ts_us(),
        });
        if trace::enabled() {
            trace::emit(
                "request.done",
                &[
                    ("req", &request_id.to_string()),
                    ("status", &handled.response.status.to_string()),
                    ("queue_us", &queue_wait.as_micros().to_string()),
                    ("handle_us", &handled_at.elapsed().as_micros().to_string()),
                ],
            );
        }
        let keep_alive = request.keep_alive && !handled.shutdown;
        let bytes = response_bytes(&handled.response, keep_alive);
        let mut backoff = IdleBackoff::new();
        let write_failed = write_all_polling(&mut stream, &bytes, &mut backoff).is_err();
        // The event thread may already be gone on a racing shutdown; a failed
        // send is then moot.
        let _ = done_tx.send(Done {
            token,
            keep_alive,
            shutdown: handled.shutdown,
            write_failed,
        });
    });
}
