//! Minimal std-only HTTP/1.1, just enough for a JSON service on loopback:
//! request parsing with `Content-Length` bodies and keep-alive, response
//! writing, and a tiny persistent-connection client used by `repro_loadgen`
//! and the protocol tests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use serde::Value;

/// Largest accepted request body; protects the server from hostile or buggy
/// `Content-Length` values.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted header section (request line + headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method ("GET", "POST", …).
    pub method: String,
    /// The path component of the request target (query strings are kept
    /// verbatim; the service does not use them).
    pub path: String,
    /// Raw request body.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| serde_json::Error::Syntax("body is not valid UTF-8".to_string()))?;
        serde_json::from_str(text)
    }
}

/// A response: status code plus a JSON body (or, exceptionally, a plain-text
/// payload — the Prometheus `/metrics` exposition).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (ignored on the wire when a plain-text payload is set).
    pub body: Value,
    /// Plain-text payload; `Some` switches the Content-Type to text/plain.
    text: Option<String>,
}

impl Response {
    /// A 200 response.
    pub fn ok(body: Value) -> Self {
        Self {
            status: 200,
            body,
            text: None,
        }
    }

    /// An error response with the conventional `{"error": message}` body.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            body: Value::Object(vec![("error".to_string(), Value::String(message.into()))]),
            text: None,
        }
    }

    /// A 200 response carrying `text/plain` instead of JSON (the Prometheus
    /// exposition format of `GET /metrics`).
    pub fn plain(text: impl Into<String>) -> Self {
        Self {
            status: 200,
            body: Value::Null,
            text: Some(text.into()),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Largest number of buffered bytes one request may occupy: full header
/// section plus full body (the bound the server's per-connection read buffer
/// enforces).
pub const MAX_REQUEST_BYTES: usize = MAX_HEADER_BYTES + MAX_BODY_BYTES;

/// Tries to parse one complete request from the front of `buf`.
///
/// This is the *incremental* entry point behind the server's nonblocking read
/// loop: the caller appends whatever bytes the socket had, then asks whether
/// a full request has arrived.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller must
///   drain `consumed` bytes from the buffer (any remainder is the start of a
///   pipelined next request);
/// * `Ok(None)` — the bytes so far are a valid *prefix*; read more;
/// * `Err(InvalidData)` — the bytes can never become a valid request.
///
/// Hostile-input bounds hold *before* anything is allocated for the body: a
/// `Content-Length` that overflows `usize` or exceeds [`MAX_BODY_BYTES`] is
/// rejected while parsing the header line, so the server never sizes a buffer
/// from an unvalidated length.
pub fn parse_request(buf: &[u8]) -> io::Result<Option<(Request, usize)>> {
    let Some((request_line, mut pos)) = next_line(buf, 0)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v.to_string()),
        _ => return Err(bad_input("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_input("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    let mut header_bytes = request_line.len();
    loop {
        let Some((line, next)) = next_line(buf, pos)? else {
            return Ok(None); // header section not terminated yet
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad_input("header section too large"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_input("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // Parse into u128 so a length that does not even fit usize is
            // still *compared against the cap* instead of wrapping, and
            // reject before any body buffer exists.
            let length = value
                .parse::<u128>()
                .map_err(|_| bad_input("invalid Content-Length"))?;
            if length > MAX_BODY_BYTES as u128 {
                return Err(bad_input("request body too large"));
            }
            content_length = length as usize;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let total = pos + content_length;
    if buf.len() < total {
        return Ok(None); // body not fully arrived yet
    }
    Ok(Some((
        Request {
            method,
            path,
            body: buf[pos..total].to_vec(),
            keep_alive,
        },
        total,
    )))
}

/// Extracts the `\n`-terminated line starting at `start`, stripping the
/// terminator and any trailing `\r`s. Returns the line text and the offset
/// just past the terminator, or `None` when the line is not complete yet.
/// A line exceeding [`MAX_HEADER_BYTES`] is rejected even before its
/// terminator arrives, so a newline-free flood cannot buffer unboundedly.
fn next_line(buf: &[u8], start: usize) -> io::Result<Option<(&str, usize)>> {
    match buf[start..].iter().position(|&b| b == b'\n') {
        None => {
            if buf.len() - start > MAX_HEADER_BYTES {
                return Err(bad_input("header line too long"));
            }
            Ok(None)
        }
        Some(rel) => {
            if rel > MAX_HEADER_BYTES {
                return Err(bad_input("header line too long"));
            }
            let mut slice = &buf[start..start + rel];
            while slice.last() == Some(&b'\r') {
                slice = &slice[..slice.len() - 1];
            }
            let text = std::str::from_utf8(slice)
                .map_err(|_| bad_input("header line is not valid UTF-8"))?;
            Ok(Some((text, start + rel + 1)))
        }
    }
}

/// Reads one request off a blocking connection (the offline engine's replay
/// tooling and the unit tests; the server itself uses [`parse_request`] on a
/// nonblocking buffer).
///
/// Returns `Ok(None)` on a clean EOF between requests — and also when the
/// peer disappears mid-request (truncated headers or a body shorter than its
/// `Content-Length`): a short read is the client going away, which is a
/// connection close, not a server error. Malformed bytes that can never
/// become a request are an `InvalidData` error.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk_len = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF: between requests (empty buffer) or mid-request (short
                // body / truncated headers) — either way a clean close.
                return Ok(None);
            }
            buf.extend_from_slice(chunk);
            chunk.len()
        };
        match parse_request(&buf) {
            Ok(Some((request, consumed))) => {
                // Only the parsed request's bytes belong to us; anything
                // after it stays in the reader for the next call.
                let previously_consumed = buf.len() - chunk_len;
                reader.consume(consumed - previously_consumed);
                return Ok(Some(request));
            }
            Ok(None) => reader.consume(chunk_len),
            Err(e) => {
                reader.consume(chunk_len);
                return Err(e);
            }
        }
    }
}

/// Reads one CRLF-terminated line, stripping the terminator. Returns the
/// number of raw bytes read (0 at EOF). Bounded: a line longer than
/// [`MAX_HEADER_BYTES`] is rejected *while* reading, so a newline-free stream
/// cannot buffer unboundedly the way `read_line` would.
fn read_header_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<usize> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut raw_read = 0usize;
    loop {
        let (done, used) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                (true, 0) // EOF (at line start when nothing was read yet)
            } else if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                bytes.extend_from_slice(&buf[..pos]);
                (true, pos + 1)
            } else {
                bytes.extend_from_slice(buf);
                (false, buf.len())
            }
        };
        reader.consume(used);
        raw_read += used;
        if bytes.len() > MAX_HEADER_BYTES {
            return Err(bad_input("header line too long"));
        }
        if done {
            break;
        }
    }
    while bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    let text =
        std::str::from_utf8(&bytes).map_err(|_| bad_input("header line is not valid UTF-8"))?;
    line.push_str(text);
    Ok(raw_read)
}

fn bad_input(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Serializes a response to raw HTTP/1.1 bytes (status line, headers, JSON
/// body) — the form the server's nonblocking write path needs, since it must
/// hand one finished buffer to a polling writer instead of formatting into a
/// blocking stream.
pub fn response_bytes(response: &Response, keep_alive: bool) -> Vec<u8> {
    let (content_type, body) = match &response.text {
        Some(text) => ("text/plain; version=0.0.4", text.clone().into_bytes()),
        None => (
            "application/json",
            serde_json::to_string(&response.body)
                .expect("Value serialization is total")
                .into_bytes(),
        ),
    };
    let mut out = Vec::with_capacity(body.len() + 128);
    write!(
        out,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .expect("writing to a Vec cannot fail");
    out.extend_from_slice(&body);
    out
}

/// Writes a response, honoring the request's keep-alive decision.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    writer.write_all(&response_bytes(response, keep_alive))?;
    writer.flush()
}

/// A blocking HTTP/1.1 client that keeps one connection open across requests.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:8080"`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the JSON response. `body: None` sends an
    /// empty body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> io::Result<(u16, Value)> {
        let payload = match body {
            Some(value) => serde_json::to_string(value)
                .expect("Value serialization is total")
                .into_bytes(),
            None => Vec::new(),
        };
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        )?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw (possibly malformed) body — used by the protocol tests.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<(u16, Value)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends one request and returns the response body as raw text (for
    /// non-JSON endpoints such as the Prometheus `GET /metrics`).
    pub fn request_text(&mut self, method: &str, path: &str) -> io::Result<(u16, String)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n",
        )?;
        self.writer.flush()?;
        self.read_response_text()
    }

    fn read_response(&mut self) -> io::Result<(u16, Value)> {
        let (status, text) = self.read_response_text()?;
        let value = if text.is_empty() {
            Value::Null
        } else {
            serde_json::from_str(&text)
                .map_err(|e| bad_input(&format!("invalid JSON response: {e}")))?
        };
        Ok((status, value))
    }

    fn read_response_text(&mut self) -> io::Result<(u16, String)> {
        let mut line = String::new();
        if read_header_line(&mut self.reader, &mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_input("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            read_header_line(&mut self.reader, &mut line)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_input("invalid Content-Length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| bad_input("non-UTF-8 response body"))?;
        Ok((status, text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Seek};

    #[test]
    fn parses_a_request_with_body() {
        let raw = b"POST /scenarios HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"k\":1}";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scenarios");
        assert_eq!(req.body, b"{\"k\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.json().unwrap().get("k"), Some(&Value::UInt(1)));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(!read_request(&mut reader).unwrap().unwrap().keep_alive);

        let raw = b"GET /healthz HTTP/1.0\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(!read_request(&mut reader).unwrap().unwrap().keep_alive);
    }

    #[test]
    fn eof_between_requests_is_clean() {
        let mut reader = BufReader::new(Cursor::new(Vec::<u8>::new()));
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
        ] {
            let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
            assert!(read_request(&mut reader).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_header_cap() {
        // A "request" that never sends a newline must be rejected after at
        // most MAX_HEADER_BYTES, not buffered until memory runs out.
        let raw = vec![b'A'; MAX_HEADER_BYTES * 4];
        let mut reader = BufReader::new(Cursor::new(raw));
        assert!(read_request(&mut reader).is_err());
        // The reader stopped within the cap (plus at most one buffer fill).
        assert!(reader.stream_position().unwrap() <= (MAX_HEADER_BYTES + 16 * 1024) as u64);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut reader = BufReader::new(Cursor::new(raw.into_bytes()));
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn overflowing_content_lengths_are_rejected_before_allocating() {
        // Values that exceed the cap, u64::MAX, and u128::MAX: all must be
        // rejected from the *header bytes alone* — parse_request sees no body
        // byte, so erroring here proves no body buffer was ever sized from
        // the hostile length.
        for huge in [
            (MAX_BODY_BYTES as u128 + 1).to_string(),
            u64::MAX.to_string(),
            format!("{}0", u128::MAX), // does not even fit u128
        ] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n");
            let err = parse_request(raw.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{huge}");
        }
    }

    #[test]
    fn short_body_eof_is_a_clean_close_not_an_error() {
        // The client promised 10 bytes, sent 3, then went away. That is a
        // connection close, not a 500.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(read_request(&mut reader).unwrap().is_none());

        // Same for headers cut off mid-section.
        let raw = b"POST /x HTTP/1.1\r\nContent-Len";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn parse_request_is_incremental() {
        let raw = b"POST /scenarios HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":1}";
        // Every strict prefix is incomplete, never an error.
        for cut in 0..raw.len() {
            assert!(
                parse_request(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        let (request, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"{\"k\":1}");
    }

    #[test]
    fn parse_request_leaves_pipelined_bytes_alone() {
        let mut raw = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
        let second = b"GET /scenarios/1/metrics HTTP/1.1\r\n\r\n";
        raw.extend_from_slice(second);
        let (first, consumed) = parse_request(&raw).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        assert_eq!(&raw[consumed..], second, "second request untouched");
        let (parsed_second, consumed_second) = parse_request(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(parsed_second.path, "/scenarios/1/metrics");
        assert_eq!(consumed + consumed_second, raw.len());
    }

    #[test]
    fn read_request_only_consumes_the_parsed_request() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /nope HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/nope");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut out = Vec::new();
        let response = Response::ok(Value::Object(vec![("ok".to_string(), Value::Bool(true))]));
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
