//! Minimal std-only HTTP/1.1, just enough for a JSON service on loopback:
//! request parsing with `Content-Length` bodies and keep-alive, response
//! writing, and a tiny persistent-connection client used by `repro_loadgen`
//! and the protocol tests.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use serde::Value;

/// Largest accepted request body; protects the server from hostile or buggy
/// `Content-Length` values.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted header section (request line + headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method ("GET", "POST", …).
    pub method: String,
    /// The path component of the request target (query strings are kept
    /// verbatim; the service does not use them).
    pub path: String,
    /// Raw request body.
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, serde_json::Error> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| serde_json::Error::Syntax("body is not valid UTF-8".to_string()))?;
        serde_json::from_str(text)
    }
}

/// A response: status code plus a JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: Value,
}

impl Response {
    /// A 200 response.
    pub fn ok(body: Value) -> Self {
        Self { status: 200, body }
    }

    /// An error response with the conventional `{"error": message}` body.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            body: Value::Object(vec![("error".to_string(), Value::String(message.into()))]),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads one request off the connection. Returns `Ok(None)` on a clean EOF
/// between requests (the client closed a keep-alive connection) and an
/// `InvalidData` error on malformed input.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if read_header_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v.to_string()),
        _ => return Err(bad_input("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad_input("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    let mut header_bytes = line.len();
    loop {
        line.clear();
        read_header_line(reader, &mut line)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad_input("header section too large"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_input("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| bad_input("invalid Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(bad_input("request body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Reads one CRLF-terminated line, stripping the terminator. Returns the
/// number of raw bytes read (0 at EOF). Bounded: a line longer than
/// [`MAX_HEADER_BYTES`] is rejected *while* reading, so a newline-free stream
/// cannot buffer unboundedly the way `read_line` would.
fn read_header_line<R: BufRead>(reader: &mut R, line: &mut String) -> io::Result<usize> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut raw_read = 0usize;
    loop {
        let (done, used) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                (true, 0) // EOF (at line start when nothing was read yet)
            } else if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                bytes.extend_from_slice(&buf[..pos]);
                (true, pos + 1)
            } else {
                bytes.extend_from_slice(buf);
                (false, buf.len())
            }
        };
        reader.consume(used);
        raw_read += used;
        if bytes.len() > MAX_HEADER_BYTES {
            return Err(bad_input("header line too long"));
        }
        if done {
            break;
        }
    }
    while bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    let text =
        std::str::from_utf8(&bytes).map_err(|_| bad_input("header line is not valid UTF-8"))?;
    line.push_str(text);
    Ok(raw_read)
}

fn bad_input(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Writes a response, honoring the request's keep-alive decision.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let body = serde_json::to_string(&response.body)
        .expect("Value serialization is total")
        .into_bytes();
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(&body)?;
    writer.flush()
}

/// A blocking HTTP/1.1 client that keeps one connection open across requests.
#[derive(Debug)]
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr` (e.g. `"127.0.0.1:8080"`).
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the JSON response. `body: None` sends an
    /// empty body.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> io::Result<(u16, Value)> {
        let payload = match body {
            Some(value) => serde_json::to_string(value)
                .expect("Value serialization is total")
                .into_bytes(),
            None => Vec::new(),
        };
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            payload.len()
        )?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends a raw (possibly malformed) body — used by the protocol tests.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<(u16, Value)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, Value)> {
        let mut line = String::new();
        if read_header_line(&mut self.reader, &mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_input("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            read_header_line(&mut self.reader, &mut line)?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad_input("invalid Content-Length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body).map_err(|_| bad_input("non-UTF-8 response body"))?;
        let value = if text.is_empty() {
            Value::Null
        } else {
            serde_json::from_str(&text)
                .map_err(|e| bad_input(&format!("invalid JSON response: {e}")))?
        };
        Ok((status, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Seek};

    #[test]
    fn parses_a_request_with_body() {
        let raw = b"POST /scenarios HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"k\":1}";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scenarios");
        assert_eq!(req.body, b"{\"k\":1}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.json().unwrap().get("k"), Some(&Value::UInt(1)));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(!read_request(&mut reader).unwrap().unwrap().keep_alive);

        let raw = b"GET /healthz HTTP/1.0\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        assert!(!read_request(&mut reader).unwrap().unwrap().keep_alive);
    }

    #[test]
    fn eof_between_requests_is_clean() {
        let mut reader = BufReader::new(Cursor::new(Vec::<u8>::new()));
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
        ] {
            let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
            assert!(read_request(&mut reader).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_header_cap() {
        // A "request" that never sends a newline must be rejected after at
        // most MAX_HEADER_BYTES, not buffered until memory runs out.
        let raw = vec![b'A'; MAX_HEADER_BYTES * 4];
        let mut reader = BufReader::new(Cursor::new(raw));
        assert!(read_request(&mut reader).is_err());
        // The reader stopped within the cap (plus at most one buffer fill).
        assert!(reader.stream_position().unwrap() <= (MAX_HEADER_BYTES + 16 * 1024) as u64);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut reader = BufReader::new(Cursor::new(raw.into_bytes()));
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut out = Vec::new();
        let response = Response::ok(Value::Object(vec![("ok".to_string(), Value::Bool(true))]));
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
