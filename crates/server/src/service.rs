//! The allocation service behind the HTTP layer: a registry of live sessions
//! plus pure request → response routing (no sockets here, so the whole
//! protocol is testable without TCP).
//!
//! | Method | Path                       | Effect                                   |
//! |--------|----------------------------|------------------------------------------|
//! | GET    | `/healthz`                 | liveness probe + session count           |
//! | POST   | `/scenarios`               | register a scenario, open a session      |
//! | POST   | `/scenarios/{id}/batch`    | lease the next batch of post tasks       |
//! | POST   | `/scenarios/{id}/report`   | report completed tasks                   |
//! | GET    | `/scenarios/{id}/metrics`  | incremental run metrics                  |
//! | POST   | `/shutdown`                | finish in-flight requests, then exit     |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

use delicious_sim::generator::generate_with;
use delicious_sim::io::load_corpus;
use tagging_runtime::{lock_unpoisoned, Runtime};
use tagging_sim::registry::{SessionRegistry, SharedSession};
use tagging_sim::scenario::Scenario;
use tagging_sim::session::{LiveSession, SessionError};

use crate::http::{Request, Response};
use crate::protocol::{
    batch_to_value, generator_config, metrics_to_value, parse_batch, parse_register, parse_report,
    CorpusSource,
};

/// The outcome of handling one request.
#[derive(Debug)]
pub struct Handled {
    /// The response to send.
    pub response: Response,
    /// True when the request asked the server to shut down.
    pub shutdown: bool,
}

impl Handled {
    fn respond(response: Response) -> Self {
        Self {
            response,
            shutdown: false,
        }
    }
}

/// The session registry and router.
///
/// Sessions live in a sharded [`SessionRegistry`]: requests on different
/// sessions lock different shards (and usually different sessions), so they
/// proceed concurrently; a panicking handler poisons at most its own session
/// mutex, which the poison-recovering locks heal on the next request instead
/// of bricking the registry.
#[derive(Debug)]
pub struct TaggingService {
    sessions: SessionRegistry,
    next_id: AtomicU64,
    runtime: Runtime,
}

impl Default for TaggingService {
    fn default() -> Self {
        Self::new(Runtime::from_env())
    }
}

impl TaggingService {
    /// Creates an empty registry with the default shard count; `runtime`
    /// drives corpus generation and scenario preparation for registrations.
    pub fn new(runtime: Runtime) -> Self {
        Self::with_shards(runtime, tagging_sim::registry::DEFAULT_SHARDS)
    }

    /// Creates an empty registry striped over `shards` locks (rounded up to a
    /// power of two; 1 reproduces the single-lock design, which the golden
    /// equivalence tests use as the baseline).
    pub fn with_shards(runtime: Runtime, shards: usize) -> Self {
        Self {
            sessions: SessionRegistry::new(shards),
            next_id: AtomicU64::new(1),
            runtime,
        }
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The number of registry shards.
    pub fn shard_count(&self) -> usize {
        self.sessions.shard_count()
    }

    /// The shared handle of a registered session (tests and diagnostics; the
    /// request path goes through [`TaggingService::handle`]).
    pub fn session(&self, id: u64) -> Option<SharedSession> {
        self.sessions.get(id)
    }

    /// Routes one request. Never panics on malformed input: JSON and protocol
    /// errors become 4xx responses.
    pub fn handle(&self, request: &Request) -> Handled {
        let segments: Vec<&str> = request
            .path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Handled::respond(Response::ok(Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                (
                    "sessions".to_string(),
                    Value::UInt(self.session_count() as u64),
                ),
            ]))),
            ("POST", ["shutdown"]) => Handled {
                response: Response::ok(Value::Object(vec![("ok".to_string(), Value::Bool(true))])),
                shutdown: true,
            },
            ("POST", ["scenarios"]) => Handled::respond(self.register(request)),
            ("POST", ["scenarios", id, "batch"]) => {
                Handled::respond(self.with_session(id, |session| {
                    let k =
                        parse_batch(&json_body(request)?).map_err(|e| Response::error(400, e.0))?;
                    let tasks = session.next_batch(k);
                    Ok(Response::ok(batch_to_value(&tasks, session)))
                }))
            }
            ("POST", ["scenarios", id, "report"]) => {
                Handled::respond(self.with_session(id, |session| {
                    let reports = parse_report(&json_body(request)?)
                        .map_err(|e| Response::error(400, e.0))?;
                    match session.report(&reports) {
                        Ok(outcome) => Ok(Response::ok(Value::Object(vec![
                            ("accepted".to_string(), Value::UInt(outcome.accepted as u64)),
                            (
                                "delivered".to_string(),
                                Value::UInt(outcome.delivered as u64),
                            ),
                            (
                                "undelivered".to_string(),
                                Value::UInt(outcome.undelivered as u64),
                            ),
                        ]))),
                        Err(
                            e @ (SessionError::UnknownTask(_) | SessionError::DuplicateTask(_)),
                        ) => Err(Response::error(409, e.to_string())),
                        Err(e) => Err(Response::error(400, e.to_string())),
                    }
                }))
            }
            ("GET", ["scenarios", id, "metrics"]) => {
                Handled::respond(self.with_session(id, |session| {
                    let pending = session.pending_tasks();
                    Ok(Response::ok(metrics_to_value(&session.metrics(), pending)))
                }))
            }
            // Right path, wrong method.
            (_, ["healthz"] | ["shutdown"] | ["scenarios"])
            | (_, ["scenarios", _, "batch" | "report" | "metrics"]) => {
                Handled::respond(Response::error(405, "method not allowed"))
            }
            _ => Handled::respond(Response::error(404, "no such route")),
        }
    }

    /// Registers a scenario and opens its live session.
    fn register(&self, request: &Request) -> Response {
        let body = match json_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let register = match parse_register(&body) {
            Ok(register) => register,
            Err(e) => return Response::error(400, e.0),
        };
        let corpus = match &register.source {
            CorpusSource::Generate { resources, seed } => {
                generate_with(&generator_config(*resources, *seed), &self.runtime)
            }
            CorpusSource::Load(path) => match load_corpus(path) {
                Ok(corpus) => corpus,
                Err(e) => return Response::error(400, format!("cannot load corpus: {e}")),
            },
        };
        let dictionary = corpus.corpus.tags.clone();
        let scenario =
            Scenario::from_corpus_with(&corpus, &register.scenario_params, &self.runtime);
        let session = LiveSession::new(scenario, register.strategy, &register.config)
            .with_dictionary(dictionary);

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut info = vec![
            ("scenario_id".to_string(), Value::UInt(id)),
            (
                "strategy".to_string(),
                Value::String(session.strategy_name().to_string()),
            ),
            (
                "resources".to_string(),
                Value::UInt(session.scenario().len() as u64),
            ),
            ("budget".to_string(), Value::UInt(session.budget() as u64)),
        ];
        info.push((
            "initial_quality".to_string(),
            Value::Float(session.scenario().initial_quality()),
        ));
        self.sessions.insert(id, Arc::new(Mutex::new(session)));
        Response::ok(Value::Object(info))
    }

    /// Looks up a session by path segment and runs `f` on it under its lock.
    ///
    /// Lock scope: [`SessionRegistry::get`] clones the `Arc` out under the
    /// shard guard and drops the guard *before* returning, so the (possibly
    /// long) per-session work below never holds a registry lock — other
    /// sessions stay servable while `f` runs. Both locks recover from poison:
    /// a handler that panicked inside an earlier `f` does not take the
    /// session (or its shard) down with it.
    fn with_session<F>(&self, id: &str, f: F) -> Response
    where
        F: FnOnce(&mut LiveSession<'static>) -> Result<Response, Response>,
    {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(404, format!("scenario id `{id}` is not a number"));
        };
        let Some(session) = self.sessions.get(id) else {
            return Response::error(404, format!("no scenario {id}"));
        };
        let mut session = lock_unpoisoned(&session);
        match f(&mut session) {
            Ok(response) | Err(response) => response,
        }
    }
}

/// Parses the request body as JSON, mapping failures to a 400 response.
fn json_body(request: &Request) -> Result<Value, Response> {
    request
        .json()
        .map_err(|e| Response::error(400, format!("invalid JSON body: {e}")))
}
