//! The allocation service behind the HTTP layer: a registry of live sessions
//! plus pure request → response routing (no sockets here, so the whole
//! protocol is testable without TCP).
//!
//! | Method | Path                       | Effect                                   |
//! |--------|----------------------------|------------------------------------------|
//! | GET    | `/healthz`                 | liveness, session count, uptime, build   |
//! | GET    | `/metrics`                 | telemetry in Prometheus text format      |
//! | GET    | `/stats`                   | telemetry as a JSON snapshot             |
//! | POST   | `/scenarios`               | register a scenario, open a session      |
//! | POST   | `/scenarios/{id}/batch`    | lease the next batch of post tasks       |
//! | POST   | `/scenarios/{id}/report`   | report completed tasks                   |
//! | GET    | `/scenarios/{id}/metrics`  | incremental run metrics                  |
//! | GET    | `/scenarios/{id}/tasks`    | ids of leased-but-unreported tasks       |
//! | POST   | `/shutdown`                | finish in-flight requests, then exit     |
//!
//! ## Durability
//!
//! With a [`PersistStore`] attached, the service follows *append-before-
//! apply*: the WAL record of a state transition is written (and flushed to
//! the OS) before the transition is applied in memory and acknowledged. A
//! kill at any point therefore leaves the WAL a superset of what clients
//! were told — recovery can only restore *more* leases than clients saw
//! acknowledged, never fewer, and the extra ("ghost") leases surface as
//! pending tasks, queryable via `GET /scenarios/{id}/tasks`.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Value;

use delicious_sim::generator::generate_with;
use delicious_sim::io::load_corpus;
use tagging_persist::{CorpusOrigin, PersistStore, RecoveredState, Registration, WalEvent};
use tagging_runtime::{lock_unpoisoned, Runtime};
use tagging_sim::registry::{SessionRegistry, SharedSession};
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::session::{LiveSession, SessionError, SessionEvent};

use crate::http::{Request, Response};
use crate::protocol::{
    batch_to_value, generator_config, metrics_to_value, parse_batch, parse_register, parse_report,
    CorpusSource, RegisterRequest,
};
use crate::telemetry::{snapshot_to_value, Route, ServerMetrics};
use tagging_core::stability::StabilityParams;
use tagging_sim::engine::RunConfig;
use tagging_strategies::StrategyKind;

/// The outcome of handling one request.
#[derive(Debug)]
pub struct Handled {
    /// The response to send.
    pub response: Response,
    /// True when the request asked the server to shut down.
    pub shutdown: bool,
    /// The route the request counted as (drives the flight-recorder label).
    pub route: Route,
    /// The session the request addressed, when its path named one.
    pub session: Option<u64>,
}

impl Handled {
    fn respond(response: Response) -> Self {
        Self {
            response,
            shutdown: false,
            route: Route::BadRequest,
            session: None,
        }
    }
}

/// The session registry and router.
///
/// Sessions live in a sharded [`SessionRegistry`]: requests on different
/// sessions lock different shards (and usually different sessions), so they
/// proceed concurrently; a panicking handler poisons at most its own session
/// mutex, which the poison-recovering locks heal on the next request instead
/// of bricking the registry.
pub struct TaggingService {
    sessions: SessionRegistry,
    next_id: AtomicU64,
    runtime: Runtime,
    /// WAL + snapshot store; `None` runs the service memory-only.
    persist: Option<Arc<PersistStore>>,
    /// Pre-resolved telemetry handles (route counters, latency histograms).
    metrics: ServerMetrics,
    /// Construction time; `/healthz` and `/stats` report uptime from it.
    started: Instant,
    /// Where the durable store lives and how it flushes, for `/healthz`
    /// (`None` when memory-only or not reported by the binder).
    persist_info: Option<PersistInfo>,
}

/// Human-facing description of the attached store (path + flush policy).
#[derive(Debug, Clone)]
struct PersistInfo {
    data_dir: String,
    flush: String,
}

impl std::fmt::Debug for TaggingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaggingService")
            .field("sessions", &self.sessions)
            .field("durable", &self.persist.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for TaggingService {
    fn default() -> Self {
        Self::new(Runtime::from_env())
    }
}

impl TaggingService {
    /// Creates an empty registry with the default shard count; `runtime`
    /// drives corpus generation and scenario preparation for registrations.
    pub fn new(runtime: Runtime) -> Self {
        Self::with_shards(runtime, tagging_sim::registry::DEFAULT_SHARDS)
    }

    /// Creates an empty registry striped over `shards` locks (rounded up to a
    /// power of two; 1 reproduces the single-lock design, which the golden
    /// equivalence tests use as the baseline).
    pub fn with_shards(runtime: Runtime, shards: usize) -> Self {
        Self {
            sessions: SessionRegistry::new(shards),
            next_id: AtomicU64::new(1),
            runtime,
            persist: None,
            metrics: ServerMetrics::resolve(),
            started: Instant::now(),
            persist_info: None,
        }
    }

    /// Attaches a durable store and rebuilds every recovered session by
    /// replaying its journal onto a freshly constructed session.
    ///
    /// The store's shard count must equal the registry's (each session's WAL
    /// shard is addressed by [`SessionRegistry::shard_of`]). A session whose
    /// journal no longer replays — e.g. its `corpus_path` file changed on
    /// disk — is an error: silently dropping state a client paid budget for
    /// is worse than refusing to start.
    pub fn with_persist(
        runtime: Runtime,
        shards: usize,
        store: Arc<PersistStore>,
        recovered: &RecoveredState,
    ) -> io::Result<Self> {
        let service = Self {
            sessions: SessionRegistry::new(shards),
            next_id: AtomicU64::new(1),
            runtime,
            persist: None, // set after recovery: replays must not re-append
            metrics: ServerMetrics::resolve(),
            started: Instant::now(),
            persist_info: None,
        };
        if store.shard_count() != service.sessions.shard_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "store has {} shards but the registry has {}",
                    store.shard_count(),
                    service.sessions.shard_count()
                ),
            ));
        }
        let mut next_id = 1;
        for (id, state) in &recovered.sessions {
            let session = service
                .rebuild_session(&state.registration, &state.events)
                .map_err(|reason| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("cannot recover session {id}: {reason}"),
                    )
                })?;
            service.sessions.insert(*id, Arc::new(Mutex::new(session)));
            next_id = next_id.max(id + 1);
        }
        service.next_id.store(next_id, Ordering::Relaxed);
        Ok(Self {
            persist: Some(store),
            ..service
        })
    }

    /// Builds the live session a [`Registration`] describes and replays
    /// `events` onto it.
    fn rebuild_session(
        &self,
        registration: &Registration,
        events: &[SessionEvent],
    ) -> Result<LiveSession<'static>, String> {
        let strategy = StrategyKind::parse(&registration.strategy)
            .ok_or_else(|| format!("unknown strategy `{}`", registration.strategy))?;
        let source = match &registration.source {
            CorpusOrigin::Generate { resources, seed } => CorpusSource::Generate {
                resources: *resources as usize,
                seed: *seed,
            },
            CorpusOrigin::Path(path) => CorpusSource::Load(path.into()),
        };
        let register = RegisterRequest {
            strategy,
            config: RunConfig {
                budget: registration.budget as usize,
                omega: registration.omega as usize,
                seed: registration.seed,
            },
            source,
            scenario_params: ScenarioParams {
                stability: StabilityParams::new(
                    registration.stability_window as usize,
                    registration.stability_tau,
                ),
                under_tagged_threshold: registration.under_tagged_threshold as usize,
            },
        };
        let mut session = self.build_session(&register)?;
        session
            .replay_events(events)
            .map_err(|e| format!("journal replay failed: {e}"))?;
        Ok(session)
    }

    /// Builds the live session of a registration: source the corpus, freeze
    /// the scenario, construct the session. Errors are client-facing
    /// messages (the register route answers them as 400).
    fn build_session(&self, register: &RegisterRequest) -> Result<LiveSession<'static>, String> {
        let corpus = match &register.source {
            CorpusSource::Generate { resources, seed } => {
                generate_with(&generator_config(*resources, *seed), &self.runtime)
            }
            CorpusSource::Load(path) => {
                load_corpus(path).map_err(|e| format!("cannot load corpus: {e}"))?
            }
        };
        if corpus.corpus.resources.is_empty() {
            return Err("corpus has no resources".to_string());
        }
        let dictionary = corpus.corpus.tags.clone();
        let scenario =
            Scenario::from_corpus_with(&corpus, &register.scenario_params, &self.runtime);
        Ok(
            LiveSession::new(scenario, register.strategy, &register.config)
                .with_dictionary(dictionary),
        )
    }

    /// Number of registered sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The number of registry shards.
    pub fn shard_count(&self) -> usize {
        self.sessions.shard_count()
    }

    /// The shared handle of a registered session (tests and diagnostics; the
    /// request path goes through [`TaggingService::handle`]).
    pub fn session(&self, id: u64) -> Option<SharedSession> {
        self.sessions.get(id)
    }

    /// The telemetry handles this service records into (the server's event
    /// loop shares them for its connection gauges and malformed-request
    /// counts).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Record where the durable store lives and how it flushes, so
    /// `/healthz` can report them. Called by the server binder; separate
    /// from [`TaggingService::with_persist`] so that signature stays stable.
    pub fn describe_persistence(&mut self, data_dir: impl Into<String>, flush: impl Into<String>) {
        self.persist_info = Some(PersistInfo {
            data_dir: data_dir.into(),
            flush: flush.into(),
        });
    }

    /// Record non-default telemetry options (ring capacities, thresholds) on
    /// the still-unshared metrics. Called by the server binder before the
    /// service is wrapped in an `Arc`.
    pub fn configure_telemetry(&mut self, options: &crate::telemetry::TelemetryOptions) {
        self.metrics.configure(options);
    }

    /// Routes one request and records its telemetry (per-route counter,
    /// status class, handler latency). Never panics on malformed input: JSON
    /// and protocol errors become 4xx responses.
    pub fn handle(&self, request: &Request) -> Handled {
        let timer = self.metrics.request_us.start_timer();
        let (route, mut handled) = self.route(request);
        drop(timer);
        handled.route = route;
        handled.session = session_of(&request.path);
        self.metrics.record_response(route, handled.response.status);
        handled
    }

    /// The `GET /healthz` body: liveness, session count, uptime, build info
    /// and the durability configuration.
    fn health_value(&self) -> Value {
        let (data_dir, flush) = match &self.persist_info {
            Some(info) => (
                Value::String(info.data_dir.clone()),
                Value::String(info.flush.clone()),
            ),
            None => (Value::Null, Value::Null),
        };
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            (
                "sessions".to_string(),
                Value::UInt(self.session_count() as u64),
            ),
            (
                "uptime_seconds".to_string(),
                Value::UInt(self.started.elapsed().as_secs()),
            ),
            (
                "version".to_string(),
                Value::String(env!("CARGO_PKG_VERSION").to_string()),
            ),
            ("durable".to_string(), Value::Bool(self.durable())),
            ("data_dir".to_string(), data_dir),
            ("flush".to_string(), flush),
            ("maintenance".to_string(), self.maintenance_value()),
        ])
    }

    /// The WAL maintenance state as JSON: flush mode, compaction mode,
    /// backlog depth and per-shard generations. `Null` when memory-only.
    fn maintenance_value(&self) -> Value {
        let Some(store) = &self.persist else {
            return Value::Null;
        };
        let status = store.maintenance_status();
        Value::Object(vec![
            (
                "flush_mode".to_string(),
                Value::String(status.flush_mode.clone()),
            ),
            (
                "compaction".to_string(),
                Value::String(
                    if status.background {
                        "background"
                    } else {
                        "inline"
                    }
                    .to_string(),
                ),
            ),
            (
                "backlog_events".to_string(),
                Value::UInt(status.backlog_events),
            ),
            (
                "backlog_shards".to_string(),
                Value::UInt(status.backlog_shards as u64),
            ),
            ("compactions".to_string(), Value::UInt(status.compactions)),
            (
                "shard_generations".to_string(),
                Value::Array(
                    status
                        .shard_generations
                        .iter()
                        .map(|generation| Value::UInt(*generation))
                        .collect(),
                ),
            ),
        ])
    }

    /// The `GET /stats` body: the whole telemetry registry as JSON, plus
    /// uptime and (when durable) the WAL maintenance state.
    fn stats_value(&self) -> Value {
        let mut value = snapshot_to_value(&tagging_telemetry::global().snapshot());
        if let Value::Object(fields) = &mut value {
            fields.insert(
                1,
                (
                    "uptime_seconds".to_string(),
                    Value::UInt(self.started.elapsed().as_secs()),
                ),
            );
            if self.durable() {
                fields.insert(2, ("maintenance".to_string(), self.maintenance_value()));
            }
        }
        value
    }

    /// The `GET /debug/flight` / `GET /debug/slow` body: ring capacity,
    /// total records pushed, and the retained records oldest → newest
    /// (`?n=K` limits to the newest K).
    fn flight_value(&self, request: &Request, slow: bool) -> Value {
        let ring = if slow {
            &self.metrics.slow
        } else {
            &self.metrics.flight
        };
        let limit = query_param(&request.path, "n")
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or(ring.capacity());
        let records = ring.recent(limit);
        let mut fields = vec![
            ("capacity".to_string(), Value::UInt(ring.capacity() as u64)),
            ("recorded".to_string(), Value::UInt(ring.recorded())),
            ("returned".to_string(), Value::UInt(records.len() as u64)),
        ];
        if slow {
            fields.push((
                "threshold_us".to_string(),
                Value::UInt(self.metrics.slow_threshold_us),
            ));
        }
        fields.push((
            "records".to_string(),
            crate::telemetry::records_to_value(&records),
        ));
        Value::Object(fields)
    }

    /// The routing proper; returns which [`Route`] the request counted as so
    /// [`TaggingService::handle`] can attribute its metrics.
    fn route(&self, request: &Request) -> (Route, Handled) {
        let segments: Vec<&str> = request
            .path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => (
                Route::Healthz,
                Handled::respond(Response::ok(self.health_value())),
            ),
            ("GET", ["stats"]) => {
                let response = match query_param(&request.path, "window") {
                    None => Response::ok(self.stats_value()),
                    Some(window) => match crate::telemetry::parse_window_ms(&window) {
                        Some(ms) => {
                            Response::ok(crate::telemetry::windowed_stats_value(&self.metrics, ms))
                        }
                        None => Response::error(
                            400,
                            format!(
                                "window expects e.g. 10s, 500ms or a second count, got `{window}`"
                            ),
                        ),
                    },
                };
                (Route::Stats, Handled::respond(response))
            }
            ("GET", ["metrics"]) => (
                Route::Metrics,
                Handled::respond(Response::plain(
                    tagging_telemetry::global().snapshot().to_prometheus(),
                )),
            ),
            ("GET", ["debug", "flight"]) => (
                Route::DebugFlight,
                Handled::respond(Response::ok(self.flight_value(request, false))),
            ),
            ("GET", ["debug", "slow"]) => (
                Route::DebugSlow,
                Handled::respond(Response::ok(self.flight_value(request, true))),
            ),
            ("POST", ["shutdown"]) => (
                Route::Shutdown,
                Handled {
                    response: Response::ok(Value::Object(vec![(
                        "ok".to_string(),
                        Value::Bool(true),
                    )])),
                    shutdown: true,
                    route: Route::Shutdown,
                    session: None,
                },
            ),
            ("POST", ["scenarios"]) => (Route::Register, Handled::respond(self.register(request))),
            ("POST", ["scenarios", id, "batch"]) => (
                Route::Batch,
                Handled::respond(self.with_session(id, |id, session| {
                    let k =
                        parse_batch(&json_body(request)?).map_err(|e| Response::error(400, e.0))?;
                    // Append-before-apply: persist the lease at its *clamped*
                    // size (what the session will actually hand out) before
                    // leasing. On a persistence failure nothing is leased.
                    let k_eff = k.min(session.remaining_budget());
                    if k_eff > 0 {
                        self.persist_session_event(id, &SessionEvent::Lease { k: k_eff })?;
                    }
                    let tasks = session.next_batch(k_eff);
                    debug_assert_eq!(tasks.len(), k_eff);
                    Ok(Response::ok(batch_to_value(&tasks, session)))
                })),
            ),
            ("POST", ["scenarios", id, "report"]) => (
                Route::Report,
                Handled::respond(self.with_session(id, |id, session| {
                    let reports = parse_report(&json_body(request)?)
                        .map_err(|e| Response::error(400, e.0))?;
                    // Validate first so only appliable reports reach the WAL,
                    // then append-before-apply.
                    if let Err(e) = session.validate_reports(&reports) {
                        return Err(match e {
                            SessionError::UnknownTask(_) | SessionError::DuplicateTask(_) => {
                                Response::error(409, e.to_string())
                            }
                            e => Response::error(400, e.to_string()),
                        });
                    }
                    self.persist_session_event(
                        id,
                        &SessionEvent::Report {
                            reports: reports.clone(),
                        },
                    )?;
                    match session.report(&reports) {
                        Ok(outcome) => Ok(Response::ok(Value::Object(vec![
                            ("accepted".to_string(), Value::UInt(outcome.accepted as u64)),
                            (
                                "delivered".to_string(),
                                Value::UInt(outcome.delivered as u64),
                            ),
                            (
                                "undelivered".to_string(),
                                Value::UInt(outcome.undelivered as u64),
                            ),
                        ]))),
                        Err(
                            e @ (SessionError::UnknownTask(_) | SessionError::DuplicateTask(_)),
                        ) => Err(Response::error(409, e.to_string())),
                        Err(e) => Err(Response::error(400, e.to_string())),
                    }
                })),
            ),
            ("GET", ["scenarios", id, "metrics"]) => (
                Route::SessionMetrics,
                Handled::respond(self.with_session(id, |_, session| {
                    let pending = session.pending_tasks();
                    Ok(Response::ok(metrics_to_value(&session.metrics(), pending)))
                })),
            ),
            ("GET", ["scenarios", id, "tasks"]) => (
                Route::Tasks,
                Handled::respond(self.with_session(id, |_, session| {
                    Ok(Response::ok(Value::Object(vec![(
                        "pending".to_string(),
                        Value::Array(
                            session
                                .pending_task_ids()
                                .into_iter()
                                .map(Value::UInt)
                                .collect(),
                        ),
                    )])))
                })),
            ),
            // Right path, wrong method.
            (_, ["healthz"] | ["shutdown"] | ["scenarios"] | ["stats"] | ["metrics"])
            | (_, ["debug", "flight" | "slow"])
            | (_, ["scenarios", _, "batch" | "report" | "metrics" | "tasks"]) => (
                Route::BadRequest,
                Handled::respond(Response::error(405, "method not allowed")),
            ),
            _ => (
                Route::BadRequest,
                Handled::respond(Response::error(404, "no such route")),
            ),
        }
    }

    /// Registers a scenario and opens its live session. With persistence on,
    /// the registration record is durable *before* the id is acknowledged.
    fn register(&self, request: &Request) -> Response {
        let body = match json_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let register = match parse_register(&body) {
            Ok(register) => register,
            Err(e) => return Response::error(400, e.0),
        };
        let session = match self.build_session(&register) {
            Ok(session) => session,
            Err(reason) => return Response::error(400, reason),
        };

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.persist {
            let event = WalEvent::Register {
                session: id,
                registration: registration_of(&register),
            };
            if let Err(e) = store.append(self.sessions.shard_of(id), &event) {
                return Response::error(500, format!("cannot persist registration: {e}"));
            }
        }
        let mut info = vec![
            ("scenario_id".to_string(), Value::UInt(id)),
            (
                "strategy".to_string(),
                Value::String(session.strategy_name().to_string()),
            ),
            (
                "resources".to_string(),
                Value::UInt(session.scenario().len() as u64),
            ),
            ("budget".to_string(), Value::UInt(session.budget() as u64)),
        ];
        info.push((
            "initial_quality".to_string(),
            Value::Float(session.scenario().initial_quality()),
        ));
        self.sessions.insert(id, Arc::new(Mutex::new(session)));
        Response::ok(Value::Object(info))
    }

    /// Looks up a session by path segment and runs `f` on it under its lock.
    ///
    /// Lock scope: [`SessionRegistry::get`] clones the `Arc` out under the
    /// shard guard and drops the guard *before* returning, so the (possibly
    /// long) per-session work below never holds a registry lock — other
    /// sessions stay servable while `f` runs. Both locks recover from poison:
    /// a handler that panicked inside an earlier `f` does not take the
    /// session (or its shard) down with it.
    fn with_session<F>(&self, id: &str, f: F) -> Response
    where
        F: FnOnce(u64, &mut LiveSession<'static>) -> Result<Response, Response>,
    {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(404, format!("scenario id `{id}` is not a number"));
        };
        let Some(session) = self.sessions.get(id) else {
            return Response::error(404, format!("no scenario {id}"));
        };
        let mut session = lock_unpoisoned(&session);
        match f(id, &mut session) {
            Ok(response) | Err(response) => response,
        }
    }

    /// Appends one session transition to the WAL (no-op without a store).
    /// The caller holds the session's mutex, which orders the shard's WAL
    /// records exactly like the applied transitions.
    fn persist_session_event(&self, id: u64, event: &SessionEvent) -> Result<(), Response> {
        let Some(store) = &self.persist else {
            return Ok(());
        };
        let wal_event = WalEvent::Session {
            session: id,
            event: event.clone(),
        };
        store
            .append(self.sessions.shard_of(id), &wal_event)
            .map_err(|e| Response::error(500, format!("cannot persist event: {e}")))
    }

    /// True when a durable store is attached.
    pub fn durable(&self) -> bool {
        self.persist.is_some()
    }

    /// The attached durable store (`None` when memory-only). The server
    /// binder uses it to spawn the WAL maintenance tenants.
    pub fn persist_store(&self) -> Option<Arc<PersistStore>> {
        self.persist.clone()
    }

    /// Drains the compaction backlog (final compact, on this thread), then
    /// writes the clean-shutdown markers and syncs every WAL segment. Call
    /// once after the last request has been handled and the maintenance
    /// tenants have been joined.
    pub fn persist_shutdown(&self) -> io::Result<()> {
        match &self.persist {
            Some(store) => store.shutdown(),
            None => Ok(()),
        }
    }
}

/// The durable form of a registration (what recovery needs to rebuild the
/// session from scratch).
fn registration_of(register: &RegisterRequest) -> Registration {
    Registration {
        strategy: register.strategy.name().to_string(),
        budget: register.config.budget as u64,
        omega: register.config.omega as u64,
        seed: register.config.seed,
        source: match &register.source {
            CorpusSource::Generate { resources, seed } => CorpusOrigin::Generate {
                resources: *resources as u64,
                seed: *seed,
            },
            CorpusSource::Load(path) => CorpusOrigin::Path(path.display().to_string()),
        },
        stability_window: register.scenario_params.stability.omega as u64,
        stability_tau: register.scenario_params.stability.tau,
        under_tagged_threshold: register.scenario_params.under_tagged_threshold as u64,
    }
}

/// Parses the request body as JSON, mapping failures to a 400 response.
fn json_body(request: &Request) -> Result<Value, Response> {
    request
        .json()
        .map_err(|e| Response::error(400, format!("invalid JSON body: {e}")))
}

/// The session id a request path addresses (`/scenarios/{id}/...`), if any —
/// recorded per request by the flight recorder.
fn session_of(path: &str) -> Option<u64> {
    let mut segments = path
        .split('?')
        .next()
        .unwrap_or("")
        .split('/')
        .filter(|s| !s.is_empty());
    if segments.next() != Some("scenarios") {
        return None;
    }
    segments.next().and_then(|id| id.parse().ok())
}

/// The first value of query parameter `name` in a request path, if present.
fn query_param(path: &str, name: &str) -> Option<String> {
    let query = path.split_once('?')?.1;
    query.split('&').find_map(|pair| {
        let (key, value) = match pair.split_once('=') {
            Some((key, value)) => (key, value),
            None => (pair, ""),
        };
        (key == name).then(|| value.to_string())
    })
}
