//! Server-side metric handles and the `/stats` JSON projection.
//!
//! All handles are resolved once from the global
//! [`tagging_telemetry::Registry`] when the service is constructed, so the
//! request path records through pre-looked-up `Arc`s and never touches the
//! registry lock. Metric families exported here:
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `server_requests_total` | counter | `route` |
//! | `server_responses_total` | counter | `class` (`2xx`/`4xx`/`5xx`) |
//! | `server_request_us` | histogram | — (handler routing time) |
//! | `server_queue_wait_us` | histogram | — (dispatch → worker pickup) |
//! | `server_sweep_us` | histogram | — (event-loop sweep duration) |
//! | `server_connections_live` | gauge | — |
//! | `server_connections_idle` | gauge | — |
//! | `server_pool_pending` | gauge | — (queued + running pool jobs) |
//! | `server_loop_*` | counter/gauge | — (event-loop watchdog; see [`Watchdog`]) |
//!
//! Beyond the flat registry this module also owns the server's time-resolved
//! observability state, all hosted on [`ServerMetrics`] so the event loop,
//! the worker pool and the scrape endpoints share one set of `Arc`s:
//!
//! * [`WindowRing`] (behind a mutex; rotated by the background publisher
//!   task once per interval) — trailing 1s/10s/60s rates and quantiles,
//!   served by `GET /stats?window=10s`;
//! * two [`FlightRecorder`] rings — every completed request, and a separate
//!   ring retaining only requests over the slow-latency threshold — served
//!   by `GET /debug/flight` and `GET /debug/slow`;
//! * the event-loop [`Watchdog`] the sweep heartbeats.

use std::sync::{Arc, Mutex};

use serde::Value;
use tagging_runtime::lock_unpoisoned;
use tagging_telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, RegistrySnapshot, RequestRecord, Watchdog,
    WindowRing,
};

/// Every countable request destination, including the failure paths the
/// per-route counters must not miss: `Shutdown`, `BadRequest` (parsed HTTP
/// that matched no route or the wrong method) and `Malformed` (bytes that
/// never became a request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `POST /scenarios`.
    Register,
    /// `POST /scenarios/{id}/batch`.
    Batch,
    /// `POST /scenarios/{id}/report`.
    Report,
    /// `GET /scenarios/{id}/metrics`.
    SessionMetrics,
    /// `GET /scenarios/{id}/tasks`.
    Tasks,
    /// `POST /shutdown`.
    Shutdown,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/flight`.
    DebugFlight,
    /// `GET /debug/slow`.
    DebugSlow,
    /// Parsed request that matched no route or used the wrong method.
    BadRequest,
    /// Bytes that could never become an HTTP request (counted by the event
    /// loop, which answers 400 and drops the connection).
    Malformed,
}

impl Route {
    /// All routes, in label order.
    pub const ALL: [Route; 13] = [
        Route::Healthz,
        Route::Register,
        Route::Batch,
        Route::Report,
        Route::SessionMetrics,
        Route::Tasks,
        Route::Shutdown,
        Route::Stats,
        Route::Metrics,
        Route::DebugFlight,
        Route::DebugSlow,
        Route::BadRequest,
        Route::Malformed,
    ];

    /// The `route` label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Register => "register",
            Route::Batch => "batch",
            Route::Report => "report",
            Route::SessionMetrics => "session_metrics",
            Route::Tasks => "tasks",
            Route::Shutdown => "shutdown",
            Route::Stats => "stats",
            Route::Metrics => "metrics",
            Route::DebugFlight => "debug_flight",
            Route::DebugSlow => "debug_slow",
            Route::BadRequest => "bad_request",
            Route::Malformed => "malformed",
        }
    }
}

/// Configuration of the server's time-resolved observability: window
/// rotation cadence, ring capacities, the slow-request threshold and the
/// event-loop stall budget. All observation-only — none of these affect what
/// the service computes or acknowledges.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Window-rotation (and JSONL publisher) period in milliseconds.
    pub publish_interval_ms: u64,
    /// Delta slots the window ring retains (64 one-second slots cover every
    /// trailing window up to a minute).
    pub window_slots: usize,
    /// Capacity of the all-requests flight ring.
    pub flight_capacity: usize,
    /// Capacity of the slow-request ring.
    pub slow_capacity: usize,
    /// Handler latency at or above which a request also enters the slow
    /// ring, in microseconds.
    pub slow_threshold_us: u64,
    /// Event-loop heartbeat gap (or single-sweep duration) above which a
    /// stall is counted, in microseconds.
    pub stall_budget_us: u64,
    /// Test hook: make the very first readiness sweep sleep this long, so a
    /// stall can be provoked deterministically. 0 disables.
    pub inject_sweep_stall_us: u64,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        Self {
            publish_interval_ms: 1_000,
            window_slots: 64,
            flight_capacity: 256,
            slow_capacity: 512,
            slow_threshold_us: 10_000,
            stall_budget_us: 100_000,
            inject_sweep_stall_us: 0,
        }
    }
}

/// Pre-resolved handles for everything the server records.
pub struct ServerMetrics {
    requests: [Arc<Counter>; Route::ALL.len()],
    /// Indexed by `status / 100 - 1` (1xx..5xx).
    status_classes: [Arc<Counter>; 5],
    /// Handler routing time per request, in microseconds.
    pub request_us: Arc<Histogram>,
    /// Time between dispatch to the pool and worker pickup, in microseconds.
    pub queue_wait_us: Arc<Histogram>,
    /// Event-loop sweep duration, in microseconds.
    pub sweep_us: Arc<Histogram>,
    /// Open connections owned by the event thread.
    pub connections_live: Arc<Gauge>,
    /// Open connections with no request in flight.
    pub connections_idle: Arc<Gauge>,
    /// Worker-pool jobs queued or running.
    pub pool_pending: Arc<Gauge>,
    /// Ring of per-interval delta snapshots behind the windowed `/stats`
    /// view; rotated by the background publisher task.
    pub windows: Arc<Mutex<WindowRing>>,
    /// Every completed request, most recent `flight_capacity` retained.
    pub flight: Arc<FlightRecorder>,
    /// Requests whose handler latency met the slow threshold.
    pub slow: Arc<FlightRecorder>,
    /// Handler latency at or above which a request enters the slow ring.
    pub slow_threshold_us: u64,
    /// Heartbeat gap / sweep duration above which a stall is counted.
    pub stall_budget_us: u64,
    /// Event-loop watchdog (families under `server_loop_*`).
    pub loop_watchdog: Arc<Watchdog>,
}

impl ServerMetrics {
    /// Resolve every handle from the global registry, with default
    /// [`TelemetryOptions`]. Use [`ServerMetrics::configure`] to apply
    /// non-default ring sizes before the service is shared.
    pub fn resolve() -> Self {
        let defaults = TelemetryOptions::default();
        let registry = tagging_telemetry::global();
        let requests = Route::ALL.map(|route| {
            registry.counter(
                "server_requests_total",
                &[("route", route.label())],
                "Requests received, by route (including shutdown, bad_request and malformed)",
            )
        });
        let status_classes = [1u16, 2, 3, 4, 5].map(|class| {
            registry.counter(
                "server_responses_total",
                &[("class", &format!("{class}xx"))],
                "Responses sent, by status class",
            )
        });
        Self {
            requests,
            status_classes,
            request_us: registry.histogram(
                "server_request_us",
                &[],
                "Handler routing latency in microseconds (excludes queue wait and I/O)",
            ),
            queue_wait_us: registry.histogram(
                "server_queue_wait_us",
                &[],
                "Dispatch-to-worker-pickup latency in microseconds",
            ),
            sweep_us: registry.histogram(
                "server_sweep_us",
                &[],
                "Event-loop sweep duration in microseconds",
            ),
            connections_live: registry.gauge(
                "server_connections_live",
                &[],
                "Open connections owned by the event thread",
            ),
            connections_idle: registry.gauge(
                "server_connections_idle",
                &[],
                "Open connections with no request in flight",
            ),
            pool_pending: registry.gauge(
                "server_pool_pending",
                &[],
                "Worker-pool jobs queued or running",
            ),
            windows: Arc::new(Mutex::new(WindowRing::new(
                defaults.window_slots,
                defaults.publish_interval_ms,
            ))),
            flight: Arc::new(FlightRecorder::new(defaults.flight_capacity)),
            slow: Arc::new(FlightRecorder::new(defaults.slow_capacity)),
            slow_threshold_us: defaults.slow_threshold_us,
            stall_budget_us: defaults.stall_budget_us,
            loop_watchdog: Arc::new(Watchdog::new("server_loop")),
        }
    }

    /// Apply non-default [`TelemetryOptions`]: replaces the (still unshared)
    /// rings and thresholds. Called by the server binder before the service
    /// is wrapped in an `Arc`, mirroring
    /// [`crate::service::TaggingService::describe_persistence`].
    pub fn configure(&mut self, options: &TelemetryOptions) {
        self.windows = Arc::new(Mutex::new(WindowRing::new(
            options.window_slots,
            options.publish_interval_ms,
        )));
        self.flight = Arc::new(FlightRecorder::new(options.flight_capacity));
        self.slow = Arc::new(FlightRecorder::new(options.slow_capacity));
        self.slow_threshold_us = options.slow_threshold_us;
        self.stall_budget_us = options.stall_budget_us;
    }

    /// Record one completed request into the flight ring (and the slow ring
    /// when its handler latency met the threshold). Compiles to nothing with
    /// `telemetry-noop`.
    pub fn record_flight(&self, record: RequestRecord) {
        if record.latency_us >= self.slow_threshold_us {
            self.slow.record(record.clone());
        }
        self.flight.record(record);
    }

    /// Count one request on `route` and its response's status class.
    pub fn record_response(&self, route: Route, status: u16) {
        self.requests[Route::ALL
            .iter()
            .position(|&r| r == route)
            .expect("route is in ALL")]
        .inc();
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.status_classes[class].inc();
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::resolve()
    }
}

/// Project a registry snapshot into the `GET /stats` JSON body: counters and
/// gauges as `{"name{labels}": value}` maps, histograms as per-family
/// objects carrying count/sum/max/mean and the p50/p90/p99 upper bounds.
pub fn snapshot_to_value(snapshot: &RegistrySnapshot) -> Value {
    fn key(name: &str, labels: &[(String, String)]) -> String {
        if labels.is_empty() {
            name.to_string()
        } else {
            let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{name}{{{}}}", body.join(","))
        }
    }
    let counters = snapshot
        .counters
        .iter()
        .map(|c| (key(&c.name, &c.labels), Value::UInt(c.value)))
        .collect();
    let gauges = snapshot
        .gauges
        .iter()
        .map(|g| (key(&g.name, &g.labels), Value::Int(g.value)))
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|h| {
            let s = &h.snapshot;
            (
                key(&h.name, &h.labels),
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(s.count())),
                    ("sum".to_string(), Value::UInt(s.sum)),
                    ("max".to_string(), Value::UInt(s.max)),
                    ("mean".to_string(), Value::Float(s.mean())),
                    ("p50".to_string(), Value::UInt(s.p50())),
                    ("p90".to_string(), Value::UInt(s.p90())),
                    ("p99".to_string(), Value::UInt(s.p99())),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        (
            "telemetry".to_string(),
            Value::String(
                if tagging_telemetry::enabled() {
                    "on"
                } else {
                    "noop"
                }
                .to_string(),
            ),
        ),
        ("counters".to_string(), Value::Object(counters)),
        ("gauges".to_string(), Value::Object(gauges)),
        ("histograms".to_string(), Value::Object(histograms)),
    ])
}

/// The `GET /stats?window=...` body: the merged trailing window projected
/// like the cumulative view, plus a `window` object describing the coverage
/// and a `rates` section (counter increments per second over the window).
pub fn windowed_stats_value(metrics: &ServerMetrics, requested_ms: u64) -> Value {
    let (snapshot, merged, interval_ms, rotations) = {
        let ring = lock_unpoisoned(&metrics.windows);
        let (snapshot, merged) = ring.window_ms(requested_ms);
        (snapshot, merged, ring.interval_ms(), ring.rotations())
    };
    let covered_ms = merged as u64 * interval_ms;
    let rates = snapshot
        .counters
        .iter()
        .filter(|c| c.value > 0 && covered_ms > 0)
        .map(|c| {
            let key = if c.labels.is_empty() {
                c.name.clone()
            } else {
                let body: Vec<String> = c
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect();
                format!("{}{{{}}}", c.name, body.join(","))
            };
            (
                format!("{key}_per_s"),
                Value::Float(c.value as f64 * 1000.0 / covered_ms as f64),
            )
        })
        .collect();
    let mut value = snapshot_to_value(&snapshot);
    if let Value::Object(fields) = &mut value {
        fields.insert(
            1,
            (
                "window".to_string(),
                Value::Object(vec![
                    ("requested_ms".to_string(), Value::UInt(requested_ms)),
                    ("slots_merged".to_string(), Value::UInt(merged as u64)),
                    ("covered_ms".to_string(), Value::UInt(covered_ms)),
                    ("interval_ms".to_string(), Value::UInt(interval_ms)),
                    ("rotations".to_string(), Value::UInt(rotations)),
                ]),
            ),
        );
        fields.push(("rates".to_string(), Value::Object(rates)));
    }
    value
}

/// Project flight-recorder records into the `/debug/*` JSON body shape.
pub fn records_to_value(records: &[RequestRecord]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("id".to_string(), Value::UInt(r.id)),
                    ("route".to_string(), Value::String(r.route.to_string())),
                    (
                        "session".to_string(),
                        match r.session {
                            Some(id) => Value::UInt(id),
                            None => Value::Null,
                        },
                    ),
                    ("status".to_string(), Value::UInt(u64::from(r.status))),
                    ("latency_us".to_string(), Value::UInt(r.latency_us)),
                    ("queue_us".to_string(), Value::UInt(r.queue_us)),
                    ("ts_us".to_string(), Value::UInt(r.ts_us)),
                ])
            })
            .collect(),
    )
}

/// Parse a `window=` query value: `10s`, `500ms` or a bare second count.
/// Returns the window span in milliseconds.
pub fn parse_window_ms(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(ms) = text.strip_suffix("ms") {
        return ms.parse::<u64>().ok().filter(|&n| n > 0);
    }
    let seconds = match text.strip_suffix('s') {
        Some(s) => s,
        None => text,
    };
    seconds
        .parse::<u64>()
        .ok()
        .filter(|&n| n > 0)
        .and_then(|n| n.checked_mul(1_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_route_has_a_distinct_label() {
        let mut labels: Vec<&str> = Route::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Route::ALL.len());
    }

    #[test]
    fn record_response_counts_route_and_class() {
        let metrics = ServerMetrics::resolve();
        let before_route = metrics.requests[Route::ALL
            .iter()
            .position(|&r| r == Route::Malformed)
            .unwrap()]
        .get();
        let before_class = metrics.status_classes[3].get();
        metrics.record_response(Route::Malformed, 400);
        if tagging_telemetry::enabled() {
            // Delta assertions: the global registry is shared by every test
            // in this process.
            assert_eq!(
                metrics.requests[Route::ALL
                    .iter()
                    .position(|&r| r == Route::Malformed)
                    .unwrap()]
                .get(),
                before_route + 1
            );
            assert_eq!(metrics.status_classes[3].get(), before_class + 1);
        }
    }

    #[test]
    fn stats_value_has_the_top_level_shape() {
        let metrics = ServerMetrics::resolve();
        metrics.record_response(Route::Healthz, 200);
        let value = snapshot_to_value(&tagging_telemetry::global().snapshot());
        let expected = if tagging_telemetry::enabled() {
            "on"
        } else {
            "noop"
        };
        assert_eq!(
            value.get("telemetry"),
            Some(&Value::String(expected.to_string()))
        );
        for section in ["counters", "gauges", "histograms"] {
            assert!(
                matches!(value.get(section), Some(Value::Object(_))),
                "missing {section}"
            );
        }
    }
}
