//! Server-side metric handles and the `/stats` JSON projection.
//!
//! All handles are resolved once from the global
//! [`tagging_telemetry::Registry`] when the service is constructed, so the
//! request path records through pre-looked-up `Arc`s and never touches the
//! registry lock. Metric families exported here:
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `server_requests_total` | counter | `route` |
//! | `server_responses_total` | counter | `class` (`2xx`/`4xx`/`5xx`) |
//! | `server_request_us` | histogram | — (handler routing time) |
//! | `server_queue_wait_us` | histogram | — (dispatch → worker pickup) |
//! | `server_sweep_us` | histogram | — (event-loop sweep duration) |
//! | `server_connections_live` | gauge | — |
//! | `server_connections_idle` | gauge | — |
//! | `server_pool_pending` | gauge | — (queued + running pool jobs) |

use std::sync::Arc;

use serde::Value;
use tagging_telemetry::{Counter, Gauge, Histogram, RegistrySnapshot};

/// Every countable request destination, including the failure paths the
/// per-route counters must not miss: `Shutdown`, `BadRequest` (parsed HTTP
/// that matched no route or the wrong method) and `Malformed` (bytes that
/// never became a request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `POST /scenarios`.
    Register,
    /// `POST /scenarios/{id}/batch`.
    Batch,
    /// `POST /scenarios/{id}/report`.
    Report,
    /// `GET /scenarios/{id}/metrics`.
    SessionMetrics,
    /// `GET /scenarios/{id}/tasks`.
    Tasks,
    /// `POST /shutdown`.
    Shutdown,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// Parsed request that matched no route or used the wrong method.
    BadRequest,
    /// Bytes that could never become an HTTP request (counted by the event
    /// loop, which answers 400 and drops the connection).
    Malformed,
}

impl Route {
    /// All routes, in label order.
    pub const ALL: [Route; 11] = [
        Route::Healthz,
        Route::Register,
        Route::Batch,
        Route::Report,
        Route::SessionMetrics,
        Route::Tasks,
        Route::Shutdown,
        Route::Stats,
        Route::Metrics,
        Route::BadRequest,
        Route::Malformed,
    ];

    /// The `route` label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Register => "register",
            Route::Batch => "batch",
            Route::Report => "report",
            Route::SessionMetrics => "session_metrics",
            Route::Tasks => "tasks",
            Route::Shutdown => "shutdown",
            Route::Stats => "stats",
            Route::Metrics => "metrics",
            Route::BadRequest => "bad_request",
            Route::Malformed => "malformed",
        }
    }
}

/// Pre-resolved handles for everything the server records.
pub struct ServerMetrics {
    requests: [Arc<Counter>; Route::ALL.len()],
    /// Indexed by `status / 100 - 1` (1xx..5xx).
    status_classes: [Arc<Counter>; 5],
    /// Handler routing time per request, in microseconds.
    pub request_us: Arc<Histogram>,
    /// Time between dispatch to the pool and worker pickup, in microseconds.
    pub queue_wait_us: Arc<Histogram>,
    /// Event-loop sweep duration, in microseconds.
    pub sweep_us: Arc<Histogram>,
    /// Open connections owned by the event thread.
    pub connections_live: Arc<Gauge>,
    /// Open connections with no request in flight.
    pub connections_idle: Arc<Gauge>,
    /// Worker-pool jobs queued or running.
    pub pool_pending: Arc<Gauge>,
}

impl ServerMetrics {
    /// Resolve every handle from the global registry.
    pub fn resolve() -> Self {
        let registry = tagging_telemetry::global();
        let requests = Route::ALL.map(|route| {
            registry.counter(
                "server_requests_total",
                &[("route", route.label())],
                "Requests received, by route (including shutdown, bad_request and malformed)",
            )
        });
        let status_classes = [1u16, 2, 3, 4, 5].map(|class| {
            registry.counter(
                "server_responses_total",
                &[("class", &format!("{class}xx"))],
                "Responses sent, by status class",
            )
        });
        Self {
            requests,
            status_classes,
            request_us: registry.histogram(
                "server_request_us",
                &[],
                "Handler routing latency in microseconds (excludes queue wait and I/O)",
            ),
            queue_wait_us: registry.histogram(
                "server_queue_wait_us",
                &[],
                "Dispatch-to-worker-pickup latency in microseconds",
            ),
            sweep_us: registry.histogram(
                "server_sweep_us",
                &[],
                "Event-loop sweep duration in microseconds",
            ),
            connections_live: registry.gauge(
                "server_connections_live",
                &[],
                "Open connections owned by the event thread",
            ),
            connections_idle: registry.gauge(
                "server_connections_idle",
                &[],
                "Open connections with no request in flight",
            ),
            pool_pending: registry.gauge(
                "server_pool_pending",
                &[],
                "Worker-pool jobs queued or running",
            ),
        }
    }

    /// Count one request on `route` and its response's status class.
    pub fn record_response(&self, route: Route, status: u16) {
        self.requests[Route::ALL
            .iter()
            .position(|&r| r == route)
            .expect("route is in ALL")]
        .inc();
        let class = (status / 100).clamp(1, 5) as usize - 1;
        self.status_classes[class].inc();
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::resolve()
    }
}

/// Project a registry snapshot into the `GET /stats` JSON body: counters and
/// gauges as `{"name{labels}": value}` maps, histograms as per-family
/// objects carrying count/sum/max/mean and the p50/p90/p99 upper bounds.
pub fn snapshot_to_value(snapshot: &RegistrySnapshot) -> Value {
    fn key(name: &str, labels: &[(String, String)]) -> String {
        if labels.is_empty() {
            name.to_string()
        } else {
            let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{name}{{{}}}", body.join(","))
        }
    }
    let counters = snapshot
        .counters
        .iter()
        .map(|c| (key(&c.name, &c.labels), Value::UInt(c.value)))
        .collect();
    let gauges = snapshot
        .gauges
        .iter()
        .map(|g| (key(&g.name, &g.labels), Value::Int(g.value)))
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|h| {
            let s = &h.snapshot;
            (
                key(&h.name, &h.labels),
                Value::Object(vec![
                    ("count".to_string(), Value::UInt(s.count())),
                    ("sum".to_string(), Value::UInt(s.sum)),
                    ("max".to_string(), Value::UInt(s.max)),
                    ("mean".to_string(), Value::Float(s.mean())),
                    ("p50".to_string(), Value::UInt(s.p50())),
                    ("p90".to_string(), Value::UInt(s.p90())),
                    ("p99".to_string(), Value::UInt(s.p99())),
                ]),
            )
        })
        .collect();
    Value::Object(vec![
        (
            "telemetry".to_string(),
            Value::String(
                if tagging_telemetry::enabled() {
                    "on"
                } else {
                    "noop"
                }
                .to_string(),
            ),
        ),
        ("counters".to_string(), Value::Object(counters)),
        ("gauges".to_string(), Value::Object(gauges)),
        ("histograms".to_string(), Value::Object(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_route_has_a_distinct_label() {
        let mut labels: Vec<&str> = Route::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Route::ALL.len());
    }

    #[test]
    fn record_response_counts_route_and_class() {
        let metrics = ServerMetrics::resolve();
        let before_route = metrics.requests[Route::ALL
            .iter()
            .position(|&r| r == Route::Malformed)
            .unwrap()]
        .get();
        let before_class = metrics.status_classes[3].get();
        metrics.record_response(Route::Malformed, 400);
        if tagging_telemetry::enabled() {
            // Delta assertions: the global registry is shared by every test
            // in this process.
            assert_eq!(
                metrics.requests[Route::ALL
                    .iter()
                    .position(|&r| r == Route::Malformed)
                    .unwrap()]
                .get(),
                before_route + 1
            );
            assert_eq!(metrics.status_classes[3].get(), before_class + 1);
        }
    }

    #[test]
    fn stats_value_has_the_top_level_shape() {
        let metrics = ServerMetrics::resolve();
        metrics.record_response(Route::Healthz, 200);
        let value = snapshot_to_value(&tagging_telemetry::global().snapshot());
        let expected = if tagging_telemetry::enabled() {
            "on"
        } else {
            "noop"
        };
        assert_eq!(
            value.get("telemetry"),
            Some(&Value::String(expected.to_string()))
        );
        for section in ["counters", "gauges", "histograms"] {
            assert!(
                matches!(value.get(section), Some(Value::Object(_))),
                "missing {section}"
            );
        }
    }
}
