//! The JSON protocol of the tagging server: request parsing and response
//! building over the vendored [`serde::Value`] tree.
//!
//! Parsing is deliberately tolerant about *absent* fields (every knob has a
//! documented default) and strict about *present-but-wrong* ones: a field of
//! the wrong type is a [`ProtocolError`], which the service maps to a 400
//! response rather than a panic.

use std::path::PathBuf;

use serde::Value;

use delicious_sim::generator::GeneratorConfig;
use tagging_core::stability::StabilityParams;
use tagging_sim::engine::RunConfig;
use tagging_sim::metrics::RunMetrics;
use tagging_sim::scenario::ScenarioParams;
use tagging_sim::session::{CompletionReport, LiveSession, TaskAssignment};
use tagging_strategies::StrategyKind;

/// A malformed request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(message: impl Into<String>) -> ProtocolError {
    ProtocolError(message.into())
}

/// Where the corpus behind a scenario comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusSource {
    /// Generate a synthetic corpus with the given resource count and seed.
    Generate {
        /// Number of resources.
        resources: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Load a corpus previously saved with `delicious_sim::io::save_corpus`.
    Load(PathBuf),
}

/// A parsed scenario-registration request.
#[derive(Debug, Clone)]
pub struct RegisterRequest {
    /// Strategy to allocate with.
    pub strategy: StrategyKind,
    /// Budget / ω / FC seed of the session.
    pub config: RunConfig,
    /// Corpus source.
    pub source: CorpusSource,
    /// Stability parameters used to derive reference rfds.
    pub scenario_params: ScenarioParams,
}

/// Default resource count of a generated corpus.
pub const DEFAULT_RESOURCES: usize = 200;
/// Default generator seed.
pub const DEFAULT_CORPUS_SEED: u64 = 42;

/// Upper bound on a session budget. Keeps one registration from committing
/// the server to an allocation vector (and task-id space) it cannot afford —
/// the paper-scale experiments use 10,000.
pub const MAX_BUDGET: usize = 10_000_000;
/// Upper bound on a single batch lease; larger leases must be split.
pub const MAX_BATCH: usize = 100_000;
/// Upper bound on the resources of a generated corpus (20× the paper's
/// 5,000-URL sample); generation cost is linear in this.
pub const MAX_RESOURCES: usize = 100_000;

/// The scenario parameters the server applies unless the registration
/// overrides them — the same values the `repro_*` harness uses
/// (`tagging-bench`'s `reference_stability_params`), so a corpus saved with
/// `--corpus` yields the identical scenario when registered here.
pub fn default_scenario_params() -> ScenarioParams {
    ScenarioParams {
        stability: StabilityParams::new(15, 0.999),
        under_tagged_threshold: 10,
    }
}

/// The generator configuration behind [`CorpusSource::Generate`]: the paper
/// sample shape at the requested size and seed.
pub fn generator_config(resources: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig::paper_sample()
        .with_resources(resources)
        .with_seed(seed)
}

fn get_u64(value: &Value, field: &str, default: u64) -> Result<u64, ProtocolError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::UInt(n)) => Ok(*n),
        Some(other) => Err(err(format!(
            "field `{field}` must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn get_f64(value: &Value, field: &str, default: f64) -> Result<f64, ProtocolError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Float(f)) => Ok(*f),
        Some(Value::UInt(n)) => Ok(*n as f64),
        Some(other) => Err(err(format!(
            "field `{field}` must be a number, got {other:?}"
        ))),
    }
}

fn get_str<'a>(value: &'a Value, field: &str) -> Result<Option<&'a str>, ProtocolError> {
    match value.get(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s)),
        Some(other) => Err(err(format!(
            "field `{field}` must be a string, got {other:?}"
        ))),
    }
}

/// Parses a `POST /scenarios` body.
pub fn parse_register(body: &Value) -> Result<RegisterRequest, ProtocolError> {
    if !matches!(body, Value::Object(_)) {
        return Err(err("request body must be a JSON object"));
    }
    let strategy = match get_str(body, "strategy")? {
        None => StrategyKind::Fp,
        Some(name) => StrategyKind::parse(name).ok_or_else(|| {
            err(format!(
                "unknown strategy `{name}` (want FC/RR/FP/MU/FP-MU)"
            ))
        })?,
    };
    let budget = get_u64(body, "budget", 5_000)?;
    if budget > MAX_BUDGET as u64 {
        return Err(err(format!(
            "field `budget` must be at most {MAX_BUDGET}, got {budget}"
        )));
    }
    let config = RunConfig {
        budget: budget as usize,
        omega: get_u64(body, "omega", 5)?.clamp(2, 1_000_000) as usize,
        seed: get_u64(body, "seed", 1)?,
    };
    let source = match body.get("source") {
        None | Some(Value::Null) => CorpusSource::Generate {
            resources: DEFAULT_RESOURCES,
            seed: DEFAULT_CORPUS_SEED,
        },
        Some(source @ Value::Object(_)) => {
            if let Some(path) = get_str(source, "corpus_path")? {
                CorpusSource::Load(PathBuf::from(path))
            } else {
                match source.get("generate") {
                    Some(generate @ Value::Object(_)) => {
                        let resources = get_u64(generate, "resources", DEFAULT_RESOURCES as u64)?;
                        if resources > MAX_RESOURCES as u64 {
                            return Err(err(format!(
                                "field `source.generate.resources` must be at most \
                                 {MAX_RESOURCES}, got {resources}"
                            )));
                        }
                        CorpusSource::Generate {
                            resources: (resources as usize).max(1),
                            seed: get_u64(generate, "seed", DEFAULT_CORPUS_SEED)?,
                        }
                    }
                    None => CorpusSource::Generate {
                        resources: DEFAULT_RESOURCES,
                        seed: DEFAULT_CORPUS_SEED,
                    },
                    Some(other) => {
                        return Err(err(format!(
                            "field `source.generate` must be an object, got {other:?}"
                        )))
                    }
                }
            }
        }
        Some(other) => {
            return Err(err(format!(
                "field `source` must be an object, got {other:?}"
            )))
        }
    };
    let defaults = default_scenario_params();
    let scenario_params = ScenarioParams {
        stability: StabilityParams::new(
            get_u64(body, "stability_window", defaults.stability.omega as u64)? as usize,
            get_f64(body, "stability_threshold", defaults.stability.tau)?,
        ),
        under_tagged_threshold: get_u64(
            body,
            "under_tagged_threshold",
            defaults.under_tagged_threshold as u64,
        )? as usize,
    };
    Ok(RegisterRequest {
        strategy,
        config,
        source,
        scenario_params,
    })
}

/// Parses a `POST /scenarios/{id}/batch` body: `{"k": n}` with a default of 1
/// and an upper bound of [`MAX_BATCH`].
pub fn parse_batch(body: &Value) -> Result<usize, ProtocolError> {
    if !matches!(body, Value::Object(_)) {
        return Err(err("request body must be a JSON object"));
    }
    let k = get_u64(body, "k", 1)?;
    if k == 0 {
        return Err(err("field `k` must be at least 1"));
    }
    if k > MAX_BATCH as u64 {
        return Err(err(format!(
            "field `k` must be at most {MAX_BATCH}, got {k}"
        )));
    }
    Ok(k as usize)
}

/// Parses a `POST /scenarios/{id}/report` body.
pub fn parse_report(body: &Value) -> Result<Vec<CompletionReport>, ProtocolError> {
    let completions = match body.get("completions") {
        Some(Value::Array(items)) => items,
        Some(other) => {
            return Err(err(format!(
                "field `completions` must be an array, got {other:?}"
            )))
        }
        None => return Err(err("missing field `completions`")),
    };
    completions
        .iter()
        .map(|item| {
            if !matches!(item, Value::Object(_)) {
                return Err(err("each completion must be a JSON object"));
            }
            let task_id = match item.get("task_id") {
                Some(Value::UInt(n)) => *n,
                Some(other) => {
                    return Err(err(format!(
                        "field `task_id` must be a non-negative integer, got {other:?}"
                    )))
                }
                None => return Err(err("completion missing field `task_id`")),
            };
            let tags = match item.get("tags") {
                None | Some(Value::Null) => None,
                Some(Value::Array(tags)) => Some(
                    tags.iter()
                        .map(|t| match t {
                            Value::String(s) => Ok(s.clone()),
                            other => Err(err(format!("tags must be strings, got {other:?}"))),
                        })
                        .collect::<Result<Vec<String>, _>>()?,
                ),
                Some(other) => {
                    return Err(err(format!(
                        "field `tags` must be an array of strings, got {other:?}"
                    )))
                }
            };
            Ok(CompletionReport { task_id, tags })
        })
        .collect()
}

/// Renders a leased batch as JSON.
pub fn batch_to_value(tasks: &[TaskAssignment], session: &LiveSession<'_>) -> Value {
    Value::Object(vec![
        (
            "tasks".to_string(),
            Value::Array(
                tasks
                    .iter()
                    .map(|t| {
                        Value::Object(vec![
                            ("task_id".to_string(), Value::UInt(t.task_id)),
                            ("resource".to_string(), Value::UInt(t.resource.0 as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "budget_spent".to_string(),
            Value::UInt(session.budget_spent() as u64),
        ),
        (
            "remaining_budget".to_string(),
            Value::UInt(session.remaining_budget() as u64),
        ),
    ])
}

/// Renders [`RunMetrics`] (plus live-session counters) as JSON.
pub fn metrics_to_value(metrics: &RunMetrics, pending_tasks: usize) -> Value {
    Value::Object(vec![
        (
            "strategy".to_string(),
            Value::String(metrics.strategy.clone()),
        ),
        ("budget".to_string(), Value::UInt(metrics.budget as u64)),
        (
            "budget_spent".to_string(),
            Value::UInt(metrics.allocation.iter().map(|&x| x as u64).sum()),
        ),
        (
            "pending_tasks".to_string(),
            Value::UInt(pending_tasks as u64),
        ),
        (
            "mean_quality".to_string(),
            Value::Float(metrics.mean_quality),
        ),
        (
            "over_tagged".to_string(),
            Value::UInt(metrics.over_tagged as u64),
        ),
        (
            "wasted_posts".to_string(),
            Value::UInt(metrics.wasted_posts as u64),
        ),
        (
            "under_tagged_fraction".to_string(),
            Value::Float(metrics.under_tagged_fraction),
        ),
        (
            "undelivered".to_string(),
            Value::UInt(metrics.undelivered as u64),
        ),
        (
            "runtime_seconds".to_string(),
            Value::Float(metrics.runtime_seconds),
        ),
        (
            "allocation".to_string(),
            Value::Array(
                metrics
                    .allocation
                    .iter()
                    .map(|&x| Value::UInt(x as u64))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn register_defaults_are_applied() {
        let req = parse_register(&parse("{}")).unwrap();
        assert_eq!(req.strategy, StrategyKind::Fp);
        assert_eq!(req.config.budget, 5_000);
        assert_eq!(req.config.omega, 5);
        assert_eq!(
            req.source,
            CorpusSource::Generate {
                resources: DEFAULT_RESOURCES,
                seed: DEFAULT_CORPUS_SEED
            }
        );
    }

    #[test]
    fn register_parses_every_field() {
        let req = parse_register(&parse(
            r#"{"strategy":"fp-mu","budget":100,"omega":7,"seed":9,
                "source":{"generate":{"resources":30,"seed":5}},
                "stability_window":10,"stability_threshold":0.995,
                "under_tagged_threshold":8}"#,
        ))
        .unwrap();
        assert_eq!(req.strategy, StrategyKind::FpMu);
        assert_eq!(req.config.budget, 100);
        assert_eq!(req.config.omega, 7);
        assert_eq!(req.config.seed, 9);
        assert_eq!(
            req.source,
            CorpusSource::Generate {
                resources: 30,
                seed: 5
            }
        );
        assert_eq!(req.scenario_params.under_tagged_threshold, 8);
    }

    #[test]
    fn register_rejects_bad_fields() {
        assert!(parse_register(&parse("[1,2]")).is_err());
        assert!(parse_register(&parse(r#"{"strategy":"nope"}"#)).is_err());
        assert!(parse_register(&parse(r#"{"budget":"lots"}"#)).is_err());
        assert!(parse_register(&parse(r#"{"source":7}"#)).is_err());
        assert!(parse_register(&parse(r#"{"source":{"generate":3}}"#)).is_err());
    }

    #[test]
    fn resource_and_budget_bounds_are_enforced() {
        assert!(parse_register(&parse(r#"{"budget":1000000000000}"#)).is_err());
        assert!(parse_register(&parse(
            r#"{"source":{"generate":{"resources":1000000000000}}}"#
        ))
        .is_err());
        assert!(parse_batch(&parse(r#"{"k":1000000000000}"#)).is_err());
        assert!(parse_batch(&parse(&format!("{{\"k\":{MAX_BATCH}}}"))).is_ok());
    }

    #[test]
    fn corpus_path_takes_precedence() {
        let req = parse_register(&parse(r#"{"source":{"corpus_path":"/tmp/c.json"}}"#)).unwrap();
        assert_eq!(req.source, CorpusSource::Load(PathBuf::from("/tmp/c.json")));
    }

    #[test]
    fn batch_and_report_parse() {
        assert_eq!(parse_batch(&parse("{}")).unwrap(), 1);
        assert_eq!(parse_batch(&parse(r#"{"k":64}"#)).unwrap(), 64);
        assert!(parse_batch(&parse(r#"{"k":0}"#)).is_err());
        assert!(parse_batch(&parse("3")).is_err());

        let reports = parse_report(&parse(
            r#"{"completions":[{"task_id":1,"tags":["a","b"]},{"task_id":2}]}"#,
        ))
        .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].task_id, 1);
        assert_eq!(
            reports[0].tags.as_deref(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        assert_eq!(reports[1].tags, None);

        assert!(parse_report(&parse("{}")).is_err());
        assert!(parse_report(&parse(r#"{"completions":[{"tags":[]}]}"#)).is_err());
        assert!(parse_report(&parse(r#"{"completions":[{"task_id":1,"tags":[3]}]}"#)).is_err());
    }
}
