//! # tagging-server
//!
//! The online form of the reproduction: an incentive-allocation *service*.
//! Where the `tagging-sim` engine replays recorded posts through an
//! allocation strategy offline, this crate serves the same
//! [`LiveSession`](tagging_sim::session::LiveSession)s over HTTP/JSON so
//! concurrent clients can lease post-task batches, report the tags they
//! posted and read the run metrics as they evolve.
//!
//! Everything is std-only, like the rest of the workspace: the HTTP layer is
//! a minimal HTTP/1.1 implementation over [`std::net::TcpListener`], requests
//! are handled on the [`tagging_runtime::WorkerPool`], and JSON goes through
//! the vendored `serde_json`.
//!
//! * [`http`] — request/response parsing and a persistent-connection client;
//! * [`protocol`] — the JSON codecs of the endpoints;
//! * [`service`] — the session registry and router (pure, TCP-free);
//! * [`server`] — the accept loop, keep-alive handling, graceful shutdown.
//!
//! Binaries: `tagging_server` (the daemon) and `repro_loadgen` (a
//! deterministic multi-client load generator that records throughput and
//! latency percentiles next to `BENCH_sweep.json`).
//!
//! ## Quick example
//!
//! ```
//! use serde::Value;
//! use tagging_server::http::HttpClient;
//! use tagging_server::server::TaggingServer;
//!
//! let server = TaggingServer::bind("127.0.0.1:0", 2).unwrap();
//! let (addr, handle) = server.spawn().unwrap();
//! let mut client = HttpClient::connect(&addr.to_string()).unwrap();
//! let (status, health) = client.request("GET", "/healthz", None).unwrap();
//! assert_eq!(status, 200);
//! assert_eq!(health.get("ok"), Some(&Value::Bool(true)));
//! client.request("POST", "/shutdown", None).unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod http;
pub mod protocol;
pub mod server;
pub mod service;
pub mod telemetry;

pub use http::HttpClient;
pub use server::{ServerOptions, TaggingServer};
pub use service::TaggingService;
pub use telemetry::TelemetryOptions;
