//! A [`Scenario`] is the frozen starting point of an incentive-tagging
//! experiment: for every resource, its initial ("January") posts, the recorded
//! future posts a post task can draw from, its reference (stable) rfd, its
//! stable point, and its popularity weight.
//!
//! It corresponds to the experimental setup of the paper's §V-A: strategies see
//! the initial posts and the posts they solicit; quality is always measured
//! against the stable rfd computed from the *full* sequence with the strict
//! dataset-preparation parameters (ω_s = 20, τ_s = 0.9999 in the paper).

use tagging_core::model::{Post, ResourceId};
use tagging_core::rfd::{rfd_of_prefix, Rfd};
use tagging_core::stability::{StabilityAnalyzer, StabilityParams};

use delicious_sim::generator::SyntheticCorpus;
use tagging_runtime::Runtime;

/// Frozen experiment input derived from a synthetic corpus.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Initial post sequences (the paper's `c_i` posts), indexed by resource.
    pub initial: Vec<Vec<Post>>,
    /// Recorded future posts available to post tasks, indexed by resource.
    pub future: Vec<Vec<Post>>,
    /// Reference (practically-stable) rfds quality is measured against.
    pub references: Vec<Rfd>,
    /// Stable point of each resource (posts needed before the rfd is stable);
    /// `None` when the full sequence never stabilises.
    pub stable_points: Vec<Option<usize>>,
    /// Popularity weights (sum to 1) driving the Free-Choice tagger model.
    pub popularity: Vec<f64>,
    /// Post-count threshold at or below which a resource counts as under-tagged.
    pub under_tagged_threshold: usize,
}

/// Parameters used when deriving a scenario from a corpus.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Stability parameters used to compute reference rfds and stable points.
    pub stability: StabilityParams,
    /// Under-tagged threshold (the paper uses 10 posts).
    pub under_tagged_threshold: usize,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            stability: StabilityParams::dataset_preparation(),
            under_tagged_threshold: 10,
        }
    }
}

impl Scenario {
    /// Derives a scenario from a synthetic corpus on the process-default
    /// [`Runtime`].
    ///
    /// Resources that never reach a stable point keep the rfd of their full
    /// sequence as the reference — the closest available estimate of their
    /// stable description (the paper sidesteps this by filtering such resources
    /// out of its sample; we keep them and note the substitution in DESIGN.md).
    pub fn from_corpus(corpus: &SyntheticCorpus, params: &ScenarioParams) -> Self {
        Self::from_corpus_with(corpus, params, &Runtime::from_env())
    }

    /// [`Scenario::from_corpus`] on an explicit [`Runtime`]: the per-resource
    /// stability analysis is a pure function of each resource's full post
    /// sequence, so it fans out over the runtime's threads and the result is
    /// bit-identical at any thread count.
    pub fn from_corpus_with(
        corpus: &SyntheticCorpus,
        params: &ScenarioParams,
        runtime: &Runtime,
    ) -> Self {
        let analyzer = StabilityAnalyzer::new(params.stability);
        let n = corpus.len();
        let per_resource = runtime.par_map_indexed(n, |i| {
            let id = ResourceId(i as u32);
            let full = corpus.full_sequence(id);
            let c = corpus.initial_posts[i];
            let profile = analyzer.analyze(full);
            let reference = profile
                .stable_rfd
                .unwrap_or_else(|| rfd_of_prefix(full, full.len()));
            (
                full[..c].to_vec(),
                full[c..].to_vec(),
                reference,
                profile.stable_point,
            )
        });

        let mut initial = Vec::with_capacity(n);
        let mut future = Vec::with_capacity(n);
        let mut references = Vec::with_capacity(n);
        let mut stable_points = Vec::with_capacity(n);
        for (init, fut, reference, stable_point) in per_resource {
            initial.push(init);
            future.push(fut);
            references.push(reference);
            stable_points.push(stable_point);
        }

        Self {
            initial,
            future,
            references,
            stable_points,
            popularity: corpus.popularity.clone(),
            under_tagged_threshold: params.under_tagged_threshold,
        }
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// True when the scenario has no resources.
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }

    /// The paper's `c_i`: initial post count of a resource.
    pub fn initial_count(&self, id: ResourceId) -> usize {
        self.initial[id.index()].len()
    }

    /// Mean tagging quality of the initial state (the paper's 0.865 baseline).
    pub fn initial_quality(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.len())
            .map(|i| {
                let rfd = rfd_of_prefix(&self.initial[i], self.initial[i].len());
                tagging_core::similarity::cosine(&rfd, &self.references[i])
            })
            .sum();
        total / self.len() as f64
    }

    /// Number of resources that are under-tagged in the initial state.
    pub fn initially_under_tagged(&self) -> usize {
        self.initial
            .iter()
            .filter(|posts| posts.len() <= self.under_tagged_threshold)
            .count()
    }

    /// Number of resources already past their stable point in the initial state.
    pub fn initially_over_tagged(&self) -> usize {
        (0..self.len())
            .filter(|&i| match self.stable_points[i] {
                Some(sp) => self.initial[i].len() >= sp,
                None => false,
            })
            .count()
    }

    /// Restricts the scenario to its first `n` resources (used by the
    /// "effect of the number of resources" sweeps). Returns a new scenario.
    pub fn take(&self, n: usize) -> Self {
        let n = n.min(self.len());
        Self {
            initial: self.initial[..n].to_vec(),
            future: self.future[..n].to_vec(),
            references: self.references[..n].to_vec(),
            stable_points: self.stable_points[..n].to_vec(),
            popularity: renormalise(&self.popularity[..n]),
            under_tagged_threshold: self.under_tagged_threshold,
        }
    }
}

/// Renormalises a weight slice to sum to 1 (uniform fallback when degenerate).
fn renormalise(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return vec![1.0 / weights.len().max(1) as f64; weights.len()];
    }
    weights
        .iter()
        .map(|&w| {
            if w.is_finite() && w > 0.0 {
                w / total
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use delicious_sim::generator::{generate, GeneratorConfig};

    fn scenario() -> Scenario {
        let corpus = generate(&GeneratorConfig::small(60, 21));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    #[test]
    fn scenario_covers_all_resources() {
        let s = scenario();
        assert_eq!(s.len(), 60);
        assert!(!s.is_empty());
        assert_eq!(s.future.len(), 60);
        assert_eq!(s.references.len(), 60);
        assert_eq!(s.stable_points.len(), 60);
        for i in 0..s.len() {
            assert!(!s.initial[i].is_empty());
            assert!(!s.references[i].is_empty());
        }
    }

    #[test]
    fn initial_quality_is_in_unit_interval_and_below_one() {
        let s = scenario();
        let q = s.initial_quality();
        assert!(q > 0.0 && q < 1.0, "initial quality {q}");
        // Plenty of resources start under-tagged, so the initial quality should
        // leave visible room for improvement.
        assert!(q < 0.995);
    }

    #[test]
    fn initial_counts_match_corpus() {
        let corpus = generate(&GeneratorConfig::small(30, 5));
        let s = Scenario::from_corpus(&corpus, &ScenarioParams::default());
        for id in corpus.resource_ids() {
            assert_eq!(s.initial_count(id), corpus.initial_posts[id.index()]);
            assert_eq!(
                s.initial[id.index()].len() + s.future[id.index()].len(),
                corpus.full_sequence(id).len()
            );
        }
    }

    #[test]
    fn under_and_over_tagged_counts_are_consistent() {
        let s = scenario();
        let under = s.initially_under_tagged();
        let over = s.initially_over_tagged();
        assert!(under <= s.len());
        assert!(over <= s.len());
        // Under-tagged resources (≤10 posts) cannot be over-tagged, since stable
        // points in the synthetic corpus are well above 10.
        assert!(under + over <= s.len() + 5);
    }

    #[test]
    fn take_restricts_and_renormalises() {
        let s = scenario();
        let sub = s.take(10);
        assert_eq!(sub.len(), 10);
        let total: f64 = sub.popularity.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Taking more than available returns everything.
        let all = s.take(10_000);
        assert_eq!(all.len(), s.len());
    }

    #[test]
    fn from_corpus_is_bit_identical_at_any_thread_count() {
        let corpus = generate(&GeneratorConfig::small(40, 9));
        let params = ScenarioParams::default();
        let sequential = Scenario::from_corpus_with(&corpus, &params, &Runtime::sequential());
        for threads in [2, 8] {
            let parallel = Scenario::from_corpus_with(&corpus, &params, &Runtime::new(threads));
            assert_eq!(parallel.initial, sequential.initial, "threads {threads}");
            assert_eq!(parallel.future, sequential.future, "threads {threads}");
            assert_eq!(
                parallel.references, sequential.references,
                "threads {threads}"
            );
            assert_eq!(
                parallel.stable_points, sequential.stable_points,
                "threads {threads}"
            );
            assert_eq!(
                parallel.popularity, sequential.popularity,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn renormalise_handles_degenerate_weights() {
        let out = renormalise(&[0.0, 0.0]);
        assert_eq!(out, vec![0.5, 0.5]);
        let out = renormalise(&[2.0, 2.0]);
        assert_eq!(out, vec![0.5, 0.5]);
    }
}
