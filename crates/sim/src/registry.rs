//! A sharded registry of live sessions — the concurrency backbone of the
//! allocation server.
//!
//! One `Mutex<HashMap>` over all sessions serializes *every* request through
//! a single lock: two clients working on two unrelated sessions still contend
//! on the map, and the map guard becomes the scaling ceiling long before the
//! sessions themselves do. [`SessionRegistry`] stripes the map over a fixed
//! power-of-two number of shards, each shard its own
//! `Mutex<HashMap<u64, Arc<Mutex<LiveSession>>>>`, with the session id hashed
//! to its shard. Requests on sessions in different shards never touch the
//! same lock; requests on different sessions in the *same* shard contend only
//! for the nanoseconds of a map lookup, because [`SessionRegistry::get`]
//! clones the `Arc` out and drops the shard guard before the caller ever
//! locks the session itself.
//!
//! Lock discipline, enforced by the API shape:
//!
//! 1. shard guards are held only inside this module, never across per-session
//!    work (the lock-scope bug class this type exists to prevent);
//! 2. every lock is taken through [`tagging_runtime::lock_unpoisoned`], so a
//!    handler that panics while holding a session cannot brick the shard —
//!    or any other session — for later requests.
//!
//! With one shard the registry *is* the old single-lock design, which the
//! server's golden tests exploit: responses from a sharded registry must
//! byte-match the single-shard baseline on a recorded request trace.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tagging_runtime::lock_unpoisoned;

use crate::session::LiveSession;

/// A session as the registry hands it out: shared, independently lockable.
pub type SharedSession = Arc<Mutex<LiveSession<'static>>>;

/// Default shard count: enough stripes that 8–16 worker threads on distinct
/// sessions almost never collide, small enough that `len()` (which visits
/// every shard) stays trivial.
pub const DEFAULT_SHARDS: usize = 16;

/// A fixed-shard-count, lock-striped map of session id → live session.
pub struct SessionRegistry {
    shards: Box<[Mutex<HashMap<u64, SharedSession>>]>,
    /// `shards.len() - 1`; valid as a bitmask because the count is a power
    /// of two.
    mask: u64,
    /// One `registry_shard_sessions{shard="i"}` gauge per shard, refreshed
    /// under the shard guard on every insert/remove, so scrapes expose shard
    /// imbalance without taking any registry lock.
    gauges: Box<[Arc<tagging_telemetry::Gauge>]>,
}

impl std::fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl SessionRegistry {
    /// Creates a registry with `shards` stripes, rounded up to the next power
    /// of two (minimum 1). One shard reproduces the single-lock design
    /// exactly — useful as the baseline in equivalence tests.
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[Mutex<HashMap<u64, SharedSession>>]> =
            (0..count).map(|_| Mutex::new(HashMap::new())).collect();
        let gauges = (0..count)
            .map(|i| {
                tagging_telemetry::global().gauge(
                    "registry_shard_sessions",
                    &[("shard", &i.to_string())],
                    "Live sessions held by each registry shard",
                )
            })
            .collect();
        Self {
            mask: (count - 1) as u64,
            shards,
            gauges,
        }
    }

    /// The (power-of-two) number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a session id lives in. Ids are assigned sequentially
    /// by the service, so they are mixed (SplitMix64 finalizer) before the
    /// mask — consecutive ids land on unrelated shards, and any id pattern a
    /// client produces spreads evenly.
    pub fn shard_of(&self, id: u64) -> usize {
        (mix(id) & self.mask) as usize
    }

    /// Inserts (or replaces) a session; returns the previous occupant if the
    /// id was already registered.
    pub fn insert(&self, id: u64, session: SharedSession) -> Option<SharedSession> {
        let shard = self.shard_of(id);
        let mut guard = lock_unpoisoned(&self.shards[shard]);
        let previous = guard.insert(id, session);
        self.gauges[shard].set(guard.len() as i64);
        previous
    }

    /// Looks up a session, cloning the `Arc` out under the shard guard and
    /// dropping the guard before returning — the caller locks the session
    /// *after* the shard lock is gone, so per-session work never blocks the
    /// shard.
    pub fn get(&self, id: u64) -> Option<SharedSession> {
        lock_unpoisoned(&self.shards[self.shard_of(id)])
            .get(&id)
            .cloned()
    }

    /// Removes and returns a session.
    pub fn remove(&self, id: u64) -> Option<SharedSession> {
        let shard = self.shard_of(id);
        let mut guard = lock_unpoisoned(&self.shards[shard]);
        let removed = guard.remove(&id);
        self.gauges[shard].set(guard.len() as i64);
        removed
    }

    /// Total number of registered sessions (locks each shard in turn — a
    /// snapshot, not an atomic count across shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| lock_unpoisoned(shard).len())
            .sum()
    }

    /// True when no shard holds any session.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids currently registered, in ascending order (for diagnostics and
    /// tests; takes each shard lock in turn).
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|shard| lock_unpoisoned(shard).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// How many sessions each shard holds (diagnostics and the partition
    /// tests).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| lock_unpoisoned(shard).len())
            .collect()
    }
}

/// SplitMix64 finalizer: a cheap bijective mixer whose low bits depend on
/// every input bit, making `mix(id) & mask` a uniform shard choice even for
/// sequential ids.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunConfig;
    use crate::scenario::{Scenario, ScenarioParams};
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::stability::StabilityParams;
    use tagging_strategies::StrategyKind;

    fn session(seed: u64) -> SharedSession {
        let corpus = generate(&GeneratorConfig::small(10, seed));
        let scenario = Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        );
        let config = RunConfig {
            budget: 20,
            omega: 5,
            seed,
        };
        Arc::new(Mutex::new(LiveSession::new(
            scenario,
            StrategyKind::Rr,
            &config,
        )))
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(SessionRegistry::new(0).shard_count(), 1);
        assert_eq!(SessionRegistry::new(1).shard_count(), 1);
        assert_eq!(SessionRegistry::new(3).shard_count(), 4);
        assert_eq!(SessionRegistry::new(16).shard_count(), 16);
        assert_eq!(SessionRegistry::new(17).shard_count(), 32);
        assert_eq!(SessionRegistry::default().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let registry = SessionRegistry::new(8);
        assert!(registry.is_empty());
        let s = session(1);
        assert!(registry.insert(42, Arc::clone(&s)).is_none());
        assert_eq!(registry.len(), 1);
        let got = registry.get(42).expect("registered");
        assert!(Arc::ptr_eq(&got, &s));
        assert!(registry.get(41).is_none());
        assert!(registry.remove(42).is_some());
        assert!(registry.get(42).is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        let registry = SessionRegistry::new(8);
        let s = session(2);
        for id in 1..=64 {
            registry.insert(id, Arc::clone(&s));
        }
        let sizes = registry.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        // The mixer must not funnel sequential ids into a few shards: with 64
        // ids over 8 shards every shard should see traffic.
        assert!(
            sizes.iter().all(|&n| n > 0),
            "sequential ids left a shard empty: {sizes:?}"
        );
    }

    #[test]
    fn a_poisoned_shard_recovers() {
        let registry = Arc::new(SessionRegistry::new(4));
        registry.insert(7, session(3));
        let inner = Arc::clone(&registry);
        // Poison the shard holding id 7 by panicking under its guard.
        let _ = std::thread::spawn(move || {
            let _guard = lock_unpoisoned(&inner.shards[inner.shard_of(7)]);
            panic!("poison shard");
        })
        .join();
        // The registry still serves lookups on that shard.
        assert!(registry.get(7).is_some());
        assert_eq!(registry.len(), 1);
    }
}
