//! A crowdsourcing-market post source.
//!
//! The paper's evaluation replays recorded future posts, which caps how many
//! post tasks a single resource can absorb. A real crowdsourcing deployment
//! (the paper's Figure 2 / Mechanical Turk scenario) has no such cap: there is
//! always another worker willing to complete a post task. [`MarketSource`]
//! models that: it first replays the recorded future posts of a resource and,
//! once those are exhausted, samples fresh posts from the resource's latent
//! true tag distribution — the same generative process the corpus was built
//! from. This is the source to use for what-if studies beyond the recorded
//! data (e.g. "how much budget until *every* resource is stable?", the paper's
//! 200,000-post FP vs 2,000,000-post FC comparison).

use rand::rngs::StdRng;
use rand::SeedableRng;

use delicious_sim::generator::SyntheticCorpus;
use delicious_sim::topics::sample_post;
use tagging_core::model::{Post, ResourceId, TagDictionary};
use tagging_core::rfd::Rfd;

use tagging_strategies::framework::PostSource;

/// Replays recorded future posts, then generates new posts from each
/// resource's true distribution. Never returns `None`.
#[derive(Debug, Clone)]
pub struct MarketSource {
    future: Vec<Vec<Post>>,
    cursor: Vec<usize>,
    true_distributions: Vec<Rfd>,
    dictionary: TagDictionary,
    rng: StdRng,
    max_tags_per_post: usize,
    noise_rate: f64,
    typo_counter: u64,
    generated: usize,
}

impl MarketSource {
    /// Builds a market source from a synthetic corpus and its initial split.
    ///
    /// `seed` drives the generation of posts beyond the recorded data.
    pub fn from_corpus(corpus: &SyntheticCorpus, seed: u64) -> Self {
        let n = corpus.len();
        let future: Vec<Vec<Post>> = corpus
            .resource_ids()
            .map(|id| corpus.future_sequence(id).to_vec())
            .collect();
        let true_distributions = corpus
            .resource_ids()
            .map(|id| corpus.true_distribution(id).clone())
            .collect();
        Self {
            future,
            cursor: vec![0; n],
            true_distributions,
            dictionary: corpus.corpus.tags.clone(),
            rng: StdRng::seed_from_u64(seed),
            max_tags_per_post: corpus.config.max_tags_per_post,
            noise_rate: corpus.config.noise_rate,
            typo_counter: 0,
            generated: 0,
        }
    }

    /// Number of posts that had to be generated beyond the recorded data.
    pub fn generated_posts(&self) -> usize {
        self.generated
    }
}

impl PostSource for MarketSource {
    fn next_post(&mut self, resource: ResourceId) -> Option<Post> {
        let i = resource.index();
        if i >= self.future.len() {
            return None;
        }
        if let Some(post) = self.future[i].get(self.cursor[i]) {
            self.cursor[i] += 1;
            return Some(post.clone());
        }
        // Recorded posts are exhausted: recruit a fresh worker, i.e. sample a
        // new post from the resource's latent distribution.
        let tags = sample_post(
            &mut self.rng,
            &mut self.dictionary,
            &self.true_distributions[i],
            self.max_tags_per_post,
            self.noise_rate,
            &mut self.typo_counter,
        );
        self.generated += 1;
        Some(Post::new(tags).expect("sampled posts are non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioParams};
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::similarity::cosine;
    use tagging_strategies::framework::run_allocation;
    use tagging_strategies::FewestPostsFirst;

    fn corpus() -> SyntheticCorpus {
        generate(&GeneratorConfig::small(20, 61))
    }

    #[test]
    fn replays_recorded_posts_first() {
        let corpus = corpus();
        let mut source = MarketSource::from_corpus(&corpus, 1);
        let id = ResourceId(0);
        let recorded = corpus.future_sequence(id).to_vec();
        for expected in &recorded {
            assert_eq!(source.next_post(id).as_ref(), Some(expected));
        }
        assert_eq!(source.generated_posts(), 0);
        // The next post is generated, not recorded.
        assert!(source.next_post(id).is_some());
        assert_eq!(source.generated_posts(), 1);
    }

    #[test]
    fn never_runs_dry_and_generated_posts_follow_the_true_distribution() {
        let corpus = corpus();
        let mut source = MarketSource::from_corpus(&corpus, 2);
        let id = ResourceId(1);
        let mut tracker = tagging_core::rfd::FrequencyTracker::new();
        for _ in 0..(corpus.future_sequence(id).len() + 500) {
            let post = source.next_post(id).expect("the market never runs dry");
            tracker.push(&post);
        }
        assert!(source.generated_posts() >= 500);
        let sim = cosine(&tracker.rfd(), corpus.true_distribution(id));
        assert!(
            sim > 0.85,
            "generated posts drift from the true distribution: {sim}"
        );
    }

    #[test]
    fn unknown_resource_returns_none() {
        let corpus = corpus();
        let mut source = MarketSource::from_corpus(&corpus, 3);
        assert!(source.next_post(ResourceId(999)).is_none());
    }

    #[test]
    fn fp_with_market_source_has_no_undelivered_tasks() {
        let corpus = corpus();
        let scenario = Scenario::from_corpus(&corpus, &ScenarioParams::default());
        let mut fp = FewestPostsFirst::new();
        let mut source = MarketSource::from_corpus(&corpus, 4);
        // A budget far larger than the recorded future posts of any resource.
        let outcome = run_allocation(
            &mut fp,
            &mut source,
            &scenario.initial,
            &scenario.popularity,
            2_000,
        );
        assert_eq!(outcome.undelivered, 0);
        assert_eq!(
            outcome.allocated.iter().map(|&x| x as usize).sum::<usize>(),
            2_000
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let corpus = corpus();
        let draw = |seed: u64| {
            let mut source = MarketSource::from_corpus(&corpus, seed);
            let id = ResourceId(2);
            // Skip past the recorded posts.
            for _ in 0..corpus.future_sequence(id).len() {
                source.next_post(id);
            }
            (0..20)
                .map(|_| source.next_post(id).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
