//! The experiment engine: run a strategy (or the DP optimum) against a
//! [`Scenario`] for a given budget and collect the metrics of Figure 6.

use std::time::Instant;

use tagging_runtime::Runtime;
use tagging_strategies::dp::{par_optimal_allocation, QualityTable};
use tagging_strategies::framework::{run_allocation, AllocationStrategy, ReplaySource};
use tagging_strategies::StrategyKind;

use crate::metrics::{
    delivered_posts, mean_quality, over_tagged_count, under_tagged_fraction, wasted_posts,
    RunMetrics,
};
use crate::scenario::Scenario;

/// Configuration of a single engine run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Budget of reward units (post tasks).
    pub budget: usize,
    /// MA window ω used by MU / FP-MU (the paper's default is 5).
    pub omega: usize,
    /// Seed for the Free-Choice tagger model.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            budget: 5_000,
            omega: 5,
            seed: 1,
        }
    }
}

impl RunConfig {
    /// Creates a config with the given budget and the paper's defaults otherwise.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }
}

/// Runs one of the built-in practical strategies: a thin replay driver over a
/// [`LiveSession`](crate::session::LiveSession) at batch size 1, which the
/// batched-semantics contract guarantees is bit-identical to the classic
/// sequential loop (see `tagging-strategies`' `batch_equivalence` suite and
/// this crate's session tests).
pub fn run_strategy(scenario: &Scenario, kind: StrategyKind, config: &RunConfig) -> RunMetrics {
    let mut session = crate::session::LiveSession::borrowed(scenario, kind, config);
    session.run_replay(1);
    session.metrics()
}

/// Runs an arbitrary [`AllocationStrategy`] implementation.
pub fn run_custom(
    scenario: &Scenario,
    strategy: &mut dyn AllocationStrategy,
    config: &RunConfig,
) -> RunMetrics {
    let mut source = ReplaySource::new(scenario.future.clone());
    let start = Instant::now();
    let outcome = run_allocation(
        strategy,
        &mut source,
        &scenario.initial,
        &scenario.popularity,
        config.budget,
    );
    let runtime_seconds = start.elapsed().as_secs_f64();

    let delivered = delivered_posts(scenario, &outcome);
    RunMetrics {
        strategy: strategy.name().to_string(),
        budget: config.budget,
        mean_quality: mean_quality(scenario, &delivered),
        over_tagged: over_tagged_count(scenario, &outcome.allocated),
        wasted_posts: wasted_posts(scenario, &outcome.allocated),
        under_tagged_fraction: under_tagged_fraction(scenario, &outcome.allocated),
        undelivered: outcome.undelivered,
        runtime_seconds,
        allocation: outcome.allocated,
    }
}

/// Runs the offline DP optimum of §III-D. Like the paper's DP, it is given the
/// full future post sequences and the stable rfds.
///
/// The per-resource quality table is capped at `max_per_resource` additional
/// posts (default: the budget) to bound memory; the cap never affects
/// optimality because quality stops changing once a resource's recorded future
/// posts run out.
pub fn run_dp(scenario: &Scenario, config: &RunConfig) -> RunMetrics {
    run_dp_capped(scenario, config, config.budget)
}

/// [`run_dp`] with an explicit per-resource cap on the quality table width.
///
/// The quality table and the DP recurrence run on the process-default
/// [`Runtime`], so a standalone DP run uses all configured threads. Sweeps instead pass an
/// explicit inner runtime via [`run_dp_capped_with`] — sequential when there
/// are at least as many sweep points as threads, wider when spare threads
/// would otherwise idle (see `inner_runtime` in `tagging-sim::sweep`).
pub fn run_dp_capped(
    scenario: &Scenario,
    config: &RunConfig,
    max_per_resource: usize,
) -> RunMetrics {
    run_dp_capped_with(scenario, config, max_per_resource, &Runtime::from_env())
}

/// [`run_dp_capped`] with an explicit [`Runtime`] for both the quality-table
/// construction and the DP recurrence itself (`par_optimal_allocation`'s
/// chunked layer fill). Output is bit-identical at any thread count.
pub fn run_dp_capped_with(
    scenario: &Scenario,
    config: &RunConfig,
    max_per_resource: usize,
    runtime: &Runtime,
) -> RunMetrics {
    let start = Instant::now();
    let cap = max_per_resource.min(config.budget);
    let table = QualityTable::par_from_posts(
        runtime,
        &scenario.initial,
        &scenario.future,
        &scenario.references,
        cap,
    );
    let result = par_optimal_allocation(runtime, &table, config.budget);
    let runtime_seconds = start.elapsed().as_secs_f64();

    // Deliver the allocated posts (up to what the recorded future provides) so
    // quality/under-tagging metrics are computed the same way as for the online
    // strategies.
    let delivered: Vec<_> = (0..scenario.len())
        .map(|i| {
            let take = (result.allocation[i] as usize).min(scenario.future[i].len());
            scenario.future[i][..take].to_vec()
        })
        .collect();
    let undelivered: usize = (0..scenario.len())
        .map(|i| (result.allocation[i] as usize).saturating_sub(scenario.future[i].len()))
        .sum();

    RunMetrics {
        strategy: "DP".to_string(),
        budget: config.budget,
        mean_quality: mean_quality(scenario, &delivered),
        over_tagged: over_tagged_count(scenario, &result.allocation),
        wasted_posts: wasted_posts(scenario, &result.allocation),
        under_tagged_fraction: under_tagged_fraction(scenario, &result.allocation),
        undelivered,
        runtime_seconds,
        allocation: result.allocation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioParams};
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::stability::StabilityParams;

    fn scenario(n: usize, seed: u64) -> Scenario {
        let corpus = generate(&GeneratorConfig::small(n, seed));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    #[test]
    fn every_strategy_produces_complete_metrics() {
        let s = scenario(30, 41);
        let config = RunConfig {
            budget: 100,
            omega: 5,
            seed: 3,
        };
        for kind in StrategyKind::ALL {
            let metrics = run_strategy(&s, kind, &config);
            assert_eq!(metrics.strategy, kind.name());
            assert_eq!(metrics.budget, 100);
            assert_eq!(
                metrics
                    .allocation
                    .iter()
                    .map(|&x| x as usize)
                    .sum::<usize>(),
                100
            );
            assert!((0.0..=1.0).contains(&metrics.mean_quality));
            assert!((0.0..=1.0).contains(&metrics.under_tagged_fraction));
            assert!(metrics.over_tagged <= s.len());
            assert!(metrics.wasted_posts <= 100);
            assert!(metrics.runtime_seconds >= 0.0);
        }
    }

    #[test]
    fn quality_improves_over_initial_for_fp_and_fpmu() {
        let s = scenario(40, 42);
        let initial_quality = s.initial_quality();
        let config = RunConfig {
            budget: 300,
            omega: 5,
            seed: 7,
        };
        for kind in [StrategyKind::Fp, StrategyKind::FpMu] {
            let metrics = run_strategy(&s, kind, &config);
            assert!(
                metrics.mean_quality > initial_quality,
                "{} did not improve quality: {} vs {}",
                kind.name(),
                metrics.mean_quality,
                initial_quality
            );
        }
    }

    #[test]
    fn dp_dominates_every_practical_strategy() {
        let s = scenario(15, 43);
        let config = RunConfig {
            budget: 60,
            omega: 5,
            seed: 11,
        };
        let dp = run_dp(&s, &config);
        assert_eq!(dp.strategy, "DP");
        assert_eq!(dp.allocation.iter().map(|&x| x as usize).sum::<usize>(), 60);
        for kind in StrategyKind::ALL {
            let metrics = run_strategy(&s, kind, &config);
            assert!(
                dp.mean_quality >= metrics.mean_quality - 1e-9,
                "{} beat DP: {} vs {}",
                kind.name(),
                metrics.mean_quality,
                dp.mean_quality
            );
        }
    }

    #[test]
    fn dp_capped_table_still_spends_budget() {
        let s = scenario(10, 44);
        let config = RunConfig {
            budget: 40,
            omega: 5,
            seed: 1,
        };
        let dp = run_dp_capped(&s, &config, 20);
        assert_eq!(dp.allocation.iter().map(|&x| x as usize).sum::<usize>(), 40);
        assert!((0.0..=1.0).contains(&dp.mean_quality));
    }

    #[test]
    fn fc_wastes_more_posts_than_fp() {
        let s = scenario(60, 45);
        let config = RunConfig {
            budget: 400,
            omega: 5,
            seed: 5,
        };
        let fc = run_strategy(&s, StrategyKind::Fc, &config);
        let fp = run_strategy(&s, StrategyKind::Fp, &config);
        // FC piles posts on popular (often over-tagged) resources; FP never does.
        assert!(
            fc.wasted_posts >= fp.wasted_posts,
            "FC wasted {} vs FP {}",
            fc.wasted_posts,
            fp.wasted_posts
        );
        // FP reduces the under-tagged fraction at least as much as FC.
        assert!(fp.under_tagged_fraction <= fc.under_tagged_fraction + 1e-12);
    }

    #[test]
    fn zero_budget_returns_initial_state_metrics() {
        let s = scenario(20, 46);
        let config = RunConfig {
            budget: 0,
            omega: 5,
            seed: 1,
        };
        let metrics = run_strategy(&s, StrategyKind::Rr, &config);
        assert!((metrics.mean_quality - s.initial_quality()).abs() < 1e-12);
        assert_eq!(metrics.wasted_posts, 0);
        assert_eq!(metrics.over_tagged, s.initially_over_tagged());
    }
}
