//! Metric collectors for allocation runs — the quantities plotted in the
//! paper's Figure 6:
//!
//! * (a) mean tagging quality after the budget is spent;
//! * (b) number of over-tagged resources;
//! * (c) number of wasted post tasks (tasks on already over-tagged resources);
//! * (d) percentage of resources that remain under-tagged.

use tagging_core::model::Post;
use tagging_core::rfd::FrequencyTracker;
use tagging_core::similarity::cosine;

use tagging_strategies::framework::AllocationOutcome;

use crate::scenario::Scenario;

/// The per-run metrics reported for every strategy and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Strategy name ("FP", "DP", …).
    pub strategy: String,
    /// Budget the run was given.
    pub budget: usize,
    /// Mean tagging quality `q(R, c + x)` after the run.
    pub mean_quality: f64,
    /// Number of resources at or past their stable point after the run.
    pub over_tagged: usize,
    /// Number of post tasks spent on resources that had already passed their
    /// stable point when (or before) the task was allocated.
    pub wasted_posts: usize,
    /// Fraction of resources still at or below the under-tagged threshold.
    pub under_tagged_fraction: f64,
    /// Post tasks that produced no post because the recorded future posts of the
    /// chosen resource were exhausted.
    pub undelivered: usize,
    /// Wall-clock time spent inside the allocation algorithm, in seconds.
    pub runtime_seconds: f64,
    /// The final allocation `x`.
    pub allocation: Vec<u32>,
}

/// The deterministic fingerprint of one run: every metric except the
/// wall-clock `runtime_seconds`, with floats taken bitwise. See
/// [`RunMetrics::fingerprint`].
pub type MetricsFingerprint = (String, usize, u64, usize, usize, u64, usize, Vec<u32>);

impl RunMetrics {
    /// Collapses the run into its deterministic fingerprint — the fields the
    /// `tagging-runtime` contract requires to be bit-identical at any thread
    /// count (everything except the wall-clock `runtime_seconds`). Both the
    /// determinism test suites and `repro_bench`'s verdict compare these.
    pub fn fingerprint(&self) -> MetricsFingerprint {
        (
            self.strategy.clone(),
            self.budget,
            self.mean_quality.to_bits(),
            self.over_tagged,
            self.wasted_posts,
            self.under_tagged_fraction.to_bits(),
            self.undelivered,
            self.allocation.clone(),
        )
    }
}

/// Computes the delivered posts per resource from an allocation outcome.
pub fn delivered_posts(scenario: &Scenario, outcome: &AllocationOutcome) -> Vec<Vec<Post>> {
    let mut delivered: Vec<Vec<Post>> = vec![Vec::new(); scenario.len()];
    for step in &outcome.trace {
        if let Some(post) = &step.post {
            delivered[step.resource.index()].push(post.clone());
        }
    }
    delivered
}

/// Mean tagging quality after each resource has received its initial posts plus
/// the delivered posts.
pub fn mean_quality(scenario: &Scenario, delivered: &[Vec<Post>]) -> f64 {
    assert_eq!(delivered.len(), scenario.len());
    if scenario.is_empty() {
        return 0.0;
    }
    let total: f64 = (0..scenario.len())
        .map(|i| {
            let mut tracker = FrequencyTracker::from_posts(scenario.initial[i].iter());
            for post in &delivered[i] {
                tracker.push(post);
            }
            cosine(&tracker.rfd(), &scenario.references[i])
        })
        .sum();
    total / scenario.len() as f64
}

/// Number of resources whose total post count has reached or passed their
/// stable point after the run (Figure 6(b)).
pub fn over_tagged_count(scenario: &Scenario, allocation: &[u32]) -> usize {
    (0..scenario.len())
        .filter(|&i| match scenario.stable_points[i] {
            Some(sp) => scenario.initial[i].len() + allocation[i] as usize >= sp,
            None => false,
        })
        .count()
}

/// Number of allocated post tasks that landed on a resource already at or past
/// its stable point (Figure 6(c)). A task is wasted when the resource's total
/// post count at allocation time is at least its stable point.
pub fn wasted_posts(scenario: &Scenario, allocation: &[u32]) -> usize {
    (0..scenario.len())
        .map(|i| {
            let Some(sp) = scenario.stable_points[i] else {
                return 0;
            };
            let c = scenario.initial[i].len();
            let x = allocation[i] as usize;
            // Tasks allocated while the count was already >= sp.
            (c + x).saturating_sub(sp.max(c)).min(x)
        })
        .sum()
}

/// Fraction of resources still at or below the under-tagged threshold after the
/// run (Figure 6(d)).
pub fn under_tagged_fraction(scenario: &Scenario, allocation: &[u32]) -> f64 {
    if scenario.is_empty() {
        return 0.0;
    }
    let under = (0..scenario.len())
        .filter(|&i| {
            scenario.initial[i].len() + allocation[i] as usize <= scenario.under_tagged_threshold
        })
        .count();
    under as f64 / scenario.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioParams;
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::model::ResourceId;
    use tagging_core::stability::StabilityParams;
    use tagging_strategies::framework::{run_allocation, ReplaySource};
    use tagging_strategies::FewestPostsFirst;

    fn scenario() -> Scenario {
        let corpus = generate(&GeneratorConfig::small(40, 31));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    #[test]
    fn zero_allocation_matches_initial_state() {
        let s = scenario();
        let allocation = vec![0u32; s.len()];
        let delivered: Vec<Vec<Post>> = vec![Vec::new(); s.len()];
        assert!((mean_quality(&s, &delivered) - s.initial_quality()).abs() < 1e-12);
        assert_eq!(
            over_tagged_count(&s, &allocation),
            s.initially_over_tagged()
        );
        assert_eq!(wasted_posts(&s, &allocation), 0);
        let expected_fraction = s.initially_under_tagged() as f64 / s.len() as f64;
        assert!((under_tagged_fraction(&s, &allocation) - expected_fraction).abs() < 1e-12);
    }

    #[test]
    fn delivering_posts_improves_quality_of_under_tagged_resources() {
        let s = scenario();
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(s.future.clone());
        let outcome = run_allocation(&mut fp, &mut source, &s.initial, &s.popularity, 200);
        let delivered = delivered_posts(&s, &outcome);
        let q_after = mean_quality(&s, &delivered);
        assert!(
            q_after > s.initial_quality(),
            "quality should improve: {} -> {}",
            s.initial_quality(),
            q_after
        );
        // FP reduces the under-tagged fraction monotonically.
        assert!(
            under_tagged_fraction(&s, &outcome.allocated)
                <= s.initially_under_tagged() as f64 / s.len() as f64
        );
    }

    #[test]
    fn wasted_posts_counts_only_tasks_past_the_stable_point() {
        let s = scenario();
        // Find a resource that is already over-tagged initially.
        let over = (0..s.len())
            .find(|&i| matches!(s.stable_points[i], Some(sp) if s.initial[i].len() >= sp));
        if let Some(i) = over {
            let mut allocation = vec![0u32; s.len()];
            allocation[i] = 5;
            assert_eq!(wasted_posts(&s, &allocation), 5);
        }
        // A resource well below its stable point wastes nothing for small x.
        let under = (0..s.len())
            .find(|&i| matches!(s.stable_points[i], Some(sp) if s.initial[i].len() + 3 < sp));
        if let Some(i) = under {
            let mut allocation = vec![0u32; s.len()];
            allocation[i] = 3;
            assert_eq!(wasted_posts(&s, &allocation), 0);
        }
        assert!(
            over.is_some() || under.is_some(),
            "test corpus too degenerate"
        );
    }

    #[test]
    fn wasted_posts_partial_overshoot() {
        let s = scenario();
        // A resource below its stable point that we push past it: only the posts
        // beyond the stable point are wasted.
        if let Some(i) = (0..s.len()).find(|&i| {
            matches!(s.stable_points[i], Some(sp) if s.initial[i].len() < sp && sp - s.initial[i].len() <= 20)
        }) {
            let sp = s.stable_points[i].unwrap();
            let gap = sp - s.initial[i].len();
            let mut allocation = vec![0u32; s.len()];
            allocation[i] = (gap + 4) as u32;
            assert_eq!(wasted_posts(&s, &allocation), 4);
        }
    }

    #[test]
    fn delivered_posts_groups_by_resource() {
        let s = scenario();
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(s.future.clone());
        let outcome = run_allocation(&mut fp, &mut source, &s.initial, &s.popularity, 50);
        let delivered = delivered_posts(&s, &outcome);
        let total_delivered: usize = delivered.iter().map(Vec::len).sum();
        assert_eq!(total_delivered + outcome.undelivered, 50);
        for (i, posts) in delivered.iter().enumerate() {
            assert!(posts.len() <= outcome.allocated[i] as usize);
            // Delivered posts are exactly the prefix of the recorded future posts.
            for (j, post) in posts.iter().enumerate() {
                assert_eq!(post, &s.future[i][j]);
            }
        }
        let _ = ResourceId(0);
    }
}
