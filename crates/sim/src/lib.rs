//! # tagging-sim
//!
//! The experiment engine of the reproduction of *"On Incentive-based Tagging"*
//! (ICDE 2013): it wires the synthetic corpus ([`delicious_sim`]), the metrics
//! ([`tagging_core`]) and the allocation strategies ([`tagging_strategies`])
//! into runnable experiments.
//!
//! * [`scenario`] — freezes a corpus into the experiment input (initial posts,
//!   recorded future posts, stable reference rfds, popularity weights);
//! * [`engine`] — runs one strategy (or the DP optimum) for one budget and
//!   collects the metrics of the paper's Figure 6;
//! * [`market`] — a crowdsourcing-market post source that never runs out of
//!   workers (replay first, then generate from the latent distributions);
//! * [`metrics`] — the metric definitions themselves (quality, over-tagging,
//!   wasted posts, under-tagging);
//! * [`session`] — a [`session::LiveSession`]: the online form of a run, which
//!   leases task batches and accepts completion reports (the type behind the
//!   `tagging-server` crate; the offline engine replays through it too);
//! * [`registry`] — a lock-striped [`registry::SessionRegistry`] of shared
//!   live sessions, so concurrent requests on different sessions never
//!   contend on one registry lock;
//! * [`sweep`] — budget / resource-count / ω sweeps, i.e. the loops behind the
//!   individual panels of Figure 6.
//!
//! ## Quick example
//!
//! ```
//! use delicious_sim::generator::{generate, GeneratorConfig};
//! use tagging_sim::engine::{run_strategy, RunConfig};
//! use tagging_sim::scenario::{Scenario, ScenarioParams};
//! use tagging_strategies::StrategyKind;
//!
//! let corpus = generate(&GeneratorConfig::small(30, 7));
//! let scenario = Scenario::from_corpus(&corpus, &ScenarioParams::default());
//! let metrics = run_strategy(&scenario, StrategyKind::Fp, &RunConfig::with_budget(100));
//! assert!(metrics.mean_quality >= scenario.initial_quality());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod market;
pub mod metrics;
pub mod registry;
pub mod scenario;
pub mod session;
pub mod sweep;

pub use engine::{run_custom, run_dp, run_dp_capped, run_strategy, RunConfig};
pub use market::MarketSource;
pub use metrics::RunMetrics;
pub use scenario::{Scenario, ScenarioParams};
pub use session::{
    CompletionReport, LiveSession, ReportOutcome, SessionError, SessionEvent, TaskAssignment,
};
pub use sweep::{budget_sweep, omega_sweep, resource_sweep, SweepAlgorithms, SweepPoint};
