//! Parameter sweeps — the loops behind the paper's Figure 6 panels.
//!
//! * [`budget_sweep`] — quality / over-tagging / wasted posts / under-tagging as
//!   the budget grows (Figures 6(a)–(d), 6(g));
//! * [`resource_sweep`] — effect of the number of resources at a fixed budget
//!   (Figures 6(e), 6(h));
//! * [`omega_sweep`] — effect of the MA window ω on MU / FP-MU / FP
//!   (Figure 6(f)).

use tagging_runtime::Runtime;
use tagging_strategies::StrategyKind;

use crate::engine::{run_dp_capped_with, run_strategy, RunConfig};
use crate::metrics::{MetricsFingerprint, RunMetrics};
use crate::scenario::Scenario;

/// Which algorithms a sweep should include.
#[derive(Debug, Clone)]
pub struct SweepAlgorithms {
    /// The practical strategies to run.
    pub strategies: Vec<StrategyKind>,
    /// Whether to run the DP optimum as well.
    pub include_dp: bool,
    /// Per-resource cap on the width of the DP quality table, i.e. on the
    /// largest per-resource allocation the table covers (see
    /// [`SweepAlgorithms::with_dp_table_cap`] for the trade-off).
    pub dp_table_cap: usize,
}

impl Default for SweepAlgorithms {
    /// All practical strategies plus the DP optimum, with `dp_table_cap`
    /// defaulting to `2_000` — wide enough that the cap is invisible for the
    /// paper's sweeps (at budget 10,000 over 5,000 resources no single
    /// resource is ever allocated anywhere near 2,000 posts) while bounding
    /// the table at `5_000 × 2_001` `f64`s ≈ 80 MB instead of the ~400 MB an
    /// uncapped budget-10,000 table would take.
    fn default() -> Self {
        Self {
            strategies: StrategyKind::ALL.to_vec(),
            include_dp: true,
            dp_table_cap: 2_000,
        }
    }
}

impl SweepAlgorithms {
    /// Only the practical strategies (no DP) — useful for large budgets where
    /// the DP would dominate the running time, as in the paper's Figure 6(g).
    pub fn practical_only() -> Self {
        Self {
            include_dp: false,
            ..Self::default()
        }
    }

    /// Replaces the set of practical strategies to run (builder style).
    ///
    /// ```
    /// use tagging_sim::sweep::SweepAlgorithms;
    /// use tagging_strategies::StrategyKind;
    ///
    /// let algorithms = SweepAlgorithms::default()
    ///     .with_strategies([StrategyKind::Fp, StrategyKind::FpMu])
    ///     .without_dp();
    /// assert_eq!(algorithms.strategies.len(), 2);
    /// assert!(!algorithms.include_dp);
    /// ```
    pub fn with_strategies<I: IntoIterator<Item = StrategyKind>>(mut self, strategies: I) -> Self {
        self.strategies = strategies.into_iter().collect();
        self
    }

    /// Includes or excludes the DP optimum (builder style).
    pub fn with_dp(mut self, include_dp: bool) -> Self {
        self.include_dp = include_dp;
        self
    }

    /// Excludes the DP optimum (builder style shorthand).
    pub fn without_dp(self) -> Self {
        self.with_dp(false)
    }

    /// Sets the per-resource cap on the DP quality-table width (builder
    /// style).
    ///
    /// The table stores `n · (cap + 1)` `f64` qualities and costs
    /// `O(n · |T| · cap)` time to build, so the cap is the lever between DP
    /// memory/time and fidelity: it must only exceed the largest allocation
    /// the optimum would give any single resource — beyond a resource's
    /// remaining future posts its quality row is constant anyway, so a
    /// generous cap loses nothing. The default of `2_000` (see
    /// [`SweepAlgorithms::default`]) is safe for every paper-scale
    /// experiment; lower it (as the smoke/default scales do) to keep small
    /// sweeps snappy, raise it only if a single resource could legitimately
    /// absorb more than `cap` tasks.
    pub fn with_dp_table_cap(mut self, dp_table_cap: usize) -> Self {
        self.dp_table_cap = dp_table_cap;
        self
    }
}

/// One point of a sweep: the independent variable plus every algorithm's metrics.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The value of the swept parameter (budget, resource count, or ω).
    pub x: usize,
    /// Metrics per algorithm, in the order the algorithms were run.
    pub results: Vec<RunMetrics>,
}

impl SweepPoint {
    /// Looks up the metrics of an algorithm by name.
    pub fn metrics(&self, strategy: &str) -> Option<&RunMetrics> {
        self.results.iter().find(|m| m.strategy == strategy)
    }
}

/// The deterministic fingerprint of a sweep: every non-timing metric of every
/// point, bitwise (see [`RunMetrics::fingerprint`]). Two sweeps over the same
/// inputs must compare equal at any thread count; the determinism test suites
/// and `repro_bench`'s verdict both use this.
pub fn sweep_fingerprint(points: &[SweepPoint]) -> Vec<(usize, MetricsFingerprint)> {
    points
        .iter()
        .flat_map(|p| p.results.iter().map(|m| (p.x, m.fingerprint())))
        .collect()
}

/// Splits a sweep's thread budget between the outer per-point fan-out and the
/// inner DP table build: with fewer points than threads the spare threads go
/// to each point's [`QualityTable`](tagging_strategies::dp::QualityTable)
/// construction instead of idling. Ceiling division so non-divisible counts
/// round towards using threads rather than idling them (8 threads over 5
/// points gives each point 2 — brief oversubscription beats 3 idle cores).
/// The DP table is bit-identical at any inner thread count, so the split
/// never affects results.
fn inner_runtime(outer: &Runtime, points: usize) -> Runtime {
    Runtime::new(outer.threads().div_ceil(points.max(1)))
}

/// Runs one sweep point: DP (if requested, its quality table built on the
/// given inner [`Runtime`]) then every practical strategy.
fn run_point(
    scenario: &Scenario,
    x: usize,
    algorithms: &SweepAlgorithms,
    config: &RunConfig,
    inner: &Runtime,
) -> SweepPoint {
    let mut results = Vec::new();
    if algorithms.include_dp {
        results.push(run_dp_capped_with(
            scenario,
            config,
            algorithms.dp_table_cap,
            inner,
        ));
    }
    for &kind in &algorithms.strategies {
        results.push(run_strategy(scenario, kind, config));
    }
    SweepPoint { x, results }
}

/// Runs every algorithm at every budget (Figures 6(a)–(d) and, via the recorded
/// runtimes, 6(g)) on the process-default [`Runtime`].
pub fn budget_sweep(
    scenario: &Scenario,
    budgets: &[usize],
    algorithms: &SweepAlgorithms,
    base_config: &RunConfig,
) -> Vec<SweepPoint> {
    budget_sweep_with(
        &Runtime::from_env(),
        scenario,
        budgets,
        algorithms,
        base_config,
    )
}

/// [`budget_sweep`] on an explicit [`Runtime`]: every budget point is an
/// independent task. Each run seeds its own strategy from `base_config.seed`,
/// so the metrics (everything except the wall-clock `runtime_seconds`) are
/// bit-identical at any thread count.
pub fn budget_sweep_with(
    runtime: &Runtime,
    scenario: &Scenario,
    budgets: &[usize],
    algorithms: &SweepAlgorithms,
    base_config: &RunConfig,
) -> Vec<SweepPoint> {
    let inner = inner_runtime(runtime, budgets.len());
    runtime.par_map(budgets, |&budget| {
        let config = RunConfig {
            budget,
            ..*base_config
        };
        run_point(scenario, budget, algorithms, &config, &inner)
    })
}

/// Runs every algorithm on prefixes of the scenario with increasing resource
/// counts at a fixed budget (Figures 6(e) and 6(h)) on the process-default
/// [`Runtime`].
pub fn resource_sweep(
    scenario: &Scenario,
    resource_counts: &[usize],
    algorithms: &SweepAlgorithms,
    config: &RunConfig,
) -> Vec<SweepPoint> {
    resource_sweep_with(
        &Runtime::from_env(),
        scenario,
        resource_counts,
        algorithms,
        config,
    )
}

/// [`resource_sweep`] on an explicit [`Runtime`]; see [`budget_sweep_with`]
/// for the determinism contract.
pub fn resource_sweep_with(
    runtime: &Runtime,
    scenario: &Scenario,
    resource_counts: &[usize],
    algorithms: &SweepAlgorithms,
    config: &RunConfig,
) -> Vec<SweepPoint> {
    let inner = inner_runtime(runtime, resource_counts.len());
    runtime.par_map(resource_counts, |&n| {
        let sub = scenario.take(n);
        run_point(&sub, n, algorithms, config, &inner)
    })
}

/// Runs MU, FP-MU and FP for every ω (Figure 6(f)); FP does not use ω but is
/// included as the reference line the paper plots. Uses the process-default
/// [`Runtime`].
pub fn omega_sweep(scenario: &Scenario, omegas: &[usize], config: &RunConfig) -> Vec<SweepPoint> {
    omega_sweep_with(&Runtime::from_env(), scenario, omegas, config)
}

/// [`omega_sweep`] on an explicit [`Runtime`]; see [`budget_sweep_with`] for
/// the determinism contract.
pub fn omega_sweep_with(
    runtime: &Runtime,
    scenario: &Scenario,
    omegas: &[usize],
    config: &RunConfig,
) -> Vec<SweepPoint> {
    runtime.par_map(omegas, |&omega| {
        let cfg = RunConfig { omega, ..*config };
        let results = vec![
            run_strategy(scenario, StrategyKind::FpMu, &cfg),
            run_strategy(scenario, StrategyKind::Fp, &cfg),
            run_strategy(scenario, StrategyKind::Mu, &cfg),
        ];
        SweepPoint { x: omega, results }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioParams};
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::stability::StabilityParams;

    fn scenario(n: usize) -> Scenario {
        let corpus = generate(&GeneratorConfig::small(n, 77));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    #[test]
    fn budget_sweep_produces_one_point_per_budget() {
        let s = scenario(25);
        let algorithms = SweepAlgorithms {
            strategies: vec![StrategyKind::Fp, StrategyKind::Fc],
            include_dp: true,
            dp_table_cap: 50,
        };
        let points = budget_sweep(&s, &[0, 50, 100], &algorithms, &RunConfig::default());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.results.len(), 3); // DP + FP + FC
            assert!(p.metrics("DP").is_some());
            assert!(p.metrics("FP").is_some());
            assert!(p.metrics("FC").is_some());
            assert!(p.metrics("RR").is_none());
        }
        // Quality under FP is non-decreasing in budget.
        let q: Vec<f64> = points
            .iter()
            .map(|p| p.metrics("FP").unwrap().mean_quality)
            .collect();
        assert!(q[1] >= q[0] - 1e-9);
        assert!(q[2] >= q[1] - 1e-9);
    }

    #[test]
    fn resource_sweep_quality_decreases_with_more_resources() {
        let s = scenario(60);
        let algorithms = SweepAlgorithms {
            strategies: vec![StrategyKind::Fp],
            include_dp: false,
            dp_table_cap: 0,
        };
        let config = RunConfig {
            budget: 120,
            omega: 5,
            seed: 1,
        };
        let points = resource_sweep(&s, &[15, 60], &algorithms, &config);
        assert_eq!(points.len(), 2);
        let q_small = points[0].metrics("FP").unwrap().mean_quality;
        let q_large = points[1].metrics("FP").unwrap().mean_quality;
        // With a fixed budget, more resources means fewer tasks each: the paper's
        // Figure 6(e) shows quality decreasing. Allow a tiny tolerance.
        assert!(
            q_large <= q_small + 0.02,
            "quality should not improve with more resources: {q_small} -> {q_large}"
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let s = scenario(25);
        let algorithms = SweepAlgorithms::default()
            .with_strategies([StrategyKind::Fp, StrategyKind::Fc])
            .with_dp_table_cap(50);
        let config = RunConfig::default();
        let budgets = [0, 30, 60, 90, 120];
        let sequential =
            budget_sweep_with(&Runtime::sequential(), &s, &budgets, &algorithms, &config);
        for threads in [2, 8] {
            let parallel =
                budget_sweep_with(&Runtime::new(threads), &s, &budgets, &algorithms, &config);
            // Everything except the wall-clock runtime must match bit for bit.
            assert_eq!(
                sweep_fingerprint(&sequential),
                sweep_fingerprint(&parallel),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn omega_sweep_runs_the_three_omega_sensitive_strategies() {
        let s = scenario(25);
        let config = RunConfig {
            budget: 80,
            omega: 5,
            seed: 1,
        };
        let points = omega_sweep(&s, &[2, 5, 8], &config);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.results.len(), 3);
            assert!(p.metrics("MU").is_some());
            assert!(p.metrics("FP-MU").is_some());
            assert!(p.metrics("FP").is_some());
        }
        // FP ignores ω, so its quality is identical across ω values.
        let fp_q: Vec<f64> = points
            .iter()
            .map(|p| p.metrics("FP").unwrap().mean_quality)
            .collect();
        assert!((fp_q[0] - fp_q[1]).abs() < 1e-12);
        assert!((fp_q[1] - fp_q[2]).abs() < 1e-12);
    }
}
