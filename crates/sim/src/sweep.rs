//! Parameter sweeps — the loops behind the paper's Figure 6 panels.
//!
//! * [`budget_sweep`] — quality / over-tagging / wasted posts / under-tagging as
//!   the budget grows (Figures 6(a)–(d), 6(g));
//! * [`resource_sweep`] — effect of the number of resources at a fixed budget
//!   (Figures 6(e), 6(h));
//! * [`omega_sweep`] — effect of the MA window ω on MU / FP-MU / FP
//!   (Figure 6(f)).

use tagging_strategies::StrategyKind;

use crate::engine::{run_dp_capped, run_strategy, RunConfig};
use crate::metrics::RunMetrics;
use crate::scenario::Scenario;

/// Which algorithms a sweep should include.
#[derive(Debug, Clone)]
pub struct SweepAlgorithms {
    /// The practical strategies to run.
    pub strategies: Vec<StrategyKind>,
    /// Whether to run the DP optimum as well.
    pub include_dp: bool,
    /// Per-resource cap on the DP quality table (bounds memory / time).
    pub dp_table_cap: usize,
}

impl Default for SweepAlgorithms {
    fn default() -> Self {
        Self {
            strategies: StrategyKind::ALL.to_vec(),
            include_dp: true,
            dp_table_cap: 2_000,
        }
    }
}

impl SweepAlgorithms {
    /// Only the practical strategies (no DP) — useful for large budgets where
    /// the DP would dominate the running time, as in the paper's Figure 6(g).
    pub fn practical_only() -> Self {
        Self {
            include_dp: false,
            ..Self::default()
        }
    }
}

/// One point of a sweep: the independent variable plus every algorithm's metrics.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The value of the swept parameter (budget, resource count, or ω).
    pub x: usize,
    /// Metrics per algorithm, in the order the algorithms were run.
    pub results: Vec<RunMetrics>,
}

impl SweepPoint {
    /// Looks up the metrics of an algorithm by name.
    pub fn metrics(&self, strategy: &str) -> Option<&RunMetrics> {
        self.results.iter().find(|m| m.strategy == strategy)
    }
}

/// Runs every algorithm at every budget (Figures 6(a)–(d) and, via the recorded
/// runtimes, 6(g)).
pub fn budget_sweep(
    scenario: &Scenario,
    budgets: &[usize],
    algorithms: &SweepAlgorithms,
    base_config: &RunConfig,
) -> Vec<SweepPoint> {
    budgets
        .iter()
        .map(|&budget| {
            let config = RunConfig {
                budget,
                ..*base_config
            };
            let mut results = Vec::new();
            if algorithms.include_dp {
                results.push(run_dp_capped(scenario, &config, algorithms.dp_table_cap));
            }
            for &kind in &algorithms.strategies {
                results.push(run_strategy(scenario, kind, &config));
            }
            SweepPoint { x: budget, results }
        })
        .collect()
}

/// Runs every algorithm on prefixes of the scenario with increasing resource
/// counts at a fixed budget (Figures 6(e) and 6(h)).
pub fn resource_sweep(
    scenario: &Scenario,
    resource_counts: &[usize],
    algorithms: &SweepAlgorithms,
    config: &RunConfig,
) -> Vec<SweepPoint> {
    resource_counts
        .iter()
        .map(|&n| {
            let sub = scenario.take(n);
            let mut results = Vec::new();
            if algorithms.include_dp {
                results.push(run_dp_capped(&sub, config, algorithms.dp_table_cap));
            }
            for &kind in &algorithms.strategies {
                results.push(run_strategy(&sub, kind, config));
            }
            SweepPoint { x: n, results }
        })
        .collect()
}

/// Runs MU, FP-MU and FP for every ω (Figure 6(f)); FP does not use ω but is
/// included as the reference line the paper plots.
pub fn omega_sweep(scenario: &Scenario, omegas: &[usize], config: &RunConfig) -> Vec<SweepPoint> {
    omegas
        .iter()
        .map(|&omega| {
            let cfg = RunConfig { omega, ..*config };
            let results = vec![
                run_strategy(scenario, StrategyKind::FpMu, &cfg),
                run_strategy(scenario, StrategyKind::Fp, &cfg),
                run_strategy(scenario, StrategyKind::Mu, &cfg),
            ];
            SweepPoint { x: omega, results }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioParams};
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::stability::StabilityParams;

    fn scenario(n: usize) -> Scenario {
        let corpus = generate(&GeneratorConfig::small(n, 77));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    #[test]
    fn budget_sweep_produces_one_point_per_budget() {
        let s = scenario(25);
        let algorithms = SweepAlgorithms {
            strategies: vec![StrategyKind::Fp, StrategyKind::Fc],
            include_dp: true,
            dp_table_cap: 50,
        };
        let points = budget_sweep(&s, &[0, 50, 100], &algorithms, &RunConfig::default());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.results.len(), 3); // DP + FP + FC
            assert!(p.metrics("DP").is_some());
            assert!(p.metrics("FP").is_some());
            assert!(p.metrics("FC").is_some());
            assert!(p.metrics("RR").is_none());
        }
        // Quality under FP is non-decreasing in budget.
        let q: Vec<f64> = points
            .iter()
            .map(|p| p.metrics("FP").unwrap().mean_quality)
            .collect();
        assert!(q[1] >= q[0] - 1e-9);
        assert!(q[2] >= q[1] - 1e-9);
    }

    #[test]
    fn resource_sweep_quality_decreases_with_more_resources() {
        let s = scenario(60);
        let algorithms = SweepAlgorithms {
            strategies: vec![StrategyKind::Fp],
            include_dp: false,
            dp_table_cap: 0,
        };
        let config = RunConfig {
            budget: 120,
            omega: 5,
            seed: 1,
        };
        let points = resource_sweep(&s, &[15, 60], &algorithms, &config);
        assert_eq!(points.len(), 2);
        let q_small = points[0].metrics("FP").unwrap().mean_quality;
        let q_large = points[1].metrics("FP").unwrap().mean_quality;
        // With a fixed budget, more resources means fewer tasks each: the paper's
        // Figure 6(e) shows quality decreasing. Allow a tiny tolerance.
        assert!(
            q_large <= q_small + 0.02,
            "quality should not improve with more resources: {q_small} -> {q_large}"
        );
    }

    #[test]
    fn omega_sweep_runs_the_three_omega_sensitive_strategies() {
        let s = scenario(25);
        let config = RunConfig {
            budget: 80,
            omega: 5,
            seed: 1,
        };
        let points = omega_sweep(&s, &[2, 5, 8], &config);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.results.len(), 3);
            assert!(p.metrics("MU").is_some());
            assert!(p.metrics("FP-MU").is_some());
            assert!(p.metrics("FP").is_some());
        }
        // FP ignores ω, so its quality is identical across ω values.
        let fp_q: Vec<f64> = points
            .iter()
            .map(|p| p.metrics("FP").unwrap().mean_quality)
            .collect();
        assert!((fp_q[0] - fp_q[1]).abs() < 1e-12);
        assert!((fp_q[1] - fp_q[2]).abs() < 1e-12);
    }
}
