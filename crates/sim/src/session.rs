//! A live allocation session — the online counterpart of the engine's replay
//! loop.
//!
//! A [`LiveSession`] owns a frozen [`Scenario`] and a batched strategy and
//! exposes the three operations an allocation *service* needs:
//!
//! * [`LiveSession::next_batch`] — lease the next batch of post tasks
//!   (resource assignments with task ids), clamped to the remaining budget;
//! * [`LiveSession::report`] — accept completed tasks, either with the tags
//!   the tagger actually posted or, when no tags are given, by replaying the
//!   scenario's recorded future post for that resource (the offline-evaluation
//!   semantics of the paper);
//! * [`LiveSession::metrics`] — the incremental [`RunMetrics`] of the run so
//!   far, maintained per report instead of recomputed from scratch.
//!
//! The offline engine (`engine::run_strategy`) is a thin replay driver over
//! this same type: batch size 1 with every completion reported immediately,
//! which the batched-semantics contract guarantees is bit-identical to the
//! classic sequential loop of Algorithm 1.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use tagging_core::model::{Post, ResourceId, TagDictionary};
use tagging_core::rfd::FrequencyTracker;
use tagging_core::similarity::cosine;

use tagging_strategies::batch::{BatchAllocator, BatchState};
use tagging_strategies::framework::AllocationView;
use tagging_strategies::StrategyKind;

use crate::engine::RunConfig;
use crate::metrics::{over_tagged_count, under_tagged_fraction, wasted_posts, RunMetrics};
use crate::scenario::Scenario;

/// One leased post task: which resource to tag, referenced by task id when the
/// completion is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAssignment {
    /// Session-unique id of the task.
    pub task_id: u64,
    /// The resource the post task is for.
    pub resource: ResourceId,
}

/// A reported completion: the tags the tagger posted, or `None` to let the
/// session replay the resource's next recorded future post.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionReport {
    /// The task id from the [`TaskAssignment`] being completed.
    pub task_id: u64,
    /// Posted tag names; `None` requests replay of the recorded future.
    pub tags: Option<Vec<String>>,
}

/// One replayable state transition of a session — the unit of the journal
/// behind durable sessions.
///
/// A [`LiveSession`] is a deterministic state machine: given the same
/// scenario, strategy and config, applying the same sequence of events
/// reproduces the same state bit for bit (the property the whole
/// `tagging-runtime` determinism contract rests on). The journal therefore
/// *is* the session's serialized state: `tagging-persist` snapshots are the
/// journal written down, and recovery is [`LiveSession::replay_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A batch of `k` tasks was leased (`k` is the *actual* leased count,
    /// after clamping to the remaining budget — replay applies the same
    /// clamp, so the lease reproduces exactly).
    Lease {
        /// Number of tasks leased.
        k: usize,
    },
    /// A report batch was accepted.
    Report {
        /// The accepted completion reports, in report order.
        reports: Vec<CompletionReport>,
    },
}

/// Summary of one accepted report batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportOutcome {
    /// Number of completions accepted.
    pub accepted: usize,
    /// How many produced an actual post.
    pub delivered: usize,
    /// How many produced no post (replay requested but the recorded future of
    /// the resource was exhausted).
    pub undelivered: usize,
}

/// Errors a session can return; every one leaves the session state unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The reported task id is not an outstanding lease.
    UnknownTask(u64),
    /// The same task id appears twice in one report.
    DuplicateTask(u64),
    /// A completion carried an empty tag list (posts are non-empty by
    /// Definition 1).
    EmptyPost(u64),
    /// Replaying a journal diverged from the recorded events — the session
    /// being restored does not match the one the journal was recorded on
    /// (wrong scenario, strategy, config or a corrupted journal).
    ReplayDivergence {
        /// Tasks the replayed lease was recorded to produce.
        expected: usize,
        /// Tasks the lease actually produced on the session being restored.
        got: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownTask(id) => write!(f, "unknown or already-completed task {id}"),
            SessionError::DuplicateTask(id) => write!(f, "task {id} reported twice in one batch"),
            SessionError::EmptyPost(id) => write!(f, "task {id} reported an empty tag list"),
            SessionError::ReplayDivergence { expected, got } => write!(
                f,
                "journal replay diverged: recorded lease of {expected} tasks produced {got}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// A live allocation session over one scenario, budget and strategy.
///
/// The scenario is held as a [`Cow`]: a server session owns its scenario
/// (`'static`), while the offline engine's replay driver borrows the caller's
/// — sweeps run thousands of sessions over one scenario and must not clone
/// the post sequences per run.
pub struct LiveSession<'a> {
    scenario: Cow<'a, Scenario>,
    strategy: Box<dyn BatchAllocator + Send>,
    strategy_name: String,
    dictionary: TagDictionary,
    budget: usize,
    spent: usize,
    allocated: Vec<u32>,
    replay_cursor: Vec<usize>,
    pending: HashMap<u64, ResourceId>,
    next_task_id: u64,
    // Incremental quality state: one tracker per resource, with the cosine
    // against the reference rfd cached and recomputed lazily per touched
    // resource instead of for all n on every metrics() call.
    trackers: Vec<FrequencyTracker>,
    quality: Vec<f64>,
    dirty: Vec<bool>,
    undelivered: usize,
    delivered: usize,
    elapsed: Duration,
    /// `Some` when the session records its state transitions for extraction
    /// (see [`SessionEvent`]); `None` on the offline sweep path, which runs
    /// thousands of throwaway sessions and must not pay for the history.
    journal: Option<Vec<SessionEvent>>,
}

impl std::fmt::Debug for LiveSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("strategy", &self.strategy_name)
            .field("resources", &self.scenario.len())
            .field("budget", &self.budget)
            .field("spent", &self.spent)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<'a> LiveSession<'a> {
    /// Opens a session owning its scenario (the server path). The scenario
    /// must be non-empty; `config` supplies the budget, ω and the FC tagger
    /// seed.
    pub fn new(scenario: Scenario, kind: StrategyKind, config: &RunConfig) -> LiveSession<'static> {
        LiveSession::from_cow(
            Cow::Owned(scenario),
            kind.build_batch(config.omega, config.seed),
            config,
        )
    }

    /// Opens a session borrowing the caller's scenario — the offline replay
    /// path, which avoids cloning the post sequences per run.
    pub fn borrowed(
        scenario: &'a Scenario,
        kind: StrategyKind,
        config: &RunConfig,
    ) -> LiveSession<'a> {
        LiveSession::from_cow(
            Cow::Borrowed(scenario),
            kind.build_batch(config.omega, config.seed),
            config,
        )
    }

    /// Opens a session for an arbitrary batched strategy over an owned
    /// scenario.
    pub fn with_strategy(
        scenario: Scenario,
        strategy: Box<dyn BatchAllocator + Send>,
        config: &RunConfig,
    ) -> LiveSession<'static> {
        LiveSession::from_cow(Cow::Owned(scenario), strategy, config)
    }

    fn from_cow(
        scenario: Cow<'a, Scenario>,
        mut strategy: Box<dyn BatchAllocator + Send>,
        config: &RunConfig,
    ) -> LiveSession<'a> {
        assert!(
            !scenario.is_empty(),
            "cannot open a session over zero resources"
        );
        let n = scenario.len();
        let allocated = vec![0u32; n];
        {
            let view = AllocationView {
                initial_sequences: &scenario.initial,
                allocated: &allocated,
                popularity: &scenario.popularity,
            };
            strategy.init(&view);
        }
        let trackers: Vec<FrequencyTracker> = scenario
            .initial
            .iter()
            .map(|posts| FrequencyTracker::from_posts(posts.iter()))
            .collect();
        let quality: Vec<f64> = trackers
            .iter()
            .zip(&scenario.references)
            .map(|(tracker, reference)| cosine(&tracker.rfd(), reference))
            .collect();
        let strategy_name = strategy.name().to_string();
        Self {
            replay_cursor: vec![0; n],
            dirty: vec![false; n],
            scenario,
            strategy,
            strategy_name,
            dictionary: TagDictionary::new(),
            budget: config.budget,
            spent: 0,
            allocated,
            pending: HashMap::new(),
            next_task_id: 1,
            trackers,
            quality,
            undelivered: 0,
            delivered: 0,
            elapsed: Duration::ZERO,
            journal: None,
        }
    }

    /// Installs the tag dictionary used to intern tag names arriving in
    /// reports (typically the corpus dictionary, so existing tags keep their
    /// ids). Without one, reported names are interned into a fresh dictionary.
    pub fn with_dictionary(mut self, dictionary: TagDictionary) -> Self {
        self.dictionary = dictionary;
        self
    }

    /// Turns on journal recording: every subsequent lease and accepted report
    /// is appended to the session's [`SessionEvent`] journal, making the
    /// session's state extractable via [`LiveSession::journal`] and
    /// restorable via [`LiveSession::replay_events`].
    pub fn with_journal(mut self) -> Self {
        self.journal = Some(Vec::new());
        self
    }

    /// The recorded journal, or `None` when recording is off.
    pub fn journal(&self) -> Option<&[SessionEvent]> {
        self.journal.as_deref()
    }

    /// Replays recorded events onto this (freshly opened) session, restoring
    /// the state the journal was extracted from — the recovery path of
    /// durable sessions.
    ///
    /// Every event must apply exactly as recorded: a lease that produces a
    /// different task count, or a report the session rejects, is a
    /// [`SessionError::ReplayDivergence`] / the report's own error, and means
    /// the journal does not belong to this scenario/strategy/config. If this
    /// session records its own journal, the replayed events are re-recorded,
    /// so a restored session can itself be extracted again.
    pub fn replay_events(&mut self, events: &[SessionEvent]) -> Result<(), SessionError> {
        for event in events {
            match event {
                SessionEvent::Lease { k } => {
                    let leased = self.next_batch(*k).len();
                    if leased != *k {
                        return Err(SessionError::ReplayDivergence {
                            expected: *k,
                            got: leased,
                        });
                    }
                }
                SessionEvent::Report { reports } => {
                    self.report(reports)?;
                }
            }
        }
        Ok(())
    }

    /// The scenario the session runs over.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The strategy's display name ("FP", "FP-MU", …).
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    /// Total budget of the session.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Tasks allocated so far.
    pub fn budget_spent(&self) -> usize {
        self.spent
    }

    /// Budget not yet allocated.
    pub fn remaining_budget(&self) -> usize {
        self.budget - self.spent
    }

    /// Number of leased tasks whose completion has not been reported yet.
    pub fn pending_tasks(&self) -> usize {
        self.pending.len()
    }

    /// Leases the next batch of up to `k` post tasks; the batch is clamped to
    /// the remaining budget, so an exhausted session returns an empty batch.
    pub fn next_batch(&mut self, k: usize) -> Vec<TaskAssignment> {
        let k = k.min(self.remaining_budget());
        if k == 0 {
            return Vec::new();
        }
        let start = Instant::now();
        let ids = {
            let mut state = BatchState::new(
                &self.scenario.initial,
                &self.scenario.popularity,
                &mut self.allocated,
            );
            self.strategy.allocate_batch(&mut state, k)
        };
        debug_assert_eq!(ids.len(), k);
        self.spent += k;
        let assignments: Vec<TaskAssignment> = ids
            .into_iter()
            .map(|resource| {
                let task_id = self.next_task_id;
                self.next_task_id += 1;
                self.pending.insert(task_id, resource);
                TaskAssignment { task_id, resource }
            })
            .collect();
        self.elapsed += start.elapsed();
        if let Some(journal) = &mut self.journal {
            journal.push(SessionEvent::Lease { k });
        }
        assignments
    }

    /// Accepts a batch of completion reports. Either the whole batch is
    /// applied or none of it: invalid task ids and empty tag lists are
    /// rejected up front with the session unchanged.
    pub fn report(&mut self, reports: &[CompletionReport]) -> Result<ReportOutcome, SessionError> {
        // Validate before mutating anything.
        self.validate_reports(reports)?;

        let start = Instant::now();
        let mut completions: Vec<(ResourceId, Option<Post>)> = Vec::with_capacity(reports.len());
        for report in reports {
            let resource = self
                .pending
                .remove(&report.task_id)
                .expect("validated above");
            let post = match &report.tags {
                Some(tags) => Some(
                    Post::from_names(&mut self.dictionary, tags.iter())
                        .expect("validated non-empty above"),
                ),
                None => {
                    let i = resource.index();
                    let next = self.scenario.future[i].get(self.replay_cursor[i]).cloned();
                    if next.is_some() {
                        self.replay_cursor[i] += 1;
                    }
                    next
                }
            };
            match &post {
                Some(post) => {
                    let i = resource.index();
                    self.trackers[i].push(post);
                    self.dirty[i] = true;
                    self.delivered += 1;
                }
                None => self.undelivered += 1,
            }
            completions.push((resource, post));
        }
        {
            let view = AllocationView {
                initial_sequences: &self.scenario.initial,
                allocated: &self.allocated,
                popularity: &self.scenario.popularity,
            };
            self.strategy.observe_batch(&view, &completions);
        }
        let outcome = ReportOutcome {
            accepted: reports.len(),
            delivered: completions.iter().filter(|(_, p)| p.is_some()).count(),
            undelivered: completions.iter().filter(|(_, p)| p.is_none()).count(),
        };
        self.elapsed += start.elapsed();
        if let Some(journal) = &mut self.journal {
            journal.push(SessionEvent::Report {
                reports: reports.to_vec(),
            });
        }
        Ok(outcome)
    }

    /// Checks a report batch against the session without applying anything —
    /// exactly the validation [`LiveSession::report`] performs before it
    /// mutates. A batch that validates cannot fail to apply, which is what
    /// lets a write-ahead log record the batch *before* it is applied.
    pub fn validate_reports(&self, reports: &[CompletionReport]) -> Result<(), SessionError> {
        let mut seen: HashSet<u64> = HashSet::with_capacity(reports.len());
        for report in reports {
            if !self.pending.contains_key(&report.task_id) {
                return Err(SessionError::UnknownTask(report.task_id));
            }
            if !seen.insert(report.task_id) {
                return Err(SessionError::DuplicateTask(report.task_id));
            }
            if matches!(&report.tags, Some(tags) if tags.is_empty()) {
                return Err(SessionError::EmptyPost(report.task_id));
            }
        }
        Ok(())
    }

    /// Task ids of the outstanding (leased, unreported) tasks, ascending —
    /// what a recovering client needs to finish a restored session.
    pub fn pending_task_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The metrics of the run so far. Identical to what the offline engine
    /// reports for the same allocation and delivered posts: only the
    /// resources touched since the last call have their quality recomputed.
    pub fn metrics(&mut self) -> RunMetrics {
        for i in 0..self.scenario.len() {
            if self.dirty[i] {
                self.quality[i] = cosine(&self.trackers[i].rfd(), &self.scenario.references[i]);
                self.dirty[i] = false;
            }
        }
        let total: f64 = self.quality.iter().sum();
        RunMetrics {
            strategy: self.strategy_name.clone(),
            budget: self.budget,
            mean_quality: total / self.scenario.len() as f64,
            over_tagged: over_tagged_count(&self.scenario, &self.allocated),
            wasted_posts: wasted_posts(&self.scenario, &self.allocated),
            under_tagged_fraction: under_tagged_fraction(&self.scenario, &self.allocated),
            undelivered: self.undelivered,
            runtime_seconds: self.elapsed.as_secs_f64(),
            allocation: self.allocated.clone(),
        }
    }

    /// Drains the whole budget offline: repeatedly leases a batch of
    /// `batch_size` tasks and immediately reports every one for replay. With
    /// `batch_size == 1` this reproduces the classic sequential loop of
    /// Algorithm 1 bit for bit.
    pub fn run_replay(&mut self, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        loop {
            let tasks = self.next_batch(batch_size);
            if tasks.is_empty() {
                return;
            }
            let reports: Vec<CompletionReport> = tasks
                .iter()
                .map(|t| CompletionReport {
                    task_id: t.task_id,
                    tags: None,
                })
                .collect();
            self.report(&reports)
                .expect("replay reports reference freshly leased tasks");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_custom;
    use crate::scenario::ScenarioParams;
    use delicious_sim::generator::{generate, GeneratorConfig};
    use tagging_core::stability::StabilityParams;

    fn scenario(n: usize, seed: u64) -> Scenario {
        let corpus = generate(&GeneratorConfig::small(n, seed));
        Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        )
    }

    fn config(budget: usize) -> RunConfig {
        RunConfig {
            budget,
            omega: 5,
            seed: 3,
        }
    }

    #[test]
    fn replay_session_matches_the_classic_engine_loop() {
        let s = scenario(30, 41);
        let cfg = config(120);
        for kind in StrategyKind::ALL {
            let mut classic_strategy = kind.build(cfg.omega, cfg.seed);
            let classic = run_custom(&s, classic_strategy.as_mut(), &cfg);

            let mut session = LiveSession::new(s.clone(), kind, &cfg);
            session.run_replay(1);
            let live = session.metrics();

            assert_eq!(
                live.fingerprint(),
                classic.fingerprint(),
                "{} live session diverged from the classic loop",
                kind.name()
            );
        }
    }

    #[test]
    fn batched_replay_conserves_budget_at_every_batch_size() {
        let s = scenario(25, 42);
        let cfg = config(103); // not divisible by any batch size below
        for kind in StrategyKind::ALL {
            for batch in [1, 7, 64] {
                let mut session = LiveSession::new(s.clone(), kind, &cfg);
                session.run_replay(batch);
                let m = session.metrics();
                assert_eq!(
                    m.allocation.iter().map(|&x| x as usize).sum::<usize>(),
                    103,
                    "{} batch {batch}",
                    kind.name()
                );
                assert!((0.0..=1.0).contains(&m.mean_quality));
                assert_eq!(session.remaining_budget(), 0);
                assert_eq!(session.pending_tasks(), 0);
                assert!(session.next_batch(5).is_empty(), "budget exhausted");
            }
        }
    }

    #[test]
    fn reported_tags_flow_into_quality() {
        let s = scenario(20, 43);
        let mut session = LiveSession::new(s, StrategyKind::Fp, &config(10));
        let before = session.metrics().mean_quality;
        let tasks = session.next_batch(4);
        assert_eq!(tasks.len(), 4);
        let reports: Vec<CompletionReport> = tasks
            .iter()
            .map(|t| CompletionReport {
                task_id: t.task_id,
                tags: Some(vec!["alpha".into(), "beta".into()]),
            })
            .collect();
        let outcome = session.report(&reports).unwrap();
        assert_eq!(outcome.accepted, 4);
        assert_eq!(outcome.delivered, 4);
        assert_eq!(outcome.undelivered, 0);
        let after = session.metrics().mean_quality;
        // Foreign tags are nothing like the references: quality must move.
        assert_ne!(before, after);
        assert_eq!(session.pending_tasks(), 0);
    }

    #[test]
    fn invalid_reports_leave_the_session_unchanged() {
        let s = scenario(20, 44);
        let mut session = LiveSession::new(s, StrategyKind::Rr, &config(10));
        let tasks = session.next_batch(2);
        let good = CompletionReport {
            task_id: tasks[0].task_id,
            tags: None,
        };

        // Unknown task id.
        let err = session
            .report(&[
                good.clone(),
                CompletionReport {
                    task_id: 999,
                    tags: None,
                },
            ])
            .unwrap_err();
        assert_eq!(err, SessionError::UnknownTask(999));
        assert_eq!(session.pending_tasks(), 2, "nothing was applied");

        // Duplicate task id within one report.
        let err = session.report(&[good.clone(), good.clone()]).unwrap_err();
        assert_eq!(err, SessionError::DuplicateTask(tasks[0].task_id));
        assert_eq!(session.pending_tasks(), 2);

        // Empty tag list.
        let err = session
            .report(&[CompletionReport {
                task_id: tasks[1].task_id,
                tags: Some(vec![]),
            }])
            .unwrap_err();
        assert_eq!(err, SessionError::EmptyPost(tasks[1].task_id));
        assert_eq!(session.pending_tasks(), 2);

        // The good report still goes through afterwards.
        assert!(session.report(&[good]).is_ok());
        assert_eq!(session.pending_tasks(), 1);
    }

    #[test]
    fn out_of_order_reports_are_accepted() {
        let s = scenario(20, 45);
        let mut session = LiveSession::new(s, StrategyKind::FpMu, &config(20));
        let first = session.next_batch(3);
        let second = session.next_batch(3);
        // Report the second batch before the first, in reverse order.
        let reports: Vec<CompletionReport> = second
            .iter()
            .rev()
            .chain(first.iter().rev())
            .map(|t| CompletionReport {
                task_id: t.task_id,
                tags: None,
            })
            .collect();
        let outcome = session.report(&reports).unwrap();
        assert_eq!(outcome.accepted, 6);
        assert_eq!(session.pending_tasks(), 0);
        let m = session.metrics();
        assert_eq!(m.allocation.iter().map(|&x| x as usize).sum::<usize>(), 6);
    }
}
