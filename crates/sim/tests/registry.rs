//! Property tests for the shard-routing invariants of
//! [`tagging_sim::registry::SessionRegistry`]: any set of session ids must be
//! *fully partitioned* across the shards — every id lands in exactly one
//! shard, nothing is lost, nothing is duplicated, and routing is a pure
//! function of the id.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

use proptest::prelude::*;

use delicious_sim::generator::{generate, GeneratorConfig};
use tagging_core::stability::StabilityParams;
use tagging_sim::engine::RunConfig;
use tagging_sim::registry::{SessionRegistry, SharedSession};
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::session::LiveSession;
use tagging_strategies::StrategyKind;

/// One tiny shared session reused for every registration: the partition
/// invariants are about ids and shards, not about session contents.
fn placeholder_session() -> SharedSession {
    static SESSION: OnceLock<SharedSession> = OnceLock::new();
    Arc::clone(SESSION.get_or_init(|| {
        let corpus = generate(&GeneratorConfig::small(8, 1));
        let scenario = Scenario::from_corpus(
            &corpus,
            &ScenarioParams {
                stability: StabilityParams::new(10, 0.995),
                under_tagged_threshold: 10,
            },
        );
        let config = RunConfig {
            budget: 8,
            omega: 5,
            seed: 1,
        };
        Arc::new(Mutex::new(LiveSession::new(
            scenario,
            StrategyKind::Rr,
            &config,
        )))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every id routes to exactly one in-range shard, and routing is stable.
    #[test]
    fn routing_is_an_in_range_pure_function(
        ids in proptest::collection::vec(0u64..u64::MAX, 0..128),
        shards in 1usize..64,
    ) {
        let registry = SessionRegistry::new(shards);
        prop_assert!(registry.shard_count().is_power_of_two());
        prop_assert!(registry.shard_count() >= shards);
        for &id in &ids {
            let shard = registry.shard_of(id);
            prop_assert!(shard < registry.shard_count());
            prop_assert_eq!(shard, registry.shard_of(id), "routing must be stable");
        }
    }

    /// Inserting any id set partitions it exactly: per-shard sizes sum to the
    /// number of distinct ids, every id is retrievable, and removal empties
    /// the registry completely.
    #[test]
    fn any_id_set_is_fully_partitioned(
        ids in proptest::collection::btree_set(0u64..u64::MAX, 0..96),
        shards in 1usize..64,
    ) {
        let registry = SessionRegistry::new(shards);
        for &id in &ids {
            prop_assert!(registry.insert(id, placeholder_session()).is_none());
        }
        prop_assert_eq!(registry.len(), ids.len());
        prop_assert_eq!(
            registry.shard_sizes().iter().sum::<usize>(),
            ids.len(),
            "shard sizes must sum to the id count (no loss, no duplication)"
        );
        prop_assert_eq!(
            registry.ids(),
            ids.iter().copied().collect::<Vec<u64>>(),
            "the union of the shards is exactly the inserted id set"
        );
        for &id in &ids {
            prop_assert!(registry.get(id).is_some());
        }
        // An id that was never inserted is found in no shard.
        let absent: Vec<u64> = (0..4)
            .map(|k| 0xdead_beef_0000_0000u64 | k)
            .filter(|id| !ids.contains(id))
            .collect();
        for id in absent {
            prop_assert!(registry.get(id).is_none());
        }
        for &id in &ids {
            prop_assert!(registry.remove(id).is_some());
        }
        prop_assert!(registry.is_empty());
    }

    /// Re-inserting an existing id replaces in place: the count is unchanged
    /// and the previous occupant comes back.
    #[test]
    fn reinsertion_replaces_in_place(
        ids in proptest::collection::btree_set(0u64..1_000, 1..32),
    ) {
        let registry = SessionRegistry::new(8);
        for &id in &ids {
            registry.insert(id, placeholder_session());
        }
        let ids_vec: Vec<u64> = ids.iter().copied().collect();
        let victim = ids_vec[ids_vec.len() / 2];
        prop_assert!(registry.insert(victim, placeholder_session()).is_some());
        prop_assert_eq!(registry.len(), ids.len());
    }
}

/// With one shard the registry is exactly the single-lock design: everything
/// lands in shard 0.
#[test]
fn one_shard_degenerates_to_the_single_lock_design() {
    let registry = SessionRegistry::new(1);
    assert_eq!(registry.shard_count(), 1);
    let ids: BTreeSet<u64> = [0, 1, 7, 42, u64::MAX].into_iter().collect();
    for &id in &ids {
        assert_eq!(registry.shard_of(id), 0);
        registry.insert(id, placeholder_session());
    }
    assert_eq!(registry.shard_sizes(), vec![ids.len()]);
}
