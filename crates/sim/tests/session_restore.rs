//! Recovery equivalence for [`LiveSession`] journals: a session restored from
//! its extracted journal at *any* batch boundary, then driven to completion,
//! must end bit-identical (by [`RunMetrics::fingerprint`]) to the session
//! that ran uninterrupted — for every strategy, including the
//! observation-order-sensitive MU / FP-MU.
//!
//! This is the sim-level half of the durability proof: `tagging-persist`
//! stores journals, and this suite pins that replaying a journal is a
//! faithful restore.

use delicious_sim::generator::{generate, GeneratorConfig};
use tagging_core::stability::StabilityParams;
use tagging_sim::engine::RunConfig;
use tagging_sim::scenario::{Scenario, ScenarioParams};
use tagging_sim::session::{CompletionReport, LiveSession, SessionError, SessionEvent};
use tagging_strategies::StrategyKind;

fn scenario(n: usize, seed: u64) -> Scenario {
    let corpus = generate(&GeneratorConfig::small(n, seed));
    Scenario::from_corpus(
        &corpus,
        &ScenarioParams {
            stability: StabilityParams::new(10, 0.995),
            under_tagged_threshold: 10,
        },
    )
}

fn config(budget: usize) -> RunConfig {
    RunConfig {
        budget,
        omega: 5,
        seed: 7,
    }
}

/// Drives one batch of up to `batch` tasks and reports every lease — most by
/// recorded-future replay, every third with explicit foreign tags, so the
/// journal contains both report flavors (and the restored session must intern
/// the same tag names into its dictionary). Returns false once the budget is
/// exhausted.
fn drive_one_batch(session: &mut LiveSession<'_>, batch: usize, step: usize) -> bool {
    let tasks = session.next_batch(batch);
    if tasks.is_empty() {
        return false;
    }
    let reports: Vec<CompletionReport> = tasks
        .iter()
        .enumerate()
        .map(|(j, t)| CompletionReport {
            task_id: t.task_id,
            tags: if (step + j).is_multiple_of(3) {
                Some(vec![format!("tag-{}", (step * 31 + j) % 11), "x".into()])
            } else {
                None
            },
        })
        .collect();
    session
        .report(&reports)
        .expect("reports reference freshly leased tasks");
    true
}

#[test]
fn restore_at_every_batch_boundary_matches_the_uninterrupted_run() {
    let s = scenario(25, 91);
    let cfg = config(120);
    let batch = 7; // not a divisor of the budget: the final batch is partial
    let boundaries = cfg.budget.div_ceil(batch);

    for kind in StrategyKind::ALL {
        // Reference: one uninterrupted run.
        let mut reference = LiveSession::new(s.clone(), kind, &cfg).with_journal();
        let mut step = 0;
        while drive_one_batch(&mut reference, batch, step) {
            step += 1;
        }
        let reference_fp = reference.metrics().fingerprint();
        let reference_journal = reference.journal().expect("journal enabled").to_vec();

        for boundary in 0..=boundaries {
            // Run the first `boundary` batches, extract the journal…
            let mut first = LiveSession::new(s.clone(), kind, &cfg).with_journal();
            for step in 0..boundary {
                drive_one_batch(&mut first, batch, step);
            }
            let journal = first.journal().expect("journal enabled").to_vec();

            // …restore a fresh session from it…
            let mut restored = LiveSession::new(s.clone(), kind, &cfg).with_journal();
            restored
                .replay_events(&journal)
                .expect("journal replays onto an identical session");
            assert_eq!(
                restored.journal().expect("journal enabled"),
                &journal[..],
                "{} boundary {boundary}: replay must re-record the journal",
                kind.name()
            );
            assert_eq!(
                restored.budget_spent(),
                first.budget_spent(),
                "{} boundary {boundary}",
                kind.name()
            );
            assert_eq!(
                restored.metrics().fingerprint(),
                first.metrics().fingerprint(),
                "{} boundary {boundary}: restored state diverged",
                kind.name()
            );

            // …and drive it to completion: the final state must be the
            // uninterrupted run's, bit for bit.
            let mut step = boundary;
            while drive_one_batch(&mut restored, batch, step) {
                step += 1;
            }
            assert_eq!(
                restored.metrics().fingerprint(),
                reference_fp,
                "{} boundary {boundary}: completed run diverged",
                kind.name()
            );
            assert_eq!(
                restored.journal().expect("journal enabled"),
                &reference_journal[..],
                "{} boundary {boundary}: completed journal diverged",
                kind.name()
            );
        }
    }
}

#[test]
fn replay_on_a_mismatched_session_reports_divergence() {
    let s = scenario(12, 17);
    let cfg = config(30);
    let mut session = LiveSession::new(s.clone(), StrategyKind::Fp, &cfg).with_journal();
    while drive_one_batch(&mut session, 8, 0) {}
    let journal = session.journal().unwrap().to_vec();
    assert!(!journal.is_empty());

    // A smaller budget cannot honor the recorded leases.
    let mut small = LiveSession::new(s, StrategyKind::Fp, &config(10)).with_journal();
    let err = small.replay_events(&journal).unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::ReplayDivergence { .. } | SessionError::UnknownTask(_)
        ),
        "unexpected error {err:?}"
    );
}

#[test]
fn journal_records_leases_and_reports_in_order() {
    let s = scenario(10, 5);
    let mut session = LiveSession::new(s, StrategyKind::Rr, &config(10)).with_journal();
    let tasks = session.next_batch(4);
    let reports: Vec<CompletionReport> = tasks
        .iter()
        .map(|t| CompletionReport {
            task_id: t.task_id,
            tags: None,
        })
        .collect();
    session.report(&reports).unwrap();
    // A rejected report must not be journaled.
    assert!(session
        .report(&[CompletionReport {
            task_id: 999,
            tags: None,
        }])
        .is_err());
    // A zero-size lease (after exhaustion) must not be journaled.
    session.next_batch(6);
    session.next_batch(5);
    let journal = session.journal().unwrap();
    assert_eq!(journal.len(), 3);
    assert_eq!(journal[0], SessionEvent::Lease { k: 4 });
    assert!(matches!(&journal[1], SessionEvent::Report { reports } if reports.len() == 4));
    assert_eq!(journal[2], SessionEvent::Lease { k: 6 });
}
