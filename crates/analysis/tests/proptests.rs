//! Property-based tests for the analysis crate: correlation measures behave
//! like correlations, the fast Kendall implementations agree with their naive
//! oracles, and top-k queries satisfy basic ranking invariants.

use proptest::prelude::*;

use tagging_analysis::accuracy::{pairwise_similarities, pairwise_similarities_with};
use tagging_analysis::correlation::{
    kendall_tau, kendall_tau_a, kendall_tau_a_naive, kendall_tau_a_with, kendall_tau_naive,
    kendall_tau_with, pearson,
};
use tagging_analysis::topk::{overlap_fraction, top_k_similar};
use tagging_core::model::TagId;
use tagging_core::rfd::Rfd;
use tagging_runtime::Runtime;

/// Strategy: a sample of 2–60 values drawn from a small discrete set (to force
/// plenty of ties, the hard case for Kendall implementations).
fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u8..12, 2..60)
        .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
}

/// Strategy: a set of 2–12 sparse rfds over a 10-tag universe.
fn arb_rfds() -> impl Strategy<Value = Vec<Rfd>> {
    proptest::collection::vec(proptest::collection::vec((0u32..10, 1u64..20), 1..6), 2..12)
        .prop_map(|resources| {
            resources
                .into_iter()
                .map(|counts| Rfd::from_counts(counts.into_iter().map(|(t, c)| (TagId(t), c))))
                .collect()
        })
}

proptest! {
    /// Fast τ-b matches the naive oracle.
    #[test]
    fn kendall_tau_b_matches_naive(x in arb_sample(), y in arb_sample()) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        prop_assert!((kendall_tau(x, y) - kendall_tau_naive(x, y)).abs() < 1e-9);
    }

    /// Fast τ-a matches the naive oracle.
    #[test]
    fn kendall_tau_a_matches_naive(x in arb_sample(), y in arb_sample()) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        prop_assert!((kendall_tau_a(x, y) - kendall_tau_a_naive(x, y)).abs() < 1e-9);
    }

    /// The tiled τ-a/τ-b kernels equal their naive oracles **bitwise** at any
    /// thread count. At 1 thread this also pins the Knight's fallback against
    /// the naive definition bit-for-bit — the equality the adaptive kernel
    /// selection in `kendall_tau_*_with` relies on.
    #[test]
    fn tiled_kendall_matches_naive_bitwise(x in arb_sample(), y in arb_sample()) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        for threads in [1usize, 2, 3, 8] {
            let rt = Runtime::new(threads);
            prop_assert_eq!(
                kendall_tau_a_with(&rt, x, y).to_bits(),
                kendall_tau_a_naive(x, y).to_bits(),
                "τ-a diverged at {} threads", threads
            );
            prop_assert_eq!(
                kendall_tau_with(&rt, x, y).to_bits(),
                kendall_tau_naive(x, y).to_bits(),
                "τ-b diverged at {} threads", threads
            );
        }
    }

    /// The tiled pairwise-similarity kernel equals the sequential row-major
    /// loop bitwise at any thread count.
    #[test]
    fn tiled_pairwise_matches_sequential_bitwise(rfds in arb_rfds()) {
        let reference = pairwise_similarities_with(&Runtime::sequential(), &rfds);
        prop_assert_eq!(reference.len(), rfds.len() * (rfds.len() - 1) / 2);
        prop_assert_eq!(&reference, &pairwise_similarities(&rfds));
        for threads in [2usize, 8] {
            let tiled = pairwise_similarities_with(&Runtime::new(threads), &rfds);
            prop_assert_eq!(tiled.len(), reference.len());
            for (k, (a, b)) in tiled.iter().zip(&reference).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "pair {} diverged at {} threads", k, threads);
            }
        }
    }

    /// Both τ variants and Pearson are bounded, symmetric in their arguments'
    /// joint permutation, and equal to ±1 / 0 in the obvious degenerate cases.
    #[test]
    fn correlations_are_bounded_and_symmetric(x in arb_sample(), y in arb_sample()) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        for value in [kendall_tau(x, y), kendall_tau_a(x, y), pearson(x, y)] {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&value));
        }
        prop_assert!((kendall_tau(x, y) - kendall_tau(y, x)).abs() < 1e-9);
        prop_assert!((kendall_tau_a(x, y) - kendall_tau_a(y, x)).abs() < 1e-9);
        prop_assert!((pearson(x, y) - pearson(y, x)).abs() < 1e-9);
    }

    /// A sample correlates perfectly with itself (when it has any variation).
    #[test]
    fn self_correlation_is_one(x in arb_sample()) {
        let has_variation = x.windows(2).any(|w| w[0] != w[1]);
        if has_variation {
            prop_assert!((pearson(&x, &x) - 1.0).abs() < 1e-9);
            prop_assert!((kendall_tau(&x, &x) - 1.0).abs() < 1e-9);
            prop_assert!(kendall_tau_a(&x, &x) > 0.0);
        }
    }

    /// Top-k results are sorted by similarity, exclude the subject, and are a
    /// subset of the resource set; overlap with themselves is always 1.
    #[test]
    fn top_k_invariants(rfds in arb_rfds(), k in 1usize..15) {
        let subject = tagging_core::model::ResourceId(0);
        let top = top_k_similar(subject, &rfds, k);
        prop_assert!(top.len() <= k.min(rfds.len() - 1));
        for window in top.windows(2) {
            prop_assert!(window[0].similarity >= window[1].similarity - 1e-12);
        }
        for entry in &top {
            prop_assert!(entry.resource != subject);
            prop_assert!((entry.resource.index()) < rfds.len());
            prop_assert!((0.0..=1.0 + 1e-12).contains(&entry.similarity));
        }
        if !top.is_empty() {
            prop_assert!((overlap_fraction(&top, &top) - 1.0).abs() < 1e-12);
        }
    }
}
