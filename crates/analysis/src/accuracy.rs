//! Overall accuracy of resource–resource similarity (paper §V-C.2, Figure 7).
//!
//! Following Markines et al. (the framework the paper adopts), all resource
//! pairs are ranked by the cosine similarity of their rfds; that ranking is then
//! compared to a ground-truth ranking — in the paper the Open Directory Project
//! category hierarchy, here the synthetic [`Taxonomy`] — with Kendall's τ.
//!
//! The headline result is Figure 7(b): across allocation strategies and budgets,
//! the ranking accuracy correlates almost perfectly (the paper reports > 98%)
//! with the tagging-quality metric, confirming that tagging quality is a good
//! proxy for downstream IR usefulness.

use tagging_core::model::{Post, ResourceId};
use tagging_core::rfd::{FrequencyTracker, Rfd};
use tagging_core::similarity::cosine;
use tagging_runtime::Runtime;

use delicious_sim::taxonomy::Taxonomy;

use crate::correlation::kendall_tau_a_with;
use crate::tiles::{pair_row_tiles, pairs_in_rows};

/// Computes the rfd of every resource from its initial posts plus any delivered
/// posts (the state after an allocation run).
pub fn rfds_after_allocation(initial: &[Vec<Post>], delivered: &[Vec<Post>]) -> Vec<Rfd> {
    assert_eq!(
        initial.len(),
        delivered.len(),
        "initial and delivered posts must cover the same resources"
    );
    initial
        .iter()
        .zip(delivered.iter())
        .map(|(init, extra)| {
            let mut tracker = FrequencyTracker::from_posts(init.iter());
            for post in extra {
                tracker.push(post);
            }
            tracker.rfd()
        })
        .collect()
}

/// Cosine similarity of every unordered resource pair `(i, j)`, `i < j`, in a
/// fixed row-major pair order, on the process-default [`Runtime`].
///
/// Returns an empty vector when there are fewer than two resources.
pub fn pairwise_similarities(rfds: &[Rfd]) -> Vec<f64> {
    pairwise_similarities_with(&Runtime::from_env(), rfds)
}

/// [`pairwise_similarities`] on an explicit [`Runtime`].
///
/// The `O(n²)` pair loop — the analysis crate's hot path behind the Figure 7
/// ranking-accuracy experiment — is split into blocked row-range tiles (see
/// [`crate::tiles`]), each tile computed independently and reassembled in the
/// fixed row-major pair order, so the result is bit-identical at any thread
/// count.
pub fn pairwise_similarities_with(runtime: &Runtime, rfds: &[Rfd]) -> Vec<f64> {
    let n = rfds.len();
    // Guard n < 2 explicitly: `n * (n - 1) / 2` underflows `usize` for n = 0
    // (a panic in debug builds before this guard existed) and there are no
    // pairs to report anyway.
    if n < 2 {
        return Vec::new();
    }
    let tiles = pair_row_tiles(n, runtime.recommended_tiles());
    let blocks = runtime.par_map(&tiles, |rows| {
        let mut block = Vec::with_capacity(pairs_in_rows(n, rows));
        for i in rows.clone() {
            for j in (i + 1)..n {
                block.push(cosine(&rfds[i], &rfds[j]));
            }
        }
        block
    });
    let mut similarities = Vec::with_capacity(n * (n - 1) / 2);
    for block in blocks {
        similarities.extend(block);
    }
    similarities
}

/// Ground-truth similarity of every unordered resource pair in the same pair
/// order as [`pairwise_similarities`], derived from taxonomy distance, on the
/// process-default [`Runtime`].
///
/// Returns an empty vector when there are fewer than two resources.
pub fn ground_truth_similarities(taxonomy: &Taxonomy, num_resources: usize) -> Vec<f64> {
    ground_truth_similarities_with(&Runtime::from_env(), taxonomy, num_resources)
}

/// [`ground_truth_similarities`] on an explicit [`Runtime`]; tiled exactly
/// like [`pairwise_similarities_with`] and bit-identical at any thread count.
pub fn ground_truth_similarities_with(
    runtime: &Runtime,
    taxonomy: &Taxonomy,
    num_resources: usize,
) -> Vec<f64> {
    let n = num_resources;
    // Same `n * (n - 1) / 2` underflow guard as pairwise_similarities_with.
    if n < 2 {
        return Vec::new();
    }
    let tiles = pair_row_tiles(n, runtime.recommended_tiles());
    let blocks = runtime.par_map(&tiles, |rows| {
        let mut block = Vec::with_capacity(pairs_in_rows(n, rows));
        for i in rows.clone() {
            for j in (i + 1)..n {
                block.push(
                    taxonomy.ground_truth_similarity(ResourceId(i as u32), ResourceId(j as u32)),
                );
            }
        }
        block
    });
    let mut similarities = Vec::with_capacity(n * (n - 1) / 2);
    for block in blocks {
        similarities.extend(block);
    }
    similarities
}

/// The paper's ranking-accuracy measure: Kendall's τ between the rfd-based pair
/// ranking and the taxonomy-based ground truth ranking.
///
/// The τ-a variant is used because the taxonomy ground truth has massive ties
/// (every cross-topic pair shares the same distance); the tie-corrected τ-b
/// denominator would otherwise reward impoverished rfds for producing many
/// tied (zero) similarities.
pub fn ranking_accuracy(rfds: &[Rfd], taxonomy: &Taxonomy) -> f64 {
    ranking_accuracy_with(&Runtime::from_env(), rfds, taxonomy)
}

/// [`ranking_accuracy`] on an explicit [`Runtime`]: the tiled pairwise /
/// ground-truth kernels plus [`kendall_tau_a_with`], end to end bit-identical
/// at any thread count.
pub fn ranking_accuracy_with(runtime: &Runtime, rfds: &[Rfd], taxonomy: &Taxonomy) -> f64 {
    if rfds.len() < 2 {
        return 0.0;
    }
    let observed = pairwise_similarities_with(runtime, rfds);
    let truth = ground_truth_similarities_with(runtime, taxonomy, rfds.len());
    kendall_tau_a_with(runtime, &observed, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delicious_sim::generator::{generate, GeneratorConfig};
    use delicious_sim::taxonomy::Taxonomy;
    use tagging_core::model::TagId;

    fn rfd(pairs: &[(u32, u64)]) -> Rfd {
        Rfd::from_counts(pairs.iter().map(|&(t, c)| (TagId(t), c)))
    }

    #[test]
    fn pairwise_similarities_cover_all_pairs_in_order() {
        let rfds = vec![rfd(&[(0, 1)]), rfd(&[(0, 1)]), rfd(&[(1, 1)])];
        let sims = pairwise_similarities(&rfds);
        assert_eq!(sims.len(), 3);
        assert!((sims[0] - 1.0).abs() < 1e-12); // (0, 1) identical
        assert!(sims[1].abs() < 1e-12); // (0, 2) disjoint
        assert!(sims[2].abs() < 1e-12); // (1, 2) disjoint
    }

    #[test]
    fn ground_truth_similarities_follow_taxonomy() {
        let mut taxonomy = Taxonomy::new();
        let a = taxonomy.add_category(taxonomy.root(), "A");
        let b = taxonomy.add_category(taxonomy.root(), "B");
        taxonomy.assign(ResourceId(0), a);
        taxonomy.assign(ResourceId(1), a);
        taxonomy.assign(ResourceId(2), b);
        let truth = ground_truth_similarities(&taxonomy, 3);
        assert_eq!(truth.len(), 3);
        assert!(truth[0] > truth[1]); // same category pair is most similar
        assert!((truth[1] - truth[2]).abs() < 1e-12);
    }

    #[test]
    fn rfds_after_allocation_append_delivered_posts() {
        let p = |t: u32| Post::new([TagId(t)]).unwrap();
        let initial = vec![vec![p(0)], vec![p(1)]];
        let delivered = vec![vec![p(2)], vec![]];
        let rfds = rfds_after_allocation(&initial, &delivered);
        assert_eq!(rfds.len(), 2);
        assert!(rfds[0].get(TagId(2)) > 0.0);
        assert_eq!(rfds[1].get(TagId(2)), 0.0);
    }

    #[test]
    fn perfect_rfds_score_higher_than_noisy_rfds() {
        // Accuracy computed from the resources' *true* distributions must exceed
        // accuracy computed from impoverished single-post rfds.
        let corpus = generate(&GeneratorConfig::small(40, 91));
        let true_rfds: Vec<Rfd> = corpus
            .resource_ids()
            .map(|id| corpus.true_distribution(id).clone())
            .collect();
        let poor_rfds: Vec<Rfd> = corpus
            .resource_ids()
            .map(|id| tagging_core::rfd::rfd_of_prefix(corpus.full_sequence(id), 1))
            .collect();
        let accurate = ranking_accuracy(&true_rfds, &corpus.taxonomy);
        let poor = ranking_accuracy(&poor_rfds, &corpus.taxonomy);
        assert!(
            accurate > poor,
            "true-distribution accuracy {accurate} should beat single-post accuracy {poor}"
        );
        assert!(accurate > 0.0);
    }

    #[test]
    fn ranking_accuracy_degenerate_inputs() {
        let taxonomy = Taxonomy::new();
        assert_eq!(ranking_accuracy(&[], &taxonomy), 0.0);
        assert_eq!(ranking_accuracy(&[rfd(&[(0, 1)])], &taxonomy), 0.0);
    }

    #[test]
    fn pairwise_similarities_handle_zero_and_one_resource() {
        // Regression: `n * (n - 1) / 2` underflowed usize for n = 0 and
        // panicked in debug builds before the empty guard.
        assert!(pairwise_similarities(&[]).is_empty());
        assert!(pairwise_similarities(&[rfd(&[(0, 1)])]).is_empty());
    }

    #[test]
    fn ground_truth_similarities_handle_zero_and_one_resource() {
        let taxonomy = Taxonomy::new();
        assert!(ground_truth_similarities(&taxonomy, 0).is_empty());
        assert!(ground_truth_similarities(&taxonomy, 1).is_empty());
    }

    #[test]
    fn tiled_pairwise_kernels_are_bit_identical_across_thread_counts() {
        let corpus = generate(&GeneratorConfig::small(40, 91));
        let rfds: Vec<Rfd> = corpus
            .resource_ids()
            .map(|id| corpus.true_distribution(id).clone())
            .collect();
        let runtime = tagging_runtime::Runtime::sequential();
        let reference_pairs = pairwise_similarities_with(&runtime, &rfds);
        let reference_truth =
            ground_truth_similarities_with(&runtime, &corpus.taxonomy, rfds.len());
        let reference_accuracy = ranking_accuracy_with(&runtime, &rfds, &corpus.taxonomy);
        assert_eq!(reference_pairs.len(), rfds.len() * (rfds.len() - 1) / 2);
        for threads in [2, 8] {
            let runtime = tagging_runtime::Runtime::new(threads);
            let pairs = pairwise_similarities_with(&runtime, &rfds);
            assert_eq!(pairs.len(), reference_pairs.len(), "threads {threads}");
            for (k, (a, b)) in pairs.iter().zip(&reference_pairs).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}, pair {k}");
            }
            let truth = ground_truth_similarities_with(&runtime, &corpus.taxonomy, rfds.len());
            for (k, (a, b)) in truth.iter().zip(&reference_truth).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads {threads}, pair {k}");
            }
            assert_eq!(
                ranking_accuracy_with(&runtime, &rfds, &corpus.taxonomy).to_bits(),
                reference_accuracy.to_bits(),
                "threads {threads}: ranking accuracy diverged bitwise"
            );
        }
    }
}
