//! Overall accuracy of resource–resource similarity (paper §V-C.2, Figure 7).
//!
//! Following Markines et al. (the framework the paper adopts), all resource
//! pairs are ranked by the cosine similarity of their rfds; that ranking is then
//! compared to a ground-truth ranking — in the paper the Open Directory Project
//! category hierarchy, here the synthetic [`Taxonomy`] — with Kendall's τ.
//!
//! The headline result is Figure 7(b): across allocation strategies and budgets,
//! the ranking accuracy correlates almost perfectly (the paper reports > 98%)
//! with the tagging-quality metric, confirming that tagging quality is a good
//! proxy for downstream IR usefulness.

use tagging_core::model::{Post, ResourceId};
use tagging_core::rfd::{FrequencyTracker, Rfd};
use tagging_core::similarity::cosine;

use delicious_sim::taxonomy::Taxonomy;

use crate::correlation::kendall_tau_a;

/// Computes the rfd of every resource from its initial posts plus any delivered
/// posts (the state after an allocation run).
pub fn rfds_after_allocation(initial: &[Vec<Post>], delivered: &[Vec<Post>]) -> Vec<Rfd> {
    assert_eq!(
        initial.len(),
        delivered.len(),
        "initial and delivered posts must cover the same resources"
    );
    initial
        .iter()
        .zip(delivered.iter())
        .map(|(init, extra)| {
            let mut tracker = FrequencyTracker::from_posts(init.iter());
            for post in extra {
                tracker.push(post);
            }
            tracker.rfd()
        })
        .collect()
}

/// Cosine similarity of every unordered resource pair `(i, j)`, `i < j`, in a
/// fixed row-major pair order.
pub fn pairwise_similarities(rfds: &[Rfd]) -> Vec<f64> {
    let n = rfds.len();
    let mut similarities = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            similarities.push(cosine(&rfds[i], &rfds[j]));
        }
    }
    similarities
}

/// Ground-truth similarity of every unordered resource pair in the same pair
/// order as [`pairwise_similarities`], derived from taxonomy distance.
pub fn ground_truth_similarities(taxonomy: &Taxonomy, num_resources: usize) -> Vec<f64> {
    let mut similarities = Vec::with_capacity(num_resources * (num_resources - 1) / 2);
    for i in 0..num_resources {
        for j in (i + 1)..num_resources {
            similarities
                .push(taxonomy.ground_truth_similarity(ResourceId(i as u32), ResourceId(j as u32)));
        }
    }
    similarities
}

/// The paper's ranking-accuracy measure: Kendall's τ between the rfd-based pair
/// ranking and the taxonomy-based ground truth ranking.
///
/// The τ-a variant is used because the taxonomy ground truth has massive ties
/// (every cross-topic pair shares the same distance); the tie-corrected τ-b
/// denominator would otherwise reward impoverished rfds for producing many
/// tied (zero) similarities.
pub fn ranking_accuracy(rfds: &[Rfd], taxonomy: &Taxonomy) -> f64 {
    if rfds.len() < 2 {
        return 0.0;
    }
    let observed = pairwise_similarities(rfds);
    let truth = ground_truth_similarities(taxonomy, rfds.len());
    kendall_tau_a(&observed, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delicious_sim::generator::{generate, GeneratorConfig};
    use delicious_sim::taxonomy::Taxonomy;
    use tagging_core::model::TagId;

    fn rfd(pairs: &[(u32, u64)]) -> Rfd {
        Rfd::from_counts(pairs.iter().map(|&(t, c)| (TagId(t), c)))
    }

    #[test]
    fn pairwise_similarities_cover_all_pairs_in_order() {
        let rfds = vec![rfd(&[(0, 1)]), rfd(&[(0, 1)]), rfd(&[(1, 1)])];
        let sims = pairwise_similarities(&rfds);
        assert_eq!(sims.len(), 3);
        assert!((sims[0] - 1.0).abs() < 1e-12); // (0, 1) identical
        assert!(sims[1].abs() < 1e-12); // (0, 2) disjoint
        assert!(sims[2].abs() < 1e-12); // (1, 2) disjoint
    }

    #[test]
    fn ground_truth_similarities_follow_taxonomy() {
        let mut taxonomy = Taxonomy::new();
        let a = taxonomy.add_category(taxonomy.root(), "A");
        let b = taxonomy.add_category(taxonomy.root(), "B");
        taxonomy.assign(ResourceId(0), a);
        taxonomy.assign(ResourceId(1), a);
        taxonomy.assign(ResourceId(2), b);
        let truth = ground_truth_similarities(&taxonomy, 3);
        assert_eq!(truth.len(), 3);
        assert!(truth[0] > truth[1]); // same category pair is most similar
        assert!((truth[1] - truth[2]).abs() < 1e-12);
    }

    #[test]
    fn rfds_after_allocation_append_delivered_posts() {
        let p = |t: u32| Post::new([TagId(t)]).unwrap();
        let initial = vec![vec![p(0)], vec![p(1)]];
        let delivered = vec![vec![p(2)], vec![]];
        let rfds = rfds_after_allocation(&initial, &delivered);
        assert_eq!(rfds.len(), 2);
        assert!(rfds[0].get(TagId(2)) > 0.0);
        assert_eq!(rfds[1].get(TagId(2)), 0.0);
    }

    #[test]
    fn perfect_rfds_score_higher_than_noisy_rfds() {
        // Accuracy computed from the resources' *true* distributions must exceed
        // accuracy computed from impoverished single-post rfds.
        let corpus = generate(&GeneratorConfig::small(40, 91));
        let true_rfds: Vec<Rfd> = corpus
            .resource_ids()
            .map(|id| corpus.true_distribution(id).clone())
            .collect();
        let poor_rfds: Vec<Rfd> = corpus
            .resource_ids()
            .map(|id| tagging_core::rfd::rfd_of_prefix(corpus.full_sequence(id), 1))
            .collect();
        let accurate = ranking_accuracy(&true_rfds, &corpus.taxonomy);
        let poor = ranking_accuracy(&poor_rfds, &corpus.taxonomy);
        assert!(
            accurate > poor,
            "true-distribution accuracy {accurate} should beat single-post accuracy {poor}"
        );
        assert!(accurate > 0.0);
    }

    #[test]
    fn ranking_accuracy_degenerate_inputs() {
        let taxonomy = Taxonomy::new();
        assert_eq!(ranking_accuracy(&[], &taxonomy), 0.0);
        assert_eq!(ranking_accuracy(&[rfd(&[(0, 1)])], &taxonomy), 0.0);
    }
}
