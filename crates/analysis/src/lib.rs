//! # tagging-analysis
//!
//! Downstream-application analysis for the reproduction of *"On Incentive-based
//! Tagging"* (ICDE 2013): the §V-C case studies that show how better tagging
//! quality translates into better resource–resource similarity measurements.
//!
//! * [`topk`] — top-k most-similar-resources queries (Tables VI and VII);
//! * [`accuracy`] — overall ranking accuracy of pairwise similarities against a
//!   taxonomy ground truth, measured with Kendall's τ (Figure 7);
//! * [`correlation`] — Pearson and Kendall correlation primitives
//!   (the paper's Equation 15 and the τ measure of §V-C.2).
//!
//! ## Quick example
//!
//! ```
//! use tagging_analysis::correlation::{kendall_tau, pearson};
//!
//! // Quality and accuracy move together: a perfectly monotone relationship
//! // scores 1 under both correlation measures.
//! let quality = [0.2, 0.4, 0.6, 0.8];
//! let accuracy = [0.50, 0.61, 0.72, 0.83];
//! assert!((pearson(&quality, &accuracy) - 1.0).abs() < 1e-6);
//! assert!((kendall_tau(&quality, &accuracy) - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod accuracy;
pub mod correlation;
mod tiles;
pub mod topk;

pub use accuracy::{
    ground_truth_similarities, ground_truth_similarities_with, pairwise_similarities,
    pairwise_similarities_with, ranking_accuracy, ranking_accuracy_with, rfds_after_allocation,
};
pub use correlation::{
    kendall_tau, kendall_tau_a, kendall_tau_a_naive, kendall_tau_a_with, kendall_tau_naive,
    kendall_tau_with, mean, pearson, std_dev,
};
pub use topk::{category_hits, overlap_fraction, top_k_similar, RankedResource};
