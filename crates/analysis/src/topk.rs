//! Top-k most-similar-resources queries (the paper's §V-C.1 case study,
//! Tables VI and VII).
//!
//! Given a subject resource, all other resources are ranked by the cosine
//! similarity of their rfds to the subject's rfd. The case study compares the
//! top-10 lists obtained from (a) the initial posts only, (b) posts after a
//! budget allocated by FC, (c) posts after the same budget allocated by FP, and
//! (d) the full data — showing how a good allocation strategy brings the list
//! close to the ideal one.

use tagging_core::model::ResourceId;
use tagging_core::rfd::Rfd;
use tagging_core::similarity::{CosineSimilarity, SimilarityMetric};

/// One entry of a top-k result list.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResource {
    /// The ranked resource.
    pub resource: ResourceId,
    /// Its similarity to the subject resource.
    pub similarity: f64,
}

/// Returns the `k` resources most similar to `subject` under cosine similarity
/// of the given rfds. The subject itself is excluded. Ties are broken by
/// resource id for deterministic output.
pub fn top_k_similar(subject: ResourceId, rfds: &[Rfd], k: usize) -> Vec<RankedResource> {
    top_k_similar_with_metric(subject, rfds, k, &CosineSimilarity)
}

/// [`top_k_similar`] with a custom similarity metric.
pub fn top_k_similar_with_metric<M: SimilarityMetric>(
    subject: ResourceId,
    rfds: &[Rfd],
    k: usize,
    metric: &M,
) -> Vec<RankedResource> {
    assert!(
        subject.index() < rfds.len(),
        "subject resource {subject} is out of range"
    );
    let subject_rfd = &rfds[subject.index()];
    let mut ranked: Vec<RankedResource> = rfds
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != subject.index())
        .map(|(i, rfd)| RankedResource {
            resource: ResourceId(i as u32),
            similarity: metric.similarity(subject_rfd, rfd),
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.resource.cmp(&b.resource))
    });
    ranked.truncate(k);
    ranked
}

/// Fraction of `candidate` entries that also appear in `reference`
/// (order-insensitive). This is the "9 out of 10 webpages match the ideal list"
/// measure the paper reports for Table VI.
pub fn overlap_fraction(candidate: &[RankedResource], reference: &[RankedResource]) -> f64 {
    if candidate.is_empty() {
        return 0.0;
    }
    let reference_ids: std::collections::HashSet<ResourceId> =
        reference.iter().map(|r| r.resource).collect();
    let hits = candidate
        .iter()
        .filter(|r| reference_ids.contains(&r.resource))
        .count();
    hits as f64 / candidate.len() as f64
}

/// Counts how many of the top-k candidates share the reference's *category*
/// according to the provided category lookup — the paper's "how many of the
/// top-10 are physics pages" style of assessment in Tables VI/VII.
pub fn category_hits<F>(candidate: &[RankedResource], is_relevant: F) -> usize
where
    F: Fn(ResourceId) -> bool,
{
    candidate.iter().filter(|r| is_relevant(r.resource)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagging_core::model::TagId;

    fn rfd(pairs: &[(u32, u64)]) -> Rfd {
        Rfd::from_counts(pairs.iter().map(|&(t, c)| (TagId(t), c)))
    }

    /// Five resources: 0 and 1 about "physics" (tags 0, 1), 2 about both
    /// (tags 1, 2), 3 and 4 about "java" (tags 2, 3).
    fn rfds() -> Vec<Rfd> {
        vec![
            rfd(&[(0, 3), (1, 1)]),
            rfd(&[(0, 2), (1, 2)]),
            rfd(&[(1, 2), (2, 2)]),
            rfd(&[(2, 3), (3, 1)]),
            rfd(&[(2, 1), (3, 3)]),
        ]
    }

    #[test]
    fn top_k_excludes_subject_and_orders_by_similarity() {
        let rfds = rfds();
        let top = top_k_similar(ResourceId(0), &rfds, 3);
        assert_eq!(top.len(), 3);
        assert!(top.iter().all(|r| r.resource != ResourceId(0)));
        // Resource 1 shares both tags with the subject and must rank first.
        assert_eq!(top[0].resource, ResourceId(1));
        // Similarities are non-increasing.
        for w in top.windows(2) {
            assert!(w[0].similarity >= w[1].similarity - 1e-12);
        }
    }

    #[test]
    fn top_k_truncates_and_handles_large_k() {
        let rfds = rfds();
        let top = top_k_similar(ResourceId(2), &rfds, 100);
        assert_eq!(top.len(), 4);
        let top1 = top_k_similar(ResourceId(2), &rfds, 1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn top_k_rejects_unknown_subject() {
        top_k_similar(ResourceId(99), &rfds(), 3);
    }

    #[test]
    fn overlap_fraction_counts_shared_entries() {
        let a = vec![
            RankedResource {
                resource: ResourceId(1),
                similarity: 0.9,
            },
            RankedResource {
                resource: ResourceId(2),
                similarity: 0.8,
            },
            RankedResource {
                resource: ResourceId(3),
                similarity: 0.7,
            },
        ];
        let b = vec![
            RankedResource {
                resource: ResourceId(2),
                similarity: 0.9,
            },
            RankedResource {
                resource: ResourceId(3),
                similarity: 0.8,
            },
            RankedResource {
                resource: ResourceId(4),
                similarity: 0.7,
            },
        ];
        assert!((overlap_fraction(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_fraction(&[], &b), 0.0);
        assert!((overlap_fraction(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_hits_uses_predicate() {
        let list = vec![
            RankedResource {
                resource: ResourceId(0),
                similarity: 0.9,
            },
            RankedResource {
                resource: ResourceId(3),
                similarity: 0.8,
            },
            RankedResource {
                resource: ResourceId(4),
                similarity: 0.7,
            },
        ];
        let physics = [ResourceId(0), ResourceId(1), ResourceId(2)];
        let hits = category_hits(&list, |r| physics.contains(&r));
        assert_eq!(hits, 1);
    }

    #[test]
    fn richer_rfds_produce_more_faithful_topk() {
        // The "subject" is truly about tags {0, 1}. With an impoverished rfd
        // (a few noisy early posts over tags 1 and 2) the mixed resource 2 wins
        // the top-1; with the full rfd the physics resource 1 wins — the
        // mechanism behind the paper's Table VI improvement.
        let mut rfds = rfds();
        let impoverished = rfd(&[(1, 1), (2, 1)]);
        rfds[0] = impoverished;
        let top_poor = top_k_similar(ResourceId(0), &rfds, 1);
        let rich = rfd(&[(0, 3), (1, 1)]);
        rfds[0] = rich;
        let top_rich = top_k_similar(ResourceId(0), &rfds, 1);
        assert_eq!(top_rich[0].resource, ResourceId(1));
        assert_ne!(top_poor[0].resource, top_rich[0].resource);
    }
}
