//! Rank and linear correlation measures used by the paper's §V-C.2:
//! Kendall's τ between similarity rankings and Pearson correlation
//! (the paper's Equation 15) between tagging quality and ranking accuracy.
//!
//! Both Kendall variants come in three flavours: the `O(m log m)` Knight's
//! implementations ([`kendall_tau`], [`kendall_tau_a`]), the naive `O(m²)`
//! oracles ([`kendall_tau_naive`], [`kendall_tau_a_naive`]) and the blocked
//! parallel kernels ([`kendall_tau_with`], [`kendall_tau_a_with`]) that
//! evaluate the naive definition in row-range tiles on a
//! [`Runtime`](tagging_runtime::Runtime). All three produce **bit-identical**
//! results on finite data: each one reduces to the same exact integer pair
//! counts (concordant, discordant, per-sample ties — all far below 2⁵³, so
//! exactly representable in `f64`) followed by the same final float
//! operations.

use std::cmp::Ordering;

use tagging_runtime::Runtime;

use crate::tiles::pair_row_tiles;

/// Pearson (linear) correlation coefficient of two equal-length samples —
/// the paper's Equation 15.
///
/// Returns 0 when either sample has zero variance or fewer than two points
/// (the correlation is undefined; 0 keeps downstream aggregation total).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return 0.0;
    }
    cov / (var_x.sqrt() * var_y.sqrt())
}

/// Arithmetic mean of a sample (0 for an empty sample).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (with the `n − 1` denominator); 0 when fewer than
/// two points.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Kendall's τ-b rank correlation between two equal-length samples,
/// tie-corrected, computed in `O(m log m)` with Knight's algorithm.
///
/// Values range from −1 (exactly opposite rankings) to 1 (identical rankings),
/// matching the description in the paper's §V-C.2. Returns 0 when fewer than
/// two points or when either sample is entirely tied.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }

    // Sort indices by (x, y).
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(y[a].partial_cmp(&y[b]).unwrap_or(std::cmp::Ordering::Equal))
    });

    let n0 = (m * (m - 1) / 2) as f64;

    // Ties in x, and joint ties in (x, y).
    let mut n1 = 0.0; // Σ t_x (t_x − 1) / 2
    let mut n3 = 0.0; // Σ t_xy (t_xy − 1) / 2
    {
        let mut i = 0;
        while i < m {
            let mut j = i + 1;
            while j < m && x[order[j]] == x[order[i]] {
                j += 1;
            }
            let tie = (j - i) as f64;
            n1 += tie * (tie - 1.0) / 2.0;
            // joint ties within this x-tie block
            let mut k = i;
            while k < j {
                let mut l = k + 1;
                while l < j && y[order[l]] == y[order[k]] {
                    l += 1;
                }
                let joint = (l - k) as f64;
                n3 += joint * (joint - 1.0) / 2.0;
                k = l;
            }
            i = j;
        }
    }

    // Ties in y.
    let mut y_sorted: Vec<f64> = y.to_vec();
    y_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut n2 = 0.0;
    {
        let mut i = 0;
        while i < m {
            let mut j = i + 1;
            while j < m && y_sorted[j] == y_sorted[i] {
                j += 1;
            }
            let tie = (j - i) as f64;
            n2 += tie * (tie - 1.0) / 2.0;
            i = j;
        }
    }

    // Discordant pairs = inversions of the y sequence ordered by (x, y).
    let y_in_x_order: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    let swaps = count_inversions(&y_in_x_order) as f64;

    let denominator = ((n0 - n1) * (n0 - n2)).sqrt();
    if denominator <= 0.0 {
        return 0.0;
    }
    (n0 - n1 - n2 + n3 - 2.0 * swaps) / denominator
}

/// Kendall's τ-a rank correlation: `(concordant − discordant) / (m(m−1)/2)`.
///
/// Unlike τ-b it applies no tie correction, which makes it the appropriate
/// variant when the ground-truth ranking has massive ties (as the taxonomy
/// distances in the Figure 7 experiment do): a pair tied in either ranking
/// simply contributes nothing, instead of inflating the coefficient through a
/// smaller tie-corrected denominator.
pub fn kendall_tau_a(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }

    // Sort indices by (x, y) and count discordant pairs (inversions of y among
    // pairs not tied in x) exactly as in Knight's algorithm.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(y[a].partial_cmp(&y[b]).unwrap_or(std::cmp::Ordering::Equal))
    });
    let n0 = (m as f64) * (m as f64 - 1.0) / 2.0;

    // Tie bookkeeping identical to kendall_tau().
    let mut n1 = 0.0;
    let mut n3 = 0.0;
    {
        let mut i = 0;
        while i < m {
            let mut j = i + 1;
            while j < m && x[order[j]] == x[order[i]] {
                j += 1;
            }
            let tie = (j - i) as f64;
            n1 += tie * (tie - 1.0) / 2.0;
            let mut k = i;
            while k < j {
                let mut l = k + 1;
                while l < j && y[order[l]] == y[order[k]] {
                    l += 1;
                }
                let joint = (l - k) as f64;
                n3 += joint * (joint - 1.0) / 2.0;
                k = l;
            }
            i = j;
        }
    }
    let mut y_sorted: Vec<f64> = y.to_vec();
    y_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut n2 = 0.0;
    {
        let mut i = 0;
        while i < m {
            let mut j = i + 1;
            while j < m && y_sorted[j] == y_sorted[i] {
                j += 1;
            }
            let tie = (j - i) as f64;
            n2 += tie * (tie - 1.0) / 2.0;
            i = j;
        }
    }
    let y_in_x_order: Vec<f64> = order.iter().map(|&i| y[i]).collect();
    let discordant = count_inversions(&y_in_x_order) as f64;
    // Comparable pairs (untied in both rankings) split into concordant and
    // discordant: C + D = n0 − n1 − n2 + n3.
    let comparable = n0 - n1 - n2 + n3;
    let concordant = comparable - discordant;
    (concordant - discordant) / n0
}

/// Naive `O(m²)` Kendall τ-a used as the test oracle for [`kendall_tau_a`].
pub fn kendall_tau_a_naive(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }
    let mut concordant = 0f64;
    let mut discordant = 0f64;
    for i in 0..m {
        for j in (i + 1)..m {
            let product = (x[i] - x[j]) * (y[i] - y[j]);
            if product > 0.0 {
                concordant += 1.0;
            } else if product < 0.0 {
                discordant += 1.0;
            }
        }
    }
    (concordant - discordant) / ((m as f64) * (m as f64 - 1.0) / 2.0)
}

/// Naive `O(m²)` Kendall τ-b used as the test oracle for [`kendall_tau`].
pub fn kendall_tau_naive(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }
    let mut concordant = 0f64;
    let mut discordant = 0f64;
    let mut ties_x = 0f64;
    let mut ties_y = 0f64;
    for i in 0..m {
        for j in (i + 1)..m {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // joint tie: contributes to neither
            } else if dx == 0.0 {
                ties_x += 1.0;
            } else if dy == 0.0 {
                ties_y += 1.0;
            } else if dx * dy > 0.0 {
                concordant += 1.0;
            } else {
                discordant += 1.0;
            }
        }
    }
    let denom = ((concordant + discordant + ties_x) * (concordant + discordant + ties_y)).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        (concordant - discordant) / denom
    }
}

/// Per-thread cap on the sample size at which the `*_with` Kendall kernels
/// use the blocked `O(m²/threads)` tile evaluation: tiles run only when
/// `m ≤ KENDALL_TILE_MAX_PER_THREAD × threads`. The tiles-beat-Knight's
/// crossover is roughly `m ≈ threads · log m` — beyond it the `O(m log m)`
/// Knight's algorithm wins outright, however many threads are available — so
/// the window is deliberately small: large pair vectors (every Figure 7
/// scale's) always take Knight's, and the tiled path only runs where both
/// cost microseconds. A pure scheduling choice, invisible in the output
/// because all implementations are bit-identical (see the module docs).
pub const KENDALL_TILE_MAX_PER_THREAD: usize = 64;

/// Exact pair counts of a two-sample ranking comparison.
struct PairCounts {
    concordant: u64,
    discordant: u64,
    /// Pairs tied in `x` only.
    ties_x: u64,
    /// Pairs tied in `y` only.
    ties_y: u64,
}

/// Counts concordant/discordant/tied pairs over blocked row-range tiles.
///
/// Each tile counts its own pairs in `u64`s; because integer addition is
/// associative and the per-tile totals are summed in tile order, the result
/// cannot depend on the tile split or thread count. Concordance is decided by
/// comparisons (not the sign of a `Δx·Δy` product), matching the semantics of
/// the Knight's implementations exactly.
fn tiled_pair_counts(runtime: &Runtime, x: &[f64], y: &[f64]) -> PairCounts {
    let m = x.len();
    let tiles = pair_row_tiles(m, runtime.recommended_tiles());
    let per_tile = runtime.par_map(&tiles, |rows| {
        let (mut concordant, mut discordant, mut ties_x, mut ties_y) = (0u64, 0u64, 0u64, 0u64);
        for i in rows.clone() {
            for j in (i + 1)..m {
                let dx = x[i].partial_cmp(&x[j]).unwrap_or(Ordering::Equal);
                let dy = y[i].partial_cmp(&y[j]).unwrap_or(Ordering::Equal);
                match (dx, dy) {
                    (Ordering::Equal, Ordering::Equal) => {} // joint tie: contributes to neither
                    (Ordering::Equal, _) => ties_x += 1,
                    (_, Ordering::Equal) => ties_y += 1,
                    (a, b) if a == b => concordant += 1,
                    _ => discordant += 1,
                }
            }
        }
        (concordant, discordant, ties_x, ties_y)
    });
    let mut counts = PairCounts {
        concordant: 0,
        discordant: 0,
        ties_x: 0,
        ties_y: 0,
    };
    for (c, d, tx, ty) in per_tile {
        counts.concordant += c;
        counts.discordant += d;
        counts.ties_x += tx;
        counts.ties_y += ty;
    }
    counts
}

/// [`kendall_tau_a`] on an explicit [`Runtime`]: the naive `O(m²)` pair count
/// evaluated in blocked row-range tiles, `O(m²/threads)` wall clock.
///
/// Falls back to Knight's [`kendall_tau_a`] on a sequential runtime (tiles
/// cannot help there) and outside the
/// [`KENDALL_TILE_MAX_PER_THREAD`]`× threads` window (where `O(m log m)`
/// beats the tiles outright). Both paths are bit-identical — they reduce to
/// the same exact integer counts — so the choice never shows in the output;
/// the determinism goldens and proptests pin this.
pub fn kendall_tau_a_with(runtime: &Runtime, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }
    if runtime.is_sequential() || m > KENDALL_TILE_MAX_PER_THREAD * runtime.threads() {
        return kendall_tau_a(x, y);
    }
    let counts = tiled_pair_counts(runtime, x, y);
    let n0 = (m as f64) * (m as f64 - 1.0) / 2.0;
    (counts.concordant as f64 - counts.discordant as f64) / n0
}

/// [`kendall_tau`] (τ-b) on an explicit [`Runtime`]; tiled like
/// [`kendall_tau_a_with`], with the same Knight's fallback and the same
/// bit-identity guarantee.
pub fn kendall_tau_with(runtime: &Runtime, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    let m = x.len();
    if m < 2 {
        return 0.0;
    }
    if runtime.is_sequential() || m > KENDALL_TILE_MAX_PER_THREAD * runtime.threads() {
        return kendall_tau(x, y);
    }
    let counts = tiled_pair_counts(runtime, x, y);
    let untied = counts.concordant + counts.discordant;
    let denom = (((untied + counts.ties_x) as f64) * ((untied + counts.ties_y) as f64)).sqrt();
    if denom <= 0.0 {
        0.0
    } else {
        (counts.concordant as f64 - counts.discordant as f64) / denom
    }
}

/// Counts inversions of a float sequence with an iterative bottom-up merge sort.
fn count_inversions(values: &[f64]) -> u64 {
    let mut work: Vec<f64> = values.to_vec();
    let mut buffer = vec![0.0; work.len()];
    let mut inversions = 0u64;
    let n = work.len();
    let mut width = 1;
    while width < n {
        let mut start = 0;
        while start + width < n {
            let mid = start + width;
            let end = (start + 2 * width).min(n);
            // Merge work[start..mid] and work[mid..end] into buffer.
            let (mut i, mut j, mut k) = (start, mid, start);
            while i < mid && j < end {
                if work[i] <= work[j] {
                    buffer[k] = work[i];
                    i += 1;
                } else {
                    // work[j] jumps ahead of all remaining left elements.
                    inversions += (mid - i) as u64;
                    buffer[k] = work[j];
                    j += 1;
                }
                k += 1;
            }
            while i < mid {
                buffer[k] = work[i];
                i += 1;
                k += 1;
            }
            while j < end {
                buffer[k] = work[j];
                j += 1;
                k += 1;
            }
            work[start..end].copy_from_slice(&buffer[start..end]);
            start += 2 * width;
        }
        width *= 2;
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_and_short_samples() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_rejects_mismatched_lengths() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mean_and_std_dev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn kendall_identical_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_same = [10.0, 20.0, 30.0, 40.0, 50.0];
        let y_rev = [50.0, 40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&x, &y_same) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &y_rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_handles_all_tied_samples() {
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(kendall_tau(&[0.5], &[0.5]), 0.0);
    }

    #[test]
    fn kendall_known_value_with_ties() {
        // x: [1, 2, 2, 3], y: [1, 3, 2, 4]
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let fast = kendall_tau(&x, &y);
        let naive = kendall_tau_naive(&x, &y);
        assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
        assert!(fast > 0.5 && fast < 1.0);
    }

    #[test]
    fn kendall_fast_matches_naive_on_pseudorandom_data() {
        // Deterministic pseudo-random data with plenty of ties.
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 17) as f64
        };
        for _ in 0..200 {
            x.push(next());
            y.push(next());
        }
        let fast = kendall_tau(&x, &y);
        let naive = kendall_tau_naive(&x, &y);
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn kendall_tau_a_identical_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_a(&x, &up) - 1.0).abs() < 1e-12);
        assert!((kendall_tau_a(&x, &down) + 1.0).abs() < 1e-12);
        assert_eq!(kendall_tau_a(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn kendall_tau_a_ties_reduce_magnitude() {
        // τ-a divides by all pairs, so ties pull the coefficient towards zero
        // instead of being corrected away as in τ-b.
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let a = kendall_tau_a(&x, &y);
        let b = kendall_tau(&x, &y);
        assert!(
            a < b,
            "τ-a ({a}) should be below τ-b ({b}) in the presence of ties"
        );
        assert!(a > 0.0);
    }

    #[test]
    fn kendall_tau_a_fast_matches_naive_on_pseudorandom_data() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut state = 987654321u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 9) as f64
        };
        for _ in 0..150 {
            x.push(next());
            y.push(next());
        }
        let fast = kendall_tau_a(&x, &y);
        let naive = kendall_tau_a_naive(&x, &y);
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn count_inversions_matches_definition() {
        assert_eq!(count_inversions(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(count_inversions(&[3.0, 2.0, 1.0]), 3);
        assert_eq!(count_inversions(&[2.0, 1.0, 3.0, 0.0]), 4);
        assert_eq!(count_inversions(&[]), 0);
        assert_eq!(count_inversions(&[1.0]), 0);
    }
}
