//! Blocked row-range tiling of the upper-triangular pair loops.
//!
//! Every quadratic kernel in this crate — the pairwise cosine similarities,
//! the taxonomy ground-truth distances and the tiled Kendall pair counts —
//! walks the `n·(n−1)/2` unordered pairs `(i, j)`, `i < j`, in row-major
//! order. To parallelise them without changing that order, the rows are cut
//! into contiguous ranges ("tiles") of roughly equal *pair* count, each tile
//! is evaluated independently on the runtime's `par_map`, and the per-tile
//! results are reassembled in tile (= row) order. Row `i` owns `n − 1 − i`
//! pairs, so early rows are heavier and the ranges grow towards the end.
//!
//! Tile-size trade-off: more tiles balance the shrinking rows better and let
//! stragglers be stolen from `par_map`'s shared cursor, but each tile pays a
//! vector allocation and a merge. [`Runtime::recommended_tiles`]
//! (`threads × 4`) is the default everywhere; the tile split is never
//! observable in the output.
//!
//! [`Runtime::recommended_tiles`]: tagging_runtime::Runtime::recommended_tiles

use std::ops::Range;

/// Splits rows `0..n-1` of the pair triangle into at most `max_tiles`
/// contiguous ranges with roughly equal pair counts. Returns an empty vector
/// when `n < 2` (there are no pairs).
pub(crate) fn pair_row_tiles(n: usize, max_tiles: usize) -> Vec<Range<usize>> {
    if n < 2 {
        return Vec::new();
    }
    let total_pairs = n * (n - 1) / 2;
    let tiles = max_tiles.clamp(1, n - 1);
    let target = total_pairs.div_ceil(tiles);
    let mut ranges = Vec::with_capacity(tiles);
    let mut start = 0;
    let mut acc = 0;
    for i in 0..n - 1 {
        acc += n - 1 - i;
        if acc >= target || i == n - 2 {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    ranges
}

/// Number of pairs `(i, j)`, `i < j < n`, owned by the rows in `range`.
pub(crate) fn pairs_in_rows(n: usize, range: &Range<usize>) -> usize {
    range.clone().map(|i| n - 1 - i).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_every_row_exactly_once_in_order() {
        for n in [2usize, 3, 7, 40, 101] {
            for max_tiles in [1usize, 2, 4, 16, 64] {
                let tiles = pair_row_tiles(n, max_tiles);
                assert!(!tiles.is_empty(), "n {n}, max_tiles {max_tiles}");
                assert!(tiles.len() <= max_tiles.max(1));
                let rows: Vec<usize> = tiles.iter().flat_map(|r| r.clone()).collect();
                assert_eq!(
                    rows,
                    (0..n - 1).collect::<Vec<_>>(),
                    "n {n}, max_tiles {max_tiles}"
                );
                let pairs: usize = tiles.iter().map(|r| pairs_in_rows(n, r)).sum();
                assert_eq!(pairs, n * (n - 1) / 2);
            }
        }
    }

    #[test]
    fn tiles_balance_pair_counts() {
        let n = 200;
        let tiles = pair_row_tiles(n, 8);
        let counts: Vec<usize> = tiles.iter().map(|r| pairs_in_rows(n, r)).collect();
        let target = (n * (n - 1) / 2).div_ceil(8);
        // Every tile stays within one row's worth of the target.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c <= target + n,
                "tile {i} holds {c} pairs (target {target})"
            );
        }
    }

    #[test]
    fn degenerate_inputs_have_no_tiles() {
        assert!(pair_row_tiles(0, 4).is_empty());
        assert!(pair_row_tiles(1, 4).is_empty());
        assert_eq!(pair_row_tiles(2, 4), vec![0..1]);
    }
}
