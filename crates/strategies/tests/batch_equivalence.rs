//! The batched-semantics contract, checked for every practical strategy:
//!
//! 1. a native `allocate_batch(k)` override is indistinguishable from the
//!    defining default — `k` sequential `allocate_one` calls — for every ω and
//!    batch sizes {1, 7, 64}, including across batches with interleaved
//!    observations and exhausted post sources;
//! 2. the batched protocol at batch size 1 degenerates to the classic
//!    sequential framework loop, bit for bit.

use tagging_core::model::{Post, ResourceId, TagId};
use tagging_strategies::batch::{run_allocation_batched, BatchAllocator, BatchState};
use tagging_strategies::framework::{
    run_allocation, AllocationStrategy, AllocationView, ReplaySource,
};
use tagging_strategies::StrategyKind;

fn post(tag: u32) -> Post {
    Post::new([TagId(tag)]).unwrap()
}

/// A stable sequence: the same post repeated.
fn stable(tag: u32, n: usize) -> Vec<Post> {
    vec![post(tag); n]
}

/// An unstable sequence: cycling disjoint tags.
fn unstable(base: u32, n: usize) -> Vec<Post> {
    (0..n).map(|i| post(base + (i % 5) as u32)).collect()
}

/// A 10-resource state with mixed counts, mixed stability, skewed popularity
/// and two resources whose recorded future runs out mid-run.
fn fixture() -> (Vec<Vec<Post>>, Vec<f64>, Vec<Vec<Post>>) {
    let initial = vec![
        Vec::new(),
        stable(10, 1),
        unstable(20, 2),
        stable(30, 5),
        unstable(40, 9),
        stable(50, 12),
        unstable(60, 3),
        stable(70, 7),
        unstable(80, 4),
        stable(90, 6),
    ];
    let weights = [8.0, 1.0, 4.0, 2.0, 6.0, 3.0, 1.0, 5.0, 2.0, 1.0];
    let total: f64 = weights.iter().sum();
    let popularity: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let future: Vec<Vec<Post>> = (0..10)
        .map(|i| match i {
            // Resource 2 runs dry almost immediately, resource 5 immediately.
            2 => unstable(20, 3),
            5 => Vec::new(),
            i if i % 2 == 0 => unstable(100 + 10 * i as u32, 200),
            i => stable(100 + 10 * i as u32, 200),
        })
        .collect();
    (initial, popularity, future)
}

/// Wraps a strategy so the *default* `allocate_batch` / `observe_batch`
/// bodies run even when the inner type overrides them natively — the
/// reference the natives are tested against.
struct ForcedDefault(Box<dyn BatchAllocator + Send>);

impl AllocationStrategy for ForcedDefault {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn init(&mut self, view: &AllocationView<'_>) {
        self.0.init(view);
    }
    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        self.0.choose(view)
    }
    fn update(&mut self, view: &AllocationView<'_>, resource: ResourceId, post: Option<&Post>) {
        self.0.update(view, resource, post);
    }
}

impl BatchAllocator for ForcedDefault {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        self.0.allocate_one(state)
    }
    fn observe_one(
        &mut self,
        view: &AllocationView<'_>,
        resource: ResourceId,
        post: Option<&Post>,
    ) {
        self.0.observe_one(view, resource, post);
    }
    // allocate_batch / observe_batch intentionally NOT overridden: the
    // provided defaults are the semantics.
}

const OMEGAS: [usize; 3] = [2, 5, 9];
const BATCH_SIZES: [usize; 3] = [1, 7, 64];
const BUDGET: usize = 150;

#[test]
fn native_batches_equal_k_sequential_single_allocations() {
    let (initial, popularity, future) = fixture();
    for kind in StrategyKind::ALL {
        for omega in OMEGAS {
            for k in BATCH_SIZES {
                let mut native = kind.build_batch(omega, 42);
                let mut source = ReplaySource::new(future.clone());
                let got = run_allocation_batched(
                    native.as_mut(),
                    &mut source,
                    &initial,
                    &popularity,
                    BUDGET,
                    k,
                );

                let mut reference = ForcedDefault(kind.build_batch(omega, 42));
                let mut source = ReplaySource::new(future.clone());
                let want = run_allocation_batched(
                    &mut reference,
                    &mut source,
                    &initial,
                    &popularity,
                    BUDGET,
                    k,
                );

                assert_eq!(
                    got,
                    want,
                    "{} ω={omega} k={k}: native batch diverged from k sequential single allocations",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn batch_size_one_equals_the_classic_sequential_loop() {
    let (initial, popularity, future) = fixture();
    for kind in StrategyKind::ALL {
        for omega in OMEGAS {
            let mut classic = kind.build(omega, 42);
            let mut source = ReplaySource::new(future.clone());
            let want = run_allocation(classic.as_mut(), &mut source, &initial, &popularity, BUDGET);

            let mut batched = kind.build_batch(omega, 42);
            let mut source = ReplaySource::new(future.clone());
            let got = run_allocation_batched(
                batched.as_mut(),
                &mut source,
                &initial,
                &popularity,
                BUDGET,
                1,
            );

            assert_eq!(
                got,
                want,
                "{} ω={omega}: batch size 1 diverged from the classic loop",
                kind.name()
            );
        }
    }
}

#[test]
fn every_batch_size_spends_exactly_the_budget() {
    let (initial, popularity, future) = fixture();
    // 151 is not divisible by 7 or 64, so the last batch is a partial one.
    let budget = 151;
    for kind in StrategyKind::ALL {
        for k in BATCH_SIZES {
            let mut strategy = kind.build_batch(5, 1);
            let mut source = ReplaySource::new(future.clone());
            let outcome = run_allocation_batched(
                strategy.as_mut(),
                &mut source,
                &initial,
                &popularity,
                budget,
                k,
            );
            assert_eq!(outcome.budget_spent(), budget, "{} k={k}", kind.name());
            assert_eq!(
                outcome.allocated.iter().map(|&x| x as usize).sum::<usize>(),
                budget,
                "{} k={k}",
                kind.name()
            );
        }
    }
}

#[test]
fn mu_batch_spreads_over_distinct_unstable_resources() {
    // Three unstable resources, all with defined MA scores: a single batch of
    // 3 must lease all three (no resource is re-ranked before its completion
    // is observed), whereas three sequential classic steps may revisit one.
    let initial = vec![unstable(0, 8), unstable(10, 8), unstable(20, 8)];
    let popularity = vec![1.0 / 3.0; 3];
    let mut mu = StrategyKind::Mu.build_batch(4, 1);
    let mut allocated = vec![0u32; 3];
    {
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        mu.init(&view);
    }
    let ids = {
        let mut state = BatchState::new(&initial, &popularity, &mut allocated);
        mu.allocate_batch(&mut state, 3)
    };
    let mut seen: Vec<u32> = ids.iter().map(|id| id.0).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 3, "batch must lease three distinct resources");
    assert_eq!(allocated, vec![1, 1, 1]);
}

#[test]
fn observations_between_batches_change_future_batches() {
    // After observing wildly divergent posts on resource 0, MU must prefer it
    // again in the next batch — the deferred UPDATE really is applied.
    let initial = vec![unstable(0, 8), stable(50, 8)];
    let popularity = vec![0.5, 0.5];
    let mut mu = StrategyKind::Mu.build_batch(4, 1);
    let mut allocated = vec![0u32; 2];
    {
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        mu.init(&view);
    }
    let first = {
        let mut state = BatchState::new(&initial, &popularity, &mut allocated);
        mu.allocate_batch(&mut state, 1)
    };
    assert_eq!(first, vec![ResourceId(0)], "the unstable resource leads");
    // Report a completion that keeps resource 0 maximally unstable.
    {
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        mu.observe_batch(&view, &[(ResourceId(0), Some(post(999)))]);
    }
    let second = {
        let mut state = BatchState::new(&initial, &popularity, &mut allocated);
        mu.allocate_batch(&mut state, 1)
    };
    assert_eq!(second, vec![ResourceId(0)], "re-enqueued after observation");
}
