//! Property-based tests for the allocation strategies.
//!
//! Invariants checked:
//! * every strategy spends exactly the budget, never allocates to an unknown
//!   resource and never produces a negative allocation;
//! * FP keeps post counts as level as possible (max − min ≤ 1 above the initial
//!   water line);
//! * DP is at least as good as every practical strategy and as brute force says
//!   it can be, on the same quality table.

use proptest::prelude::*;

use tagging_core::model::{Post, TagId};
use tagging_runtime::Runtime;
use tagging_strategies::dp::{
    brute_force_allocation, optimal_allocation, par_optimal_allocation, QualityTable,
};
use tagging_strategies::framework::{run_allocation, ReplaySource};
use tagging_strategies::StrategyKind;

fn post(tag: u32) -> Post {
    Post::new([TagId(tag)]).unwrap()
}

/// Strategy: initial post counts for 2–8 resources, each 0–20 posts.
fn arb_initial_counts() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..20, 2..8)
}

/// Builds initial sequences whose posts cycle over a small per-resource tag set,
/// so MA scores are well defined and vary across resources.
fn initial_sequences(counts: &[usize]) -> Vec<Vec<Post>> {
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (0..c)
                .map(|j| post((i * 10 + j % 3) as u32))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Ample future posts for every resource.
fn future_sequences(n: usize) -> Vec<Vec<Post>> {
    (0..n)
        .map(|i| (0..200).map(|j| post((i * 10 + j % 3) as u32)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every built-in strategy spends exactly the budget.
    #[test]
    fn strategies_spend_exactly_the_budget(
        counts in arb_initial_counts(),
        budget in 0usize..60,
        omega in 2usize..6,
        seed in 0u64..1000,
    ) {
        let n = counts.len();
        let initial = initial_sequences(&counts);
        let popularity: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        for kind in StrategyKind::ALL {
            let mut strategy = kind.build(omega, seed);
            let mut source = ReplaySource::new(future_sequences(n));
            let outcome = run_allocation(
                strategy.as_mut(),
                &mut source,
                &initial,
                &popularity,
                budget,
            );
            prop_assert_eq!(outcome.allocated.len(), n);
            prop_assert_eq!(
                outcome.allocated.iter().map(|&x| x as usize).sum::<usize>(),
                budget,
                "{} did not spend the budget",
                kind.name()
            );
            prop_assert_eq!(outcome.trace.len(), budget);
        }
    }

    /// FP levels the post counts: any resource that received at least one task
    /// ends within one post of the global minimum.
    #[test]
    fn fp_waterfills(counts in arb_initial_counts(), budget in 1usize..80) {
        let n = counts.len();
        let initial = initial_sequences(&counts);
        let popularity = vec![1.0 / n as f64; n];
        let mut fp = tagging_strategies::FewestPostsFirst::new();
        let mut source = ReplaySource::new(future_sequences(n));
        let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, budget);
        let totals: Vec<usize> = (0..n)
            .map(|i| counts[i] + outcome.allocated[i] as usize)
            .collect();
        let min_total = *totals.iter().min().unwrap();
        for i in 0..n {
            if outcome.allocated[i] > 0 {
                prop_assert!(
                    totals[i] <= min_total + 1,
                    "resource {i} over-filled: totals {totals:?}"
                );
            }
        }
    }

    /// DP achieves at least the quality of any practical strategy evaluated on
    /// the same quality table (it is the offline optimum).
    #[test]
    fn dp_dominates_practical_strategies(
        counts in proptest::collection::vec(0usize..8, 2..5),
        budget in 0usize..15,
        seed in 0u64..100,
    ) {
        let n = counts.len();
        let initial = initial_sequences(&counts);
        let popularity: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let future = future_sequences(n);
        // Reference rfd: the rfd of initial + all future posts (a stand-in for the
        // stable rfd; any fixed reference works for the dominance property).
        let references: Vec<_> = (0..n)
            .map(|i| {
                let mut all = initial[i].clone();
                all.extend_from_slice(&future[i]);
                tagging_core::rfd::rfd_of_prefix(&all, all.len())
            })
            .collect();
        let table = QualityTable::from_posts(&initial, &future, &references, budget);
        let dp = optimal_allocation(&table, budget);

        for kind in StrategyKind::ALL {
            let mut strategy = kind.build(3, seed);
            let mut source = ReplaySource::new(future.clone());
            let outcome = run_allocation(
                strategy.as_mut(),
                &mut source,
                &initial,
                &popularity,
                budget,
            );
            let practical_quality: f64 = (0..n)
                .map(|i| table.quality(i, outcome.allocated[i] as usize))
                .sum();
            prop_assert!(
                dp.total_quality >= practical_quality - 1e-9,
                "{} beat DP: {} vs {}",
                kind.name(),
                practical_quality,
                dp.total_quality
            );
        }
    }

    /// DP equals brute force on tiny instances with arbitrary quality rows.
    #[test]
    fn dp_equals_brute_force(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5),
            1..4,
        ),
        budget in 0usize..4,
    ) {
        let table = QualityTable::from_rows(rows);
        let dp = optimal_allocation(&table, budget);
        let bf = brute_force_allocation(&table, budget);
        prop_assert!((dp.total_quality - bf.total_quality).abs() < 1e-9);
        prop_assert_eq!(dp.allocation.iter().map(|&x| x as usize).sum::<usize>(), budget);
    }

    /// The chunked parallel DP is bit-identical to the sequential recurrence
    /// and its backtracked allocation always spends exactly the budget —
    /// the invariant the release-mode backtracking asserts now guard.
    /// Budgets straddle the `PAR_DP_MIN_CELLS` cutoff so both the sequential
    /// fallback and the genuinely chunked layer fill are exercised.
    #[test]
    fn par_dp_matches_sequential_and_spends_the_budget(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5),
            1..5,
        ),
        budget in 0usize..160,
    ) {
        let table = QualityTable::from_rows(rows);
        // The drawn budget stays below the cutoff (sequential layer fill);
        // its shifted twin lands above it and exercises the chunked fill.
        let wide = tagging_strategies::dp::PAR_DP_MIN_CELLS + budget % 60;
        for budget in [budget, wide] {
            let reference = par_optimal_allocation(&Runtime::sequential(), &table, budget);
            prop_assert_eq!(
                reference.allocation.iter().map(|&x| x as usize).sum::<usize>(),
                budget,
                "sequential DP did not spend the budget"
            );
            for threads in [2, 8] {
                let parallel = par_optimal_allocation(&Runtime::new(threads), &table, budget);
                prop_assert_eq!(&parallel.allocation, &reference.allocation, "threads {}", threads);
                prop_assert_eq!(
                    parallel.total_quality.to_bits(),
                    reference.total_quality.to_bits(),
                    "threads {}: DP value diverged bitwise",
                    threads
                );
            }
        }
    }
}
