//! The Fewest Posts First strategy (paper §IV-C, Algorithm 3).
//!
//! FP always gives the next post task to the resource with the smallest total
//! post count `c_i + x_i`. The intuition (paper Figure 5) is that an extra post
//! improves a sparsely-tagged resource's quality far more than it improves an
//! already well-tagged one.
//!
//! A binary heap keyed by `(total posts, resource id)` keeps CHOOSE and UPDATE
//! at `O(log n)`; there is always exactly one heap entry per resource because
//! UPDATE reinserts the resource chosen by the preceding CHOOSE.
//!
//! The paper ultimately *recommends* FP: it is nearly as effective as the more
//! sophisticated FP-MU, cheaper to run, and needs no knowledge of the new posts'
//! contents (only their count), so it can even run offline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tagging_core::model::{Post, ResourceId};

use crate::batch::{water_fill, BatchAllocator, BatchState};
use crate::framework::{AllocationStrategy, AllocationView};

/// Fewest Posts First: allocate to the resource with the fewest posts so far.
#[derive(Debug, Default)]
pub struct FewestPostsFirst {
    /// Min-heap of `(total posts, resource id)`.
    queue: BinaryHeap<Reverse<(u64, u32)>>,
}

impl FewestPostsFirst {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resources currently enqueued (for diagnostics/tests).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

impl AllocationStrategy for FewestPostsFirst {
    fn name(&self) -> &'static str {
        "FP"
    }

    fn init(&mut self, view: &AllocationView<'_>) {
        self.queue.clear();
        for i in 0..view.len() {
            let id = ResourceId(i as u32);
            self.queue
                .push(Reverse((view.total_count(id) as u64, id.0)));
        }
    }

    fn choose(&mut self, _view: &AllocationView<'_>) -> ResourceId {
        let Reverse((_count, id)) = self
            .queue
            .pop()
            .expect("FP queue is empty: init() not called or no resources");
        ResourceId(id)
    }

    fn update(&mut self, view: &AllocationView<'_>, resource: ResourceId, _post: Option<&Post>) {
        // Reinsert with the updated total count (c_i + x_i already reflects the
        // completed task because the framework increments x before UPDATE).
        self.queue
            .push(Reverse((view.total_count(resource) as u64, resource.0)));
    }
}

impl BatchAllocator for FewestPostsFirst {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        // FP only looks at counts, which are fully known at allocation time:
        // pop the minimum and reinsert it with its bumped count, exactly as the
        // classic CHOOSE + UPDATE pair does (FP's UPDATE ignores the post).
        let Reverse((_count, id)) = self
            .queue
            .pop()
            .expect("FP queue is empty: init() not called or no resources");
        let id = ResourceId(id);
        state.commit(id);
        self.queue
            .push(Reverse((state.total_count(id) as u64, id.0)));
        id
    }

    fn observe_one(
        &mut self,
        _view: &AllocationView<'_>,
        _resource: ResourceId,
        _post: Option<&Post>,
    ) {
        // Nothing to observe: counts were already advanced at allocation time.
    }

    /// Native batch: a water-fill. `k` sequential FP allocations repeatedly
    /// bump the `(count, id)`-minimum, i.e. they fill post-count levels from
    /// the bottom in id order. Instead of `k` heap round-trips, pop only the
    /// resources the fill can touch, replay the fill arithmetically and push
    /// each touched resource back once — `O(m log n + k)` for `m` touched
    /// resources.
    fn allocate_batch(&mut self, state: &mut BatchState<'_>, k: usize) -> Vec<ResourceId> {
        if k == 0 {
            return Vec::new();
        }
        // Pop only the entries the fill can reach. An entry at count `c` is
        // touchable only if raising every entry below it up to level `c` takes
        // fewer than `k` tasks (the heap pops in (count, id) order, so "below"
        // is exactly what was already popped); once that lift alone covers the
        // batch, deeper entries cannot receive a task or affect the order.
        let mut entries: Vec<(u64, u32)> = Vec::new();
        let mut popped_sum = 0u64;
        while let Some(&Reverse((count, id))) = self.queue.peek() {
            let lift = count * entries.len() as u64 - popped_sum;
            if !entries.is_empty() && lift >= k as u64 {
                break;
            }
            self.queue.pop();
            entries.push((count, id));
            popped_sum += count;
        }
        assert!(
            !entries.is_empty(),
            "FP queue is empty: init() not called or no resources"
        );

        let mut out = Vec::with_capacity(k);
        let finals = water_fill(entries, k, |id| {
            state.commit(id);
            out.push(id);
        });
        for (count, id) in finals {
            self.queue.push(Reverse((count, id)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_allocation, ReplaySource};
    use tagging_core::model::TagId;

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    /// Builds initial sequences with the given per-resource post counts.
    fn initial_with_counts(counts: &[usize]) -> Vec<Vec<Post>> {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| vec![post(i as u32); c])
            .collect()
    }

    #[test]
    fn fp_levels_post_counts() {
        let initial = initial_with_counts(&[10, 2, 5, 1]);
        let popularity = vec![0.25; 4];
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(vec![vec![post(9); 100]; 4]);
        // Budget 12: resources should be levelled towards equal totals.
        let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, 12);
        let totals: Vec<usize> = (0..4)
            .map(|i| initial[i].len() + outcome.allocated[i] as usize)
            .collect();
        // Total = 18 + 12 = 30. FP water-fills the smallest counts first, so no
        // resource that received tasks should end above the untouched maximum.
        assert_eq!(outcome.allocated.iter().sum::<u32>(), 12);
        assert_eq!(
            outcome.allocated[0], 0,
            "the most-tagged resource gets nothing"
        );
        // The three under-tagged resources are levelled to within one post.
        let levelled = &totals[1..];
        assert!(levelled.iter().max().unwrap() - levelled.iter().min().unwrap() <= 1);
    }

    #[test]
    fn fp_chooses_globally_fewest_each_step() {
        let initial = initial_with_counts(&[3, 1, 2]);
        let popularity = vec![1.0 / 3.0; 3];
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(vec![vec![post(9); 100]; 3]);
        let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, 4);
        let order: Vec<u32> = outcome.trace.iter().map(|s| s.resource.0).collect();
        // counts start (3,1,2): picks r1 (→2), then r1 or r2 (both 2; id tie-break
        // favours r1), then r2, then the remaining 2-count resource…
        assert_eq!(order[0], 1);
        // After 4 units the totals must be as level as possible: (3,3,3) + 1 extra.
        let totals: Vec<u64> = (0..3)
            .map(|i| (initial[i].len() + outcome.allocated[i] as usize) as u64)
            .collect();
        assert_eq!(totals.iter().sum::<u64>(), 10);
        assert!(totals.iter().max().unwrap() - totals.iter().min().unwrap() <= 1);
    }

    #[test]
    fn fp_budget_exactly_spent_and_queue_invariant() {
        let initial = initial_with_counts(&[0, 0, 0, 0, 0]);
        let popularity = vec![0.2; 5];
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(vec![vec![post(1); 50]; 5]);
        let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, 23);
        assert_eq!(outcome.allocated.iter().sum::<u32>(), 23);
        // One heap entry per resource after the run.
        assert_eq!(fp.queue_len(), 5);
        // Perfectly even split within one unit.
        let max = outcome.allocated.iter().max().unwrap();
        let min = outcome.allocated.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn fp_works_when_source_is_exhausted() {
        // FP only looks at counts, so undelivered posts do not disturb it.
        let initial = initial_with_counts(&[1, 5]);
        let popularity = vec![0.5, 0.5];
        let mut fp = FewestPostsFirst::new();
        let mut source = ReplaySource::new(vec![vec![post(0); 2], vec![post(1); 2]]);
        let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, 6);
        assert_eq!(outcome.allocated.iter().sum::<u32>(), 6);
        assert!(outcome.undelivered > 0);
    }

    #[test]
    #[should_panic(expected = "queue is empty")]
    fn fp_choose_before_init_panics() {
        let mut fp = FewestPostsFirst::new();
        let initial: Vec<Vec<Post>> = vec![vec![]];
        let allocated = vec![0u32];
        let popularity = vec![1.0];
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        let _ = fp.choose(&view);
    }
}
