//! The incentive allocation framework (paper §IV, Algorithm 1).
//!
//! All practical strategies share one loop: while budget remains, CHOOSE a
//! resource, present it to a tagger, receive the completed post, UPDATE internal
//! state, and decrement the budget. Strategies differ only in INIT / CHOOSE /
//! UPDATE, which is exactly the [`AllocationStrategy`] trait.
//!
//! The environment side of the loop — "a tagger completes a post task on the
//! chosen resource" — is abstracted as a [`PostSource`]. The simulation crate
//! provides sources that replay recorded future posts and/or sample new posts
//! from a resource's latent distribution.

use tagging_core::model::{Post, ResourceId};

/// Read-only view of the allocation state shared with strategies.
///
/// `initial_posts[i]` is the paper's `c_i` (posts a resource had before the
/// strategy started); `allocated[i]` is `x_i` (post tasks allocated so far).
#[derive(Debug, Clone)]
pub struct AllocationView<'a> {
    /// The initial post sequences of every resource, indexed by resource.
    pub initial_sequences: &'a [Vec<Post>],
    /// Post tasks allocated to each resource so far (`x`).
    pub allocated: &'a [u32],
    /// Popularity weight of each resource (used by the Free-Choice tagger model).
    pub popularity: &'a [f64],
}

impl<'a> AllocationView<'a> {
    /// Number of resources `n`.
    pub fn len(&self) -> usize {
        self.initial_sequences.len()
    }

    /// True when there are no resources.
    pub fn is_empty(&self) -> bool {
        self.initial_sequences.is_empty()
    }

    /// The paper's `c_i`: number of posts resource `i` had initially.
    pub fn initial_count(&self, id: ResourceId) -> usize {
        self.initial_sequences[id.index()].len()
    }

    /// `c_i + x_i`: total posts the resource has received so far.
    pub fn total_count(&self, id: ResourceId) -> usize {
        self.initial_count(id) + self.allocated[id.index()] as usize
    }
}

/// A strategy's interface to the framework loop of Algorithm 1.
pub trait AllocationStrategy {
    /// Short name used in experiment reports ("FP", "MU", …).
    fn name(&self) -> &'static str;

    /// INIT(): called once before the loop with the initial state.
    fn init(&mut self, view: &AllocationView<'_>);

    /// CHOOSE(): returns the resource the next post task should be offered on.
    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId;

    /// UPDATE(): called after the post task on `resource` completes.
    ///
    /// `post` is the post the tagger submitted, or `None` when the environment
    /// could not produce a post for that resource (e.g. a strict replay source
    /// ran out of recorded posts); the reward unit is consumed either way.
    fn update(&mut self, view: &AllocationView<'_>, resource: ResourceId, post: Option<&Post>);
}

/// The environment that turns an allocated post task into an actual post.
pub trait PostSource {
    /// Produces the next post for `resource`, or `None` when no further post can
    /// be obtained for it.
    fn next_post(&mut self, resource: ResourceId) -> Option<Post>;
}

/// A [`PostSource`] that replays pre-recorded future post sequences and returns
/// `None` once a resource's recorded posts are exhausted — the strict analogue
/// of the paper's setup, where a strategy can only "receive" posts that actually
/// occurred later in 2007.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    future: Vec<Vec<Post>>,
    cursor: Vec<usize>,
}

impl ReplaySource {
    /// Creates a replay source from per-resource future post sequences.
    pub fn new(future: Vec<Vec<Post>>) -> Self {
        let cursor = vec![0; future.len()];
        Self { future, cursor }
    }

    /// Number of posts still available for a resource.
    pub fn remaining(&self, resource: ResourceId) -> usize {
        let i = resource.index();
        self.future[i].len() - self.cursor[i]
    }
}

impl PostSource for ReplaySource {
    fn next_post(&mut self, resource: ResourceId) -> Option<Post> {
        let i = resource.index();
        let pos = self.cursor[i];
        let post = self.future.get(i)?.get(pos)?.clone();
        self.cursor[i] = pos + 1;
        Some(post)
    }
}

/// One step of an allocation run: which resource was chosen and whether a post
/// was actually delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationStep {
    /// The resource chosen by the strategy.
    pub resource: ResourceId,
    /// The post the tagger submitted, if any.
    pub post: Option<Post>,
}

/// The outcome of running a strategy for a whole budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    /// Post tasks allocated per resource (the paper's assignment `x`).
    pub allocated: Vec<u32>,
    /// The chronological trace of steps, in allocation order.
    pub trace: Vec<AllocationStep>,
    /// Number of post tasks that produced no post because the source was
    /// exhausted for the chosen resource.
    pub undelivered: usize,
}

impl AllocationOutcome {
    /// Total budget consumed (equals the requested budget).
    pub fn budget_spent(&self) -> usize {
        self.trace.len()
    }

    /// The allocation as `(resource, x_i)` pairs for resources with `x_i > 0`.
    pub fn nonzero_allocations(&self) -> Vec<(ResourceId, u32)> {
        self.allocated
            .iter()
            .enumerate()
            .filter(|(_, &x)| x > 0)
            .map(|(i, &x)| (ResourceId(i as u32), x))
            .collect()
    }
}

/// Runs Algorithm 1: invests `budget` reward units one at a time using
/// `strategy`, drawing completed posts from `source`.
///
/// `initial_sequences` and `popularity` describe the starting state; they are
/// exposed to the strategy through [`AllocationView`].
pub fn run_allocation<S: AllocationStrategy + ?Sized, P: PostSource + ?Sized>(
    strategy: &mut S,
    source: &mut P,
    initial_sequences: &[Vec<Post>],
    popularity: &[f64],
    budget: usize,
) -> AllocationOutcome {
    assert_eq!(
        initial_sequences.len(),
        popularity.len(),
        "initial sequences and popularity weights must cover the same resources"
    );
    let n = initial_sequences.len();
    assert!(n > 0, "cannot allocate a budget over zero resources");

    let mut allocated = vec![0u32; n];
    let mut trace = Vec::with_capacity(budget);
    let mut undelivered = 0usize;

    {
        let view = AllocationView {
            initial_sequences,
            allocated: &allocated,
            popularity,
        };
        strategy.init(&view);
    }

    for _ in 0..budget {
        let chosen = {
            let view = AllocationView {
                initial_sequences,
                allocated: &allocated,
                popularity,
            };
            strategy.choose(&view)
        };
        assert!(
            chosen.index() < n,
            "strategy {} chose an unknown resource {chosen}",
            strategy.name()
        );
        let post = source.next_post(chosen);
        if post.is_none() {
            undelivered += 1;
        }
        allocated[chosen.index()] += 1;
        {
            let view = AllocationView {
                initial_sequences,
                allocated: &allocated,
                popularity,
            };
            strategy.update(&view, chosen, post.as_ref());
        }
        trace.push(AllocationStep {
            resource: chosen,
            post,
        });
    }

    AllocationOutcome {
        allocated,
        trace,
        undelivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagging_core::model::TagId;

    /// A trivial strategy that always picks resource 0 — used to test the
    /// framework loop itself.
    struct AlwaysFirst {
        init_called: bool,
        updates: usize,
    }

    impl AllocationStrategy for AlwaysFirst {
        fn name(&self) -> &'static str {
            "always-first"
        }
        fn init(&mut self, _view: &AllocationView<'_>) {
            self.init_called = true;
        }
        fn choose(&mut self, _view: &AllocationView<'_>) -> ResourceId {
            ResourceId(0)
        }
        fn update(
            &mut self,
            view: &AllocationView<'_>,
            resource: ResourceId,
            _post: Option<&Post>,
        ) {
            assert_eq!(resource, ResourceId(0));
            assert_eq!(view.allocated[0] as usize, self.updates + 1);
            self.updates += 1;
        }
    }

    fn simple_post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    fn two_resource_state() -> (Vec<Vec<Post>>, Vec<f64>) {
        let initial = vec![vec![simple_post(0)], vec![simple_post(1), simple_post(1)]];
        let popularity = vec![0.5, 0.5];
        (initial, popularity)
    }

    #[test]
    fn framework_spends_exactly_the_budget() {
        let (initial, popularity) = two_resource_state();
        let mut strategy = AlwaysFirst {
            init_called: false,
            updates: 0,
        };
        let mut source = ReplaySource::new(vec![vec![simple_post(0); 10], vec![]]);
        let outcome = run_allocation(&mut strategy, &mut source, &initial, &popularity, 7);
        assert!(strategy.init_called);
        assert_eq!(strategy.updates, 7);
        assert_eq!(outcome.budget_spent(), 7);
        assert_eq!(outcome.allocated, vec![7, 0]);
        assert_eq!(outcome.undelivered, 0);
        assert_eq!(outcome.nonzero_allocations(), vec![(ResourceId(0), 7)]);
    }

    #[test]
    fn exhausted_source_counts_undelivered_tasks() {
        let (initial, popularity) = two_resource_state();
        let mut strategy = AlwaysFirst {
            init_called: false,
            updates: 0,
        };
        // Only 3 recorded posts for resource 0; a budget of 5 leaves 2 undelivered.
        let mut source = ReplaySource::new(vec![vec![simple_post(0); 3], vec![]]);
        let outcome = run_allocation(&mut strategy, &mut source, &initial, &popularity, 5);
        assert_eq!(outcome.undelivered, 2);
        assert_eq!(outcome.allocated[0], 5);
        assert_eq!(outcome.trace.iter().filter(|s| s.post.is_some()).count(), 3);
    }

    #[test]
    fn zero_budget_only_initialises() {
        let (initial, popularity) = two_resource_state();
        let mut strategy = AlwaysFirst {
            init_called: false,
            updates: 0,
        };
        let mut source = ReplaySource::new(vec![vec![], vec![]]);
        let outcome = run_allocation(&mut strategy, &mut source, &initial, &popularity, 0);
        assert!(strategy.init_called);
        assert_eq!(outcome.budget_spent(), 0);
        assert_eq!(outcome.allocated, vec![0, 0]);
    }

    #[test]
    fn allocation_view_counts() {
        let (initial, _popularity) = two_resource_state();
        let allocated = vec![2, 0];
        let popularity = vec![0.5, 0.5];
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        assert_eq!(view.initial_count(ResourceId(0)), 1);
        assert_eq!(view.total_count(ResourceId(0)), 3);
        assert_eq!(view.total_count(ResourceId(1)), 2);
    }

    #[test]
    fn replay_source_remaining() {
        let mut source = ReplaySource::new(vec![vec![simple_post(0); 2]]);
        assert_eq!(source.remaining(ResourceId(0)), 2);
        assert!(source.next_post(ResourceId(0)).is_some());
        assert_eq!(source.remaining(ResourceId(0)), 1);
        assert!(source.next_post(ResourceId(0)).is_some());
        assert!(source.next_post(ResourceId(0)).is_none());
        assert_eq!(source.remaining(ResourceId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "zero resources")]
    fn run_allocation_rejects_empty_state() {
        let mut strategy = AlwaysFirst {
            init_called: false,
            updates: 0,
        };
        let mut source = ReplaySource::new(vec![]);
        run_allocation(&mut strategy, &mut source, &[], &[], 1);
    }
}
