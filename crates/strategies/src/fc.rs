//! The Free Choice strategy (paper §IV-A).
//!
//! FC is the baseline that models how existing collaborative tagging systems
//! already behave: taggers pick whichever resource they like, and in practice
//! they overwhelmingly pick popular resources. CHOOSE therefore simply samples a
//! resource proportionally to its popularity weight.
//!
//! The paper's evaluation shows FC barely improves tagging quality even with a
//! large budget, because roughly half of its post tasks land on resources that
//! are already over-tagged.

use rand::distributions::WeightedIndex;
use rand::prelude::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

use tagging_core::model::{Post, ResourceId};

use crate::batch::{BatchAllocator, BatchState};
use crate::framework::{AllocationStrategy, AllocationView};

/// Free Choice: taggers pick resources proportionally to popularity.
#[derive(Debug)]
pub struct FreeChoice {
    rng: StdRng,
    sampler: Option<WeightedIndex<f64>>,
}

impl FreeChoice {
    /// Creates the strategy with its own deterministic tagger-choice RNG.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            sampler: None,
        }
    }
}

impl AllocationStrategy for FreeChoice {
    fn name(&self) -> &'static str {
        "FC"
    }

    fn init(&mut self, view: &AllocationView<'_>) {
        // Taggers pick proportionally to popularity. When every weight is zero
        // (degenerate input) fall back to the uniform distribution.
        let weights: Vec<f64> = view
            .popularity
            .iter()
            .map(|&w| if w.is_finite() && w > 0.0 { w } else { 0.0 })
            .collect();
        self.sampler = WeightedIndex::new(weights.clone())
            .ok()
            .or_else(|| WeightedIndex::new(vec![1.0; view.len()]).ok());
    }

    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        let sampler = self
            .sampler
            .as_ref()
            .expect("init() must be called before choose()");
        let idx = sampler.sample(&mut self.rng);
        debug_assert!(idx < view.len());
        ResourceId(idx as u32)
    }

    fn update(&mut self, _view: &AllocationView<'_>, _resource: ResourceId, _post: Option<&Post>) {
        // FC keeps no state beyond the fixed popularity sampler.
    }
}

impl BatchAllocator for FreeChoice {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        // Taggers pick independently of post contents, so a batched choice is
        // the classic CHOOSE; the RNG stream advances identically either way.
        let id = self.choose(&state.view());
        state.commit(id);
        id
    }

    fn observe_one(
        &mut self,
        _view: &AllocationView<'_>,
        _resource: ResourceId,
        _post: Option<&Post>,
    ) {
        // Nothing to observe: FC ignores the posts it receives.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_allocation, ReplaySource};
    use tagging_core::model::TagId;

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    #[test]
    fn fc_concentrates_on_popular_resources() {
        // Resource 0 is 20x more popular than each of the others.
        let n = 5;
        let initial: Vec<Vec<Post>> = (0..n).map(|i| vec![post(i as u32)]).collect();
        let mut popularity = vec![1.0; n];
        popularity[0] = 20.0;
        let future: Vec<Vec<Post>> = (0..n).map(|i| vec![post(i as u32); 2000]).collect();

        let mut fc = FreeChoice::new(1);
        let mut source = ReplaySource::new(future);
        let outcome = run_allocation(&mut fc, &mut source, &initial, &popularity, 1_000);

        assert_eq!(outcome.allocated.iter().sum::<u32>(), 1_000);
        // The popular resource should receive the lion's share (~20/24 ≈ 83%).
        assert!(
            outcome.allocated[0] > 600,
            "popular resource got only {} tasks",
            outcome.allocated[0]
        );
        for i in 1..n {
            assert!(outcome.allocated[i] < 200);
        }
    }

    #[test]
    fn fc_is_deterministic_per_seed() {
        let initial: Vec<Vec<Post>> = (0..4).map(|i| vec![post(i)]).collect();
        let popularity = vec![0.4, 0.3, 0.2, 0.1];
        let run = |seed| {
            let mut fc = FreeChoice::new(seed);
            let mut source = ReplaySource::new(vec![vec![post(0); 100]; 4]);
            run_allocation(&mut fc, &mut source, &initial, &popularity, 50).allocated
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fc_handles_degenerate_popularity() {
        // All-zero popularity falls back to uniform sampling instead of panicking.
        let initial: Vec<Vec<Post>> = (0..3).map(|i| vec![post(i)]).collect();
        let popularity = vec![0.0, 0.0, 0.0];
        let mut fc = FreeChoice::new(3);
        let mut source = ReplaySource::new(vec![vec![post(0); 100]; 3]);
        let outcome = run_allocation(&mut fc, &mut source, &initial, &popularity, 90);
        assert_eq!(outcome.allocated.iter().sum::<u32>(), 90);
        // Every resource should get some tasks under the uniform fallback.
        assert!(outcome.allocated.iter().all(|&x| x > 0));
    }
}
