//! The Round Robin strategy (paper §IV-B, Algorithm 2).
//!
//! RR cycles through the resources in id order, ignoring how many posts they
//! have or how stable their rfds are. It needs almost no state and serves as a
//! simple "spread the budget evenly" baseline: the paper finds it clearly better
//! than FC (it does not pile posts onto popular resources) but clearly worse
//! than FP / FP-MU (it does not focus on the resources that need posts most).

use tagging_core::model::{Post, ResourceId};

use crate::batch::{BatchAllocator, BatchState};
use crate::framework::{AllocationStrategy, AllocationView};

/// Round Robin: allocate post tasks to resources in cyclic id order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    /// Index of the last chosen resource (the paper's global variable `l`).
    last: usize,
    initialised: bool,
}

impl RoundRobin {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AllocationStrategy for RoundRobin {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn init(&mut self, _view: &AllocationView<'_>) {
        // Algorithm 2 starts with l = 1; our ids are 0-based, so the first
        // CHOOSE() should return resource 1 mod n — we keep the paper's exact
        // behaviour of starting at the *second* resource, which is immaterial.
        self.last = 1;
        self.initialised = true;
    }

    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        assert!(self.initialised, "init() must be called before choose()");
        ResourceId((self.last % view.len()) as u32)
    }

    fn update(&mut self, _view: &AllocationView<'_>, _resource: ResourceId, _post: Option<&Post>) {
        self.last += 1;
    }
}

impl BatchAllocator for RoundRobin {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        // Advancing the cycle needs no post, so the whole classic step happens
        // at allocation time.
        assert!(self.initialised, "init() must be called before allocation");
        let id = ResourceId((self.last % state.len()) as u32);
        self.last += 1;
        state.commit(id);
        id
    }

    fn observe_one(
        &mut self,
        _view: &AllocationView<'_>,
        _resource: ResourceId,
        _post: Option<&Post>,
    ) {
        // Nothing to observe: RR ignores the posts it receives.
    }

    /// Native batch: the whole batch is one arithmetic stretch of the cycle —
    /// no per-task dispatch at all.
    fn allocate_batch(&mut self, state: &mut BatchState<'_>, k: usize) -> Vec<ResourceId> {
        assert!(self.initialised, "init() must be called before allocation");
        let n = state.len();
        let start = self.last;
        self.last += k;
        (start..start + k)
            .map(|l| {
                let id = ResourceId((l % n) as u32);
                state.commit(id);
                id
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_allocation, ReplaySource};
    use tagging_core::model::TagId;

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    #[test]
    fn rr_distributes_evenly() {
        let n = 4;
        let initial: Vec<Vec<Post>> = (0..n).map(|i| vec![post(i as u32)]).collect();
        let popularity = vec![0.25; n];
        let mut rr = RoundRobin::new();
        let mut source = ReplaySource::new(vec![vec![post(0); 100]; n]);
        let outcome = run_allocation(&mut rr, &mut source, &initial, &popularity, 8);
        // 8 units over 4 resources → exactly 2 each.
        assert_eq!(outcome.allocated, vec![2, 2, 2, 2]);
    }

    #[test]
    fn rr_handles_budget_not_divisible_by_n() {
        let n = 3;
        let initial: Vec<Vec<Post>> = (0..n).map(|i| vec![post(i as u32)]).collect();
        let popularity = vec![1.0 / 3.0; n];
        let mut rr = RoundRobin::new();
        let mut source = ReplaySource::new(vec![vec![post(0); 100]; n]);
        let outcome = run_allocation(&mut rr, &mut source, &initial, &popularity, 7);
        let mut counts = outcome.allocated.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 2, 3]);
        assert_eq!(outcome.allocated.iter().sum::<u32>(), 7);
    }

    #[test]
    fn rr_cycles_in_id_order() {
        let n = 3;
        let initial: Vec<Vec<Post>> = (0..n).map(|i| vec![post(i as u32)]).collect();
        let popularity = vec![1.0 / 3.0; n];
        let mut rr = RoundRobin::new();
        let mut source = ReplaySource::new(vec![vec![post(0); 100]; n]);
        let outcome = run_allocation(&mut rr, &mut source, &initial, &popularity, 6);
        let order: Vec<u32> = outcome.trace.iter().map(|s| s.resource.0).collect();
        // Algorithm 2 starts at (1 mod n) + ... : resource 1, 2, 0, 1, 2, 0.
        assert_eq!(order, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn rr_single_resource() {
        let initial = vec![vec![post(0)]];
        let popularity = vec![1.0];
        let mut rr = RoundRobin::new();
        let mut source = ReplaySource::new(vec![vec![post(0); 10]]);
        let outcome = run_allocation(&mut rr, &mut source, &initial, &popularity, 5);
        assert_eq!(outcome.allocated, vec![5]);
    }
}
