//! Small utilities shared by the allocation strategies.

use std::cmp::Ordering;

/// A totally ordered `f64` wrapper (ordering via [`f64::total_cmp`]), used as a
/// priority-queue key for MA scores.
///
/// NaN keys are rejected at construction so that the heap ordering is always the
/// intuitive numeric one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite (non-NaN) value.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "priority keys must not be NaN");
        Self(value)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let mut values = [OrdF64::new(0.5), OrdF64::new(0.1), OrdF64::new(0.9)];
        values.sort();
        assert_eq!(values[0].get(), 0.1);
        assert_eq!(values[2].get(), 0.9);
        assert!(OrdF64::new(0.2) < OrdF64::new(0.3));
        assert_eq!(OrdF64::new(0.2), OrdF64::new(0.2));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan() {
        OrdF64::new(f64::NAN);
    }

    #[test]
    fn handles_negative_zero_and_infinities() {
        assert!(OrdF64::new(f64::NEG_INFINITY) < OrdF64::new(0.0));
        assert!(OrdF64::new(f64::INFINITY) > OrdF64::new(1.0));
        assert!(OrdF64::new(-0.0) <= OrdF64::new(0.0));
    }
}
