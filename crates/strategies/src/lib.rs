//! # tagging-strategies
//!
//! Incentive allocation strategies from *"On Incentive-based Tagging"*
//! (ICDE 2013): how should a fixed budget of paid "post tasks" be distributed
//! across resources to maximise their aggregate tagging quality?
//!
//! The crate provides
//!
//! * the shared allocation framework of Algorithm 1 ([`framework`]): strategies
//!   implement INIT / CHOOSE / UPDATE ([`framework::AllocationStrategy`]) and the
//!   framework invests one reward unit at a time, drawing completed posts from a
//!   [`framework::PostSource`];
//! * the five practical strategies of §IV —
//!   [`fc::FreeChoice`], [`rr::RoundRobin`], [`fp::FewestPostsFirst`],
//!   [`mu::MostUnstableFirst`] and [`fpmu::FpMu`];
//! * the offline optimal algorithm of §III-D ([`dp`]): a dynamic program over
//!   precomputed quality tables, used as the upper-bound reference in every
//!   experiment.
//!
//! ## Quick example
//!
//! ```
//! use tagging_core::model::{Post, TagId};
//! use tagging_strategies::fp::FewestPostsFirst;
//! use tagging_strategies::framework::{run_allocation, ReplaySource};
//!
//! let post = |t: u32| Post::new([TagId(t)]).unwrap();
//! // Two resources: one with 5 initial posts, one with just 1.
//! let initial = vec![vec![post(0); 5], vec![post(1); 1]];
//! let popularity = vec![0.9, 0.1];
//! let mut source = ReplaySource::new(vec![vec![post(0); 10], vec![post(1); 10]]);
//!
//! let mut fp = FewestPostsFirst::new();
//! let outcome = run_allocation(&mut fp, &mut source, &initial, &popularity, 4);
//! // FP channels every task to the under-tagged resource.
//! assert_eq!(outcome.allocated, vec![0, 4]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod dp;
pub mod fc;
pub mod fp;
pub mod fpmu;
pub mod framework;
pub mod mu;
pub mod rr;
pub mod util;

pub use batch::{run_allocation_batched, BatchAllocator, BatchState};
pub use dp::{brute_force_allocation, optimal_allocation, DpAllocation, QualityTable};
pub use fc::FreeChoice;
pub use fp::FewestPostsFirst;
pub use fpmu::FpMu;
pub use framework::{
    run_allocation, AllocationOutcome, AllocationStep, AllocationStrategy, AllocationView,
    PostSource, ReplaySource,
};
pub use mu::MostUnstableFirst;
pub use rr::RoundRobin;

use tagging_core::model::ResourceId;

/// Identifier of a built-in strategy, convenient for sweeps and command lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Free Choice (popularity-driven baseline).
    Fc,
    /// Round Robin.
    Rr,
    /// Fewest Posts First.
    Fp,
    /// Most Unstable First.
    Mu,
    /// Hybrid FP then MU.
    FpMu,
}

impl StrategyKind {
    /// All practical strategies, in the order the paper's figures list them.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::FpMu,
        StrategyKind::Fp,
        StrategyKind::Rr,
        StrategyKind::Mu,
        StrategyKind::Fc,
    ];

    /// The display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Fc => "FC",
            StrategyKind::Rr => "RR",
            StrategyKind::Fp => "FP",
            StrategyKind::Mu => "MU",
            StrategyKind::FpMu => "FP-MU",
        }
    }

    /// Parses a strategy name (case-insensitive; accepts "fp-mu" and "fpmu").
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "fc" => Some(StrategyKind::Fc),
            "rr" => Some(StrategyKind::Rr),
            "fp" => Some(StrategyKind::Fp),
            "mu" => Some(StrategyKind::Mu),
            "fp-mu" | "fpmu" | "fp_mu" => Some(StrategyKind::FpMu),
            _ => None,
        }
    }

    /// Instantiates the strategy. `omega` configures MU / FP-MU; `seed` drives
    /// the Free-Choice tagger model.
    pub fn build(self, omega: usize, seed: u64) -> Box<dyn AllocationStrategy> {
        match self {
            StrategyKind::Fc => Box::new(FreeChoice::new(seed)),
            StrategyKind::Rr => Box::new(RoundRobin::new()),
            StrategyKind::Fp => Box::new(FewestPostsFirst::new()),
            StrategyKind::Mu => Box::new(MostUnstableFirst::new(omega)),
            StrategyKind::FpMu => Box::new(FpMu::new(omega)),
        }
    }

    /// Instantiates the strategy behind its batched interface, `Send` so a
    /// live session can be served from a worker-pool thread.
    pub fn build_batch(self, omega: usize, seed: u64) -> Box<dyn BatchAllocator + Send> {
        match self {
            StrategyKind::Fc => Box::new(FreeChoice::new(seed)),
            StrategyKind::Rr => Box::new(RoundRobin::new()),
            StrategyKind::Fp => Box::new(FewestPostsFirst::new()),
            StrategyKind::Mu => Box::new(MostUnstableFirst::new(omega)),
            StrategyKind::FpMu => Box::new(FpMu::new(omega)),
        }
    }
}

/// Convenience: turn an allocation vector into `(resource, x_i)` pairs with
/// non-zero allocations, sorted by descending allocation.
pub fn top_allocations(allocation: &[u32], limit: usize) -> Vec<(ResourceId, u32)> {
    let mut pairs: Vec<(ResourceId, u32)> = allocation
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0)
        .map(|(i, &x)| (ResourceId(i as u32), x))
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(limit);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_kind_parse_and_name_roundtrip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StrategyKind::parse("fpmu"), Some(StrategyKind::FpMu));
        assert_eq!(StrategyKind::parse("unknown"), None);
    }

    #[test]
    fn strategy_kind_builds_correctly_named_strategies() {
        for kind in StrategyKind::ALL {
            let strategy = kind.build(5, 42);
            assert_eq!(strategy.name(), kind.name());
        }
    }

    #[test]
    fn top_allocations_sorts_and_truncates() {
        let allocation = vec![0, 5, 2, 5, 1];
        let top = top_allocations(&allocation, 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (ResourceId(1), 5));
        assert_eq!(top[1], (ResourceId(3), 5));
        assert_eq!(top[2], (ResourceId(2), 2));
    }

    #[test]
    fn top_allocations_empty_when_nothing_allocated() {
        assert!(top_allocations(&[0, 0, 0], 5).is_empty());
    }
}
