//! The hybrid FP-MU strategy (paper §IV-E, Algorithm 5).
//!
//! MU cannot rank resources that have fewer than ω posts, and those are exactly
//! the heavily under-tagged resources most in need of attention. FP-MU therefore
//! runs in two phases:
//!
//! 1. **Warm-up:** while any resource has fewer than ω posts, allocate with FP.
//!    Because a below-ω resource is always among the globally fewest-tagged
//!    resources, FP spends the warm-up budget exactly on bringing every resource
//!    up to ω posts — the quantity Algorithm 5 computes up front as
//!    `b = Σ_i max(0, ω − c_i)`.
//! 2. **MU phase:** once every resource has at least ω posts (so every MA score
//!    is defined), switch to MU for the remaining budget.
//!
//! The paper notes that a larger ω lengthens the warm-up, making FP-MU behave
//! more and more like plain FP (Figure 6(f)).

use tagging_core::model::{Post, ResourceId};

use crate::batch::{BatchAllocator, BatchState};
use crate::fp::FewestPostsFirst;
use crate::framework::{AllocationStrategy, AllocationView};
use crate::mu::MostUnstableFirst;

/// Which phase FP-MU is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WarmUp,
    Mu,
}

/// Hybrid strategy: FP until every resource has ω posts, then MU.
#[derive(Debug)]
pub struct FpMu {
    omega: usize,
    fp: FewestPostsFirst,
    mu: MostUnstableFirst,
    /// Number of resources still below ω posts.
    below_omega: usize,
    /// Phase the last CHOOSE was made in (so UPDATE routes to the right queue).
    last_phase: Phase,
}

impl FpMu {
    /// Creates the strategy with MA window size `omega ≥ 2`.
    pub fn new(omega: usize) -> Self {
        Self {
            omega,
            fp: FewestPostsFirst::new(),
            mu: MostUnstableFirst::new(omega),
            below_omega: 0,
            last_phase: Phase::WarmUp,
        }
    }

    /// The MA window size ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// True while the warm-up (FP) phase is still running.
    pub fn in_warm_up(&self) -> bool {
        self.below_omega > 0
    }

    /// The warm-up budget Algorithm 5 would compute up front:
    /// `Σ_i max(0, ω − (c_i + x_i))` at the current state.
    pub fn remaining_warm_up_budget(&self, view: &AllocationView<'_>) -> usize {
        (0..view.len())
            .map(|i| {
                self.omega
                    .saturating_sub(view.total_count(ResourceId(i as u32)))
            })
            .sum()
    }
}

impl AllocationStrategy for FpMu {
    fn name(&self) -> &'static str {
        "FP-MU"
    }

    fn init(&mut self, view: &AllocationView<'_>) {
        self.fp.init(view);
        self.mu.init(view);
        self.below_omega = (0..view.len())
            .filter(|&i| view.total_count(ResourceId(i as u32)) < self.omega)
            .count();
        self.last_phase = if self.below_omega > 0 {
            Phase::WarmUp
        } else {
            Phase::Mu
        };
    }

    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        if self.below_omega > 0 {
            self.last_phase = Phase::WarmUp;
            self.fp.choose(view)
        } else {
            self.last_phase = Phase::Mu;
            self.mu.choose(view)
        }
    }

    fn update(&mut self, view: &AllocationView<'_>, resource: ResourceId, post: Option<&Post>) {
        match self.last_phase {
            Phase::WarmUp => {
                // The FP heap popped this resource in CHOOSE; reinsert it with the
                // new count, and let MU's tracker observe the post so its MA score
                // is ready when the warm-up ends.
                self.fp.update(view, resource, post);
                self.mu.observe(resource, post);
                // Did this task lift the resource to ω posts?
                if view.total_count(resource) == self.omega {
                    self.below_omega = self.below_omega.saturating_sub(1);
                }
            }
            Phase::Mu => {
                self.mu.update(view, resource, post);
            }
        }
    }
}

impl BatchAllocator for FpMu {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        if self.below_omega > 0 {
            let id = self.fp.allocate_one(state);
            // Counts advance one task at a time, so a resource crosses ω with
            // an exact `== ω` — the same check the classic UPDATE performs.
            if state.total_count(id) == self.omega {
                self.below_omega -= 1;
            }
            id
        } else {
            self.mu.allocate_one(state)
        }
    }

    fn observe_one(
        &mut self,
        _view: &AllocationView<'_>,
        resource: ResourceId,
        post: Option<&Post>,
    ) {
        // The FP half of a warm-up step already ran at allocation time; the
        // only post-dependent state is MU's tracker, which must see every
        // completion whichever phase allocated it — exactly what the classic
        // UPDATE feeds it in both phases.
        self.mu.observe(resource, post);
    }

    /// Native batch: Algorithm 5's up-front warm-up budget makes the phase
    /// split computable without stepping. While any resource is below ω, FP
    /// always picks a below-ω resource (the global minimum count is below ω),
    /// so sequential allocation stays in warm-up for exactly
    /// `w = Σ_i max(0, ω − (c_i + x_i))` tasks — the first `min(k, w)` tasks
    /// are one native FP batch, the rest one native MU batch.
    fn allocate_batch(&mut self, state: &mut BatchState<'_>, k: usize) -> Vec<ResourceId> {
        let mut out = Vec::with_capacity(k);
        if self.below_omega > 0 {
            let warm_up = self.remaining_warm_up_budget(&state.view());
            let take = warm_up.min(k);
            out.extend(self.fp.allocate_batch(state, take));
            // Counts advance +1 per task, so recounting after the sub-batch
            // equals the per-task `== ω` decrements of the sequential path.
            self.below_omega = (0..state.len() as u32)
                .filter(|&i| state.total_count(ResourceId(i)) < self.omega)
                .count();
        }
        if out.len() < k {
            let rest = k - out.len();
            out.extend(self.mu.allocate_batch(state, rest));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_allocation, ReplaySource};
    use tagging_core::model::TagId;

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    fn stable_sequence(tag: u32, n: usize) -> Vec<Post> {
        vec![post(tag); n]
    }

    fn unstable_sequence(base: u32, n: usize) -> Vec<Post> {
        (0..n).map(|i| post(base + (i % 4) as u32)).collect()
    }

    #[test]
    fn warm_up_lifts_every_resource_to_omega() {
        let omega = 5;
        // Counts 1, 2, 8: warm-up needs (5-1) + (5-2) = 7 units.
        let initial = vec![
            stable_sequence(0, 1),
            stable_sequence(1, 2),
            unstable_sequence(10, 8),
        ];
        let popularity = vec![1.0 / 3.0; 3];
        let mut fpmu = FpMu::new(omega);
        let mut source = ReplaySource::new(vec![
            stable_sequence(0, 100),
            stable_sequence(1, 100),
            unstable_sequence(10, 100),
        ]);
        let outcome = run_allocation(&mut fpmu, &mut source, &initial, &popularity, 7);
        // After exactly the warm-up budget, all resources have ≥ ω posts.
        for (i, init) in initial.iter().enumerate() {
            let total = init.len() + outcome.allocated[i] as usize;
            assert!(total >= omega, "resource {i} has only {total} posts");
        }
        assert!(!fpmu.in_warm_up());
        // The already-rich resource received nothing during warm-up.
        assert_eq!(outcome.allocated[2], 0);
    }

    #[test]
    fn after_warm_up_behaves_like_mu() {
        let omega = 5;
        // All resources already at/above ω; resource 1 is unstable.
        let initial = vec![stable_sequence(0, 10), unstable_sequence(10, 10)];
        let popularity = vec![0.5, 0.5];
        let mut fpmu = FpMu::new(omega);
        let mut source =
            ReplaySource::new(vec![stable_sequence(0, 100), unstable_sequence(10, 100)]);
        let outcome = run_allocation(&mut fpmu, &mut source, &initial, &popularity, 10);
        assert!(
            outcome.allocated[1] > outcome.allocated[0],
            "MU phase should favour the unstable resource: {:?}",
            outcome.allocated
        );
    }

    #[test]
    fn switches_from_fp_to_mu_mid_run() {
        let omega = 4;
        // Resource 0 below ω (2 posts) and *unstable-looking*; resource 1 stable
        // with many posts. Budget 10: 2 units of warm-up, then MU decides.
        let initial = vec![unstable_sequence(0, 2), stable_sequence(20, 12)];
        let popularity = vec![0.5, 0.5];
        let mut fpmu = FpMu::new(omega);
        let mut source =
            ReplaySource::new(vec![unstable_sequence(0, 100), stable_sequence(20, 100)]);
        let outcome = run_allocation(&mut fpmu, &mut source, &initial, &popularity, 10);
        // Warm-up gives resource 0 its first 2 tasks (tracked in the trace).
        assert_eq!(outcome.trace[0].resource, ResourceId(0));
        assert_eq!(outcome.trace[1].resource, ResourceId(0));
        // After warm-up the unstable resource 0 keeps winning under MU, while the
        // perfectly stable resource 1 receives nothing.
        assert_eq!(outcome.allocated[1], 0);
        assert_eq!(outcome.allocated[0], 10);
    }

    #[test]
    fn large_omega_makes_fpmu_equal_fp() {
        // With ω larger than any reachable post count, FP-MU never leaves the
        // warm-up phase and must allocate exactly like FP (paper Figure 6(f)).
        let omega = 1_000;
        let initial = vec![
            stable_sequence(0, 3),
            stable_sequence(1, 7),
            unstable_sequence(10, 5),
        ];
        let popularity = vec![1.0 / 3.0; 3];
        let budget = 40;

        let mut fpmu = FpMu::new(omega);
        let mut source_a = ReplaySource::new(vec![
            stable_sequence(0, 200),
            stable_sequence(1, 200),
            unstable_sequence(10, 200),
        ]);
        let fpmu_outcome = run_allocation(&mut fpmu, &mut source_a, &initial, &popularity, budget);

        let mut fp = crate::fp::FewestPostsFirst::new();
        let mut source_b = ReplaySource::new(vec![
            stable_sequence(0, 200),
            stable_sequence(1, 200),
            unstable_sequence(10, 200),
        ]);
        let fp_outcome = run_allocation(&mut fp, &mut source_b, &initial, &popularity, budget);

        assert_eq!(fpmu_outcome.allocated, fp_outcome.allocated);
        assert!(fpmu.in_warm_up());
    }

    #[test]
    fn remaining_warm_up_budget_matches_algorithm_5() {
        let omega = 5;
        let initial = vec![
            stable_sequence(0, 1),
            stable_sequence(1, 2),
            stable_sequence(2, 9),
        ];
        let allocated = vec![0u32, 1, 0];
        let popularity = vec![1.0 / 3.0; 3];
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        let fpmu = FpMu::new(omega);
        // max(0,5-1) + max(0,5-3) + max(0,5-9) = 4 + 2 + 0 = 6.
        assert_eq!(fpmu.remaining_warm_up_budget(&view), 6);
    }
}
