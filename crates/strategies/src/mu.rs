//! The Most Unstable First strategy (paper §IV-D, Algorithm 4).
//!
//! MU allocates the next post task to the resource with the **lowest MA score**
//! — the resource whose rfd is currently the least stable and therefore
//! presumably needs quality improvement the most. Resources that have received
//! fewer than ω posts have no MA score and are ignored (the weakness FP-MU
//! fixes).
//!
//! Implementation notes, mirroring the paper's complexity discussion
//! (Table V, Appendix C):
//!
//! * each resource keeps an incremental [`MaTracker`], so an UPDATE costs
//!   `O(d)` where `d` is the number of distinct tags of that resource, not
//!   `O(ω·|T|)`;
//! * the priority queue is a binary heap with **lazy deletion**: entries carry a
//!   version number and stale entries are skipped on pop, so the structure also
//!   supports resources whose MA score becomes defined mid-run (needed by the
//!   FP-MU warm-up phase).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tagging_core::model::{Post, ResourceId};
use tagging_core::stability::MaTracker;

use crate::batch::{water_fill, BatchAllocator, BatchState};
use crate::framework::{AllocationStrategy, AllocationView};
use crate::util::OrdF64;

/// Most Unstable First: allocate to the resource with the lowest MA score.
#[derive(Debug)]
pub struct MostUnstableFirst {
    omega: usize,
    trackers: Vec<MaTracker>,
    /// Min-heap over (MA score, version, resource id); stale versions are skipped.
    queue: BinaryHeap<Reverse<(OrdF64, u64, u32)>>,
    version: Vec<u64>,
}

impl MostUnstableFirst {
    /// Creates the strategy with MA window size `omega ≥ 2`.
    pub fn new(omega: usize) -> Self {
        assert!(
            omega >= 2,
            "the MA window ω must be at least 2 (got {omega})"
        );
        Self {
            omega,
            trackers: Vec::new(),
            queue: BinaryHeap::new(),
            version: Vec::new(),
        }
    }

    /// The MA window size ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Current MA score of a resource, if defined.
    pub fn ma_score(&self, id: ResourceId) -> Option<f64> {
        self.trackers.get(id.index()).and_then(MaTracker::ma_score)
    }

    /// Feeds a post that was allocated by *another* strategy (the FP-MU warm-up
    /// phase) into this resource's tracker, enqueueing the resource once its MA
    /// score becomes defined.
    pub fn observe(&mut self, resource: ResourceId, post: Option<&Post>) {
        let i = resource.index();
        if let Some(post) = post {
            self.trackers[i].push(post);
        }
        if let Some(ma) = self.trackers[i].ma_score() {
            self.version[i] += 1;
            self.queue
                .push(Reverse((OrdF64::new(ma), self.version[i], resource.0)));
        }
    }

    /// Pops the resource with the lowest valid MA score, skipping stale entries.
    fn pop_most_unstable(&mut self) -> Option<ResourceId> {
        while let Some(Reverse((_ma, version, id))) = self.queue.pop() {
            if self.version[id as usize] == version {
                return Some(ResourceId(id));
            }
        }
        None
    }

    /// Fallback when no resource has a defined MA score: pick the resource with
    /// the fewest posts (deterministic, sensible, and only reachable when every
    /// resource is below ω — the situation MU is documented to handle poorly).
    fn fallback(&self, view: &AllocationView<'_>) -> ResourceId {
        (0..view.len())
            .map(|i| ResourceId(i as u32))
            .min_by_key(|id| (view.total_count(*id), id.0))
            .expect("at least one resource")
    }
}

impl AllocationStrategy for MostUnstableFirst {
    fn name(&self) -> &'static str {
        "MU"
    }

    fn init(&mut self, view: &AllocationView<'_>) {
        let n = view.len();
        self.queue.clear();
        self.version = vec![0; n];
        self.trackers = (0..n)
            .map(|i| MaTracker::from_posts(self.omega, view.initial_sequences[i].iter()))
            .collect();
        for i in 0..n {
            if let Some(ma) = self.trackers[i].ma_score() {
                self.version[i] += 1;
                self.queue
                    .push(Reverse((OrdF64::new(ma), self.version[i], i as u32)));
            }
        }
    }

    fn choose(&mut self, view: &AllocationView<'_>) -> ResourceId {
        match self.pop_most_unstable() {
            Some(id) => id,
            None => self.fallback(view),
        }
    }

    fn update(&mut self, _view: &AllocationView<'_>, resource: ResourceId, post: Option<&Post>) {
        // Identical to observe(): push the new post (if any) into the tracker and
        // reinsert the resource with its refreshed MA score.
        self.observe(resource, post);
    }
}

impl BatchAllocator for MostUnstableFirst {
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId {
        // A popped resource stays out of the queue until its completion is
        // observed (a lease: its MA score is about to change, so it cannot be
        // meaningfully re-ranked yet). A batch therefore spreads over the k
        // most unstable resources instead of piling onto one stale minimum.
        let id = match self.pop_most_unstable() {
            Some(id) => id,
            None => self.fallback(&state.view()),
        };
        state.commit(id);
        id
    }

    fn observe_one(
        &mut self,
        _view: &AllocationView<'_>,
        resource: ResourceId,
        post: Option<&Post>,
    ) {
        // The deferred half of the classic UPDATE: fold the post into the
        // tracker and re-enqueue the resource with its refreshed MA score.
        self.observe(resource, post);
    }

    /// Native batch: drain the queue first (identical pops to the default),
    /// then satisfy any remainder with one water-fill over `(total posts, id)`
    /// — the sequential fallback re-scans all n resources per task, the fill
    /// replays those picks in `O(n log n + k)` total.
    fn allocate_batch(&mut self, state: &mut BatchState<'_>, k: usize) -> Vec<ResourceId> {
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match self.pop_most_unstable() {
                Some(id) => {
                    state.commit(id);
                    out.push(id);
                }
                // Nothing re-enters the queue during allocation, so once the
                // queue is empty every remaining task goes to the fallback.
                None => break,
            }
        }
        let remaining = k - out.len();
        if remaining > 0 {
            let entries: Vec<(u64, u32)> = (0..state.len() as u32)
                .map(|i| (state.total_count(ResourceId(i)) as u64, i))
                .collect();
            water_fill(entries, remaining, |id| {
                state.commit(id);
                out.push(id);
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{run_allocation, ReplaySource};
    use tagging_core::model::{TagDictionary, TagId};

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    /// A stable sequence: the same post repeated `n` times.
    fn stable_sequence(tag: u32, n: usize) -> Vec<Post> {
        vec![post(tag); n]
    }

    /// An unstable sequence: alternating disjoint tag pairs.
    fn unstable_sequence(base: u32, n: usize) -> Vec<Post> {
        (0..n).map(|i| post(base + (i % 4) as u32)).collect()
    }

    #[test]
    #[should_panic(expected = "ω must be at least 2")]
    fn mu_rejects_omega_one() {
        MostUnstableFirst::new(1);
    }

    #[test]
    fn mu_prefers_the_least_stable_resource() {
        // Resource 0: perfectly stable; resource 1: unstable. Both have ≥ ω posts.
        let initial = vec![stable_sequence(0, 12), unstable_sequence(10, 12)];
        let popularity = vec![0.5, 0.5];
        let mut mu = MostUnstableFirst::new(5);
        let mut source =
            ReplaySource::new(vec![stable_sequence(0, 100), unstable_sequence(10, 100)]);
        let outcome = run_allocation(&mut mu, &mut source, &initial, &popularity, 10);
        assert!(
            outcome.allocated[1] > outcome.allocated[0],
            "unstable resource should receive more tasks: {:?}",
            outcome.allocated
        );
    }

    #[test]
    fn mu_ignores_resources_below_omega() {
        // Resource 0 has only 2 posts (< ω = 5) and is ignored even though it is
        // the most in need; resource 1 has 10 mildly-unstable posts.
        let initial = vec![stable_sequence(0, 2), unstable_sequence(10, 10)];
        let popularity = vec![0.5, 0.5];
        let mut mu = MostUnstableFirst::new(5);
        let mut source = ReplaySource::new(vec![stable_sequence(0, 50), unstable_sequence(10, 50)]);
        let outcome = run_allocation(&mut mu, &mut source, &initial, &popularity, 8);
        assert_eq!(
            outcome.allocated[0], 0,
            "below-ω resource must be ignored by MU"
        );
        assert_eq!(outcome.allocated[1], 8);
    }

    #[test]
    fn mu_falls_back_to_fewest_posts_when_no_ma_defined() {
        // Every resource is below ω: MU cannot rank by MA score and falls back.
        let initial = vec![stable_sequence(0, 3), stable_sequence(1, 1)];
        let popularity = vec![0.5, 0.5];
        let mut mu = MostUnstableFirst::new(5);
        let mut source = ReplaySource::new(vec![stable_sequence(0, 50), stable_sequence(1, 50)]);
        let outcome = run_allocation(&mut mu, &mut source, &initial, &popularity, 2);
        // The fallback picks the resource with fewest posts (resource 1).
        assert_eq!(outcome.allocated[1], 2);
    }

    #[test]
    fn mu_ma_scores_track_posts() {
        let mut dict = TagDictionary::new();
        let steady = Post::from_names(&mut dict, ["a", "b"]).unwrap();
        let initial = vec![vec![steady.clone(); 6]];
        let allocated = vec![0u32];
        let popularity = vec![1.0];
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        let mut mu = MostUnstableFirst::new(4);
        mu.init(&view);
        let ma0 = mu.ma_score(ResourceId(0)).unwrap();
        assert!((ma0 - 1.0).abs() < 1e-12, "constant sequence has MA 1");
        // Observing a divergent post lowers the MA score.
        let outlier = Post::from_names(&mut dict, ["zzz"]).unwrap();
        mu.observe(ResourceId(0), Some(&outlier));
        let ma1 = mu.ma_score(ResourceId(0)).unwrap();
        assert!(ma1 < ma0);
    }

    #[test]
    fn mu_observe_enqueues_resources_that_cross_omega() {
        // Resource 0 starts below ω; feeding it posts via observe() must make it
        // eligible for CHOOSE.
        let initial = vec![stable_sequence(0, 3), unstable_sequence(10, 10)];
        let allocated = vec![0u32, 0];
        let popularity = vec![0.5, 0.5];
        let view = AllocationView {
            initial_sequences: &initial,
            allocated: &allocated,
            popularity: &popularity,
        };
        let mut mu = MostUnstableFirst::new(5);
        mu.init(&view);
        assert!(mu.ma_score(ResourceId(0)).is_none());
        // Push two more posts: the resource reaches ω = 5 posts.
        mu.observe(ResourceId(0), Some(&post(0)));
        mu.observe(ResourceId(0), Some(&post(0)));
        assert!(mu.ma_score(ResourceId(0)).is_some());
        // It is now somewhere in the queue; a sequence of pops must eventually
        // return it (after the less stable resource 1).
        let first = mu.pop_most_unstable().unwrap();
        let second = mu.pop_most_unstable().unwrap();
        assert_ne!(first, second);
        assert!(first == ResourceId(1) || second == ResourceId(1));
        assert!(first == ResourceId(0) || second == ResourceId(0));
    }

    #[test]
    fn mu_update_with_none_post_keeps_resource_enqueued() {
        let initial = vec![unstable_sequence(0, 10)];
        let popularity = vec![1.0];
        let mut mu = MostUnstableFirst::new(5);
        // Source with no future posts: every task is undelivered, but MU must not
        // lose the resource from its queue or loop forever.
        let mut source = ReplaySource::new(vec![vec![]]);
        let outcome = run_allocation(&mut mu, &mut source, &initial, &popularity, 5);
        assert_eq!(outcome.allocated[0], 5);
        assert_eq!(outcome.undelivered, 5);
    }
}
