//! The theoretically optimal DP algorithm (paper §III-D, Appendix B,
//! Algorithm 6).
//!
//! DP assumes it knows, for every resource, (a) the posts the resource *would*
//! receive for each additional post task and (b) the resource's stable rfd. It
//! can therefore tabulate `q_i(c_i + x)` for every `x ≤ B` ([`QualityTable`])
//! and solve
//!
//! ```text
//! maximise Σ_i q_i(c_i + x_i)   subject to   Σ_i x_i = B, x_i ∈ ℤ≥0
//! ```
//!
//! exactly, by dynamic programming over (budget, resource prefix):
//!
//! ```text
//! Q(b, 1) = q_1(c_1 + b)
//! Q(b, l) = max_{0 ≤ x_l ≤ b}  Q(b − x_l, l − 1) + q_l(c_l + x_l)
//! ```
//!
//! Time is `O(n·B²)` once the table is built (`O(n·|T|·B)` for the table) and
//! space is `O(n·B)` — the complexities reported in the paper's Table V. Like
//! the paper, we use DP only as an offline upper bound to compare the practical
//! strategies against; it is far too slow for production use at full budget.

use tagging_core::model::Post;
use tagging_core::rfd::{FrequencyTracker, Rfd};
use tagging_core::similarity::{CosineSimilarity, SimilarityMetric};
use tagging_runtime::Runtime;

/// Precomputed per-resource quality values `q_i(c_i + x)` for `x = 0..=budget`.
#[derive(Debug, Clone)]
pub struct QualityTable {
    /// `values[i][x]` = quality of resource `i` after `x` additional post tasks.
    values: Vec<Vec<f64>>,
}

impl QualityTable {
    /// Builds the table from the initial posts, the known future posts and the
    /// reference (stable) rfds of every resource.
    ///
    /// When a resource has fewer than `budget` future posts, its quality stays at
    /// the value reached after its last future post — additional post tasks can
    /// no longer change its rfd, mirroring the paper's replay-based evaluation.
    pub fn from_posts(
        initial: &[Vec<Post>],
        future: &[Vec<Post>],
        references: &[Rfd],
        budget: usize,
    ) -> Self {
        Self::par_from_posts(&Runtime::from_env(), initial, future, references, budget)
    }

    /// [`QualityTable::from_posts`] with a custom similarity metric.
    pub fn from_posts_with_metric<M: SimilarityMetric + Sync>(
        initial: &[Vec<Post>],
        future: &[Vec<Post>],
        references: &[Rfd],
        budget: usize,
        metric: &M,
    ) -> Self {
        Self::par_from_posts_with_metric(
            &Runtime::from_env(),
            initial,
            future,
            references,
            budget,
            metric,
        )
    }

    /// [`QualityTable::from_posts`] on an explicit [`Runtime`].
    ///
    /// Table construction is `O(n · |T| · B)` — the dominant cost of a DP run
    /// at paper scale — and each resource's row is independent of every other
    /// row, so rows are built in parallel and reassembled in resource order.
    /// The result is bit-identical at any thread count.
    pub fn par_from_posts(
        runtime: &Runtime,
        initial: &[Vec<Post>],
        future: &[Vec<Post>],
        references: &[Rfd],
        budget: usize,
    ) -> Self {
        Self::par_from_posts_with_metric(
            runtime,
            initial,
            future,
            references,
            budget,
            &CosineSimilarity,
        )
    }

    /// [`QualityTable::par_from_posts`] with a custom similarity metric.
    pub fn par_from_posts_with_metric<M: SimilarityMetric + Sync>(
        runtime: &Runtime,
        initial: &[Vec<Post>],
        future: &[Vec<Post>],
        references: &[Rfd],
        budget: usize,
        metric: &M,
    ) -> Self {
        assert!(
            !initial.is_empty(),
            "cannot allocate over zero resources (the quality table needs at least one resource)"
        );
        assert_eq!(
            initial.len(),
            future.len(),
            "initial/future length mismatch"
        );
        assert_eq!(
            initial.len(),
            references.len(),
            "initial/references length mismatch"
        );
        let n = initial.len();
        let values = runtime.par_map_indexed(n, |i| {
            let mut tracker = FrequencyTracker::from_posts(initial[i].iter());
            let mut row = Vec::with_capacity(budget + 1);
            row.push(metric.similarity(&tracker.rfd(), &references[i]));
            for x in 1..=budget {
                if let Some(post) = future[i].get(x - 1) {
                    tracker.push(post);
                    row.push(metric.similarity(&tracker.rfd(), &references[i]));
                } else {
                    // No more future posts: quality can no longer change.
                    let last = *row.last().expect("row has at least the x = 0 entry");
                    row.push(last);
                }
            }
            row
        });
        Self { values }
    }

    /// Builds a table directly from explicit quality rows (used in tests and by
    /// ablation benches).
    pub fn from_rows(values: Vec<Vec<f64>>) -> Self {
        assert!(
            !values.is_empty(),
            "cannot allocate over zero resources (the table needs at least one resource)"
        );
        let width = values[0].len();
        assert!(width >= 1, "each row needs at least the x = 0 entry");
        assert!(
            values.iter().all(|row| row.len() == width),
            "all rows must cover the same budget range"
        );
        Self { values }
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.values.len()
    }

    /// Largest per-resource allocation the table covers.
    ///
    /// Every constructor rejects zero-resource tables with a
    /// "cannot allocate over zero resources" panic, so `values[0]` always
    /// exists here.
    pub fn max_allocation(&self) -> usize {
        self.values[0].len() - 1
    }

    /// `q_i(c_i + x)`; `x` values beyond the table are clamped to the last entry.
    pub fn quality(&self, resource: usize, x: usize) -> f64 {
        let row = &self.values[resource];
        row[x.min(row.len() - 1)]
    }
}

/// Result of an (optimal) allocation computation.
#[derive(Debug, Clone, PartialEq)]
pub struct DpAllocation {
    /// Post tasks per resource (`x`), summing to the budget.
    pub allocation: Vec<u32>,
    /// The achieved total quality `Σ_i q_i(c_i + x_i)` (not averaged).
    pub total_quality: f64,
}

impl DpAllocation {
    /// Average quality `q(R, c + x)` = total quality / n.
    pub fn mean_quality(&self) -> f64 {
        self.total_quality / self.allocation.len().max(1) as f64
    }
}

/// Algorithm 6: exact DP over (budget, resource prefix), on the
/// process-default [`Runtime`] (see [`par_optimal_allocation`]).
///
/// Panics when the table is empty. `budget` may exceed
/// [`QualityTable::max_allocation`]; per-resource allocations beyond the table
/// simply stop improving quality (consistent with [`QualityTable::quality`]).
pub fn optimal_allocation(table: &QualityTable, budget: usize) -> DpAllocation {
    par_optimal_allocation(&Runtime::from_env(), table, budget)
}

/// Rows narrower than this many cells run the layer fill on the calling
/// thread: every layer pays a fresh scoped-thread fan-out (tens of
/// microseconds of spawn/join), while a layer holds only `O(budget²/2)`
/// additions — measured on 2 cores the fan-out breaks even around 500–1,000
/// cells, so below this cutoff parallelism is a net loss. The cutoff is
/// invisible in the output — every cell is a pure function of the previous
/// layer's row — and is `pub` so tests can straddle it.
pub const PAR_DP_MIN_CELLS: usize = 512;

/// [`optimal_allocation`] on an explicit [`Runtime`] — the parallel DP core.
///
/// Within each layer `l` the `budget + 1` cells of the recurrence only read
/// the previous layer's row `prev`, so they are computed in parallel chunks
/// over `b` and reassembled in budget order (the paper's Table V `O(n·B²)`
/// bound divides by the thread count). The argmax tie-break is "smallest `x`
/// wins" (strict `>`), decided independently inside each cell's own `x` loop,
/// so chunked evaluation preserves it exactly: the result is bit-identical at
/// any thread count. This mirrors the [`QualityTable::par_from_posts`]
/// pattern for the table build that precedes the recurrence.
pub fn par_optimal_allocation(
    runtime: &Runtime,
    table: &QualityTable,
    budget: usize,
) -> DpAllocation {
    let n = table.num_resources();
    assert!(n >= 1, "cannot allocate over zero resources");

    let layer_runtime = if budget + 1 < PAR_DP_MIN_CELLS {
        Runtime::sequential()
    } else {
        *runtime
    };

    // q[b] for the current prefix; y[l][b] records the optimal x_l at (b, l).
    let mut prev: Vec<f64> = (0..=budget).map(|b| table.quality(0, b)).collect();
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(n);
    choice.push((0..=budget).map(|b| b as u32).collect());

    for l in 1..n {
        let cells: Vec<(f64, u32)> = layer_runtime.par_map_indexed(budget + 1, |b| {
            let mut best = f64::NEG_INFINITY;
            let mut best_x = 0u32;
            for x in 0..=b {
                let candidate = prev[b - x] + table.quality(l, x);
                // Strict `>`: on ties the smallest x wins, whatever chunk
                // this cell happens to run in.
                if candidate > best {
                    best = candidate;
                    best_x = x as u32;
                }
            }
            (best, best_x)
        });
        let mut cur = Vec::with_capacity(budget + 1);
        let mut cur_choice = Vec::with_capacity(budget + 1);
        for (quality, x) in cells {
            cur.push(quality);
            cur_choice.push(x);
        }
        prev = cur;
        choice.push(cur_choice);
    }

    // Backtrack the optimal assignment. A table/choice inconsistency must
    // fail loudly here instead of silently returning a partial allocation:
    // these checks are O(n) next to the O(n·B²) fill, so they stay on in
    // release builds (they used to be debug-only).
    let total_quality = prev[budget];
    let mut allocation = vec![0u32; n];
    let mut b = budget;
    for l in (0..n).rev() {
        let x = choice[l][b] as usize;
        assert!(
            x <= b,
            "choice table inconsistent at layer {l}: x = {x} exceeds the remaining budget {b}"
        );
        allocation[l] = x as u32;
        b -= x;
    }
    assert_eq!(b, 0, "backtracking must consume the whole budget");

    DpAllocation {
        allocation,
        total_quality,
    }
}

/// Exhaustive search over all allocations — exponential, only usable on tiny
/// instances; kept as the ground truth the DP is tested against.
pub fn brute_force_allocation(table: &QualityTable, budget: usize) -> DpAllocation {
    let n = table.num_resources();
    assert!(n >= 1, "cannot allocate over zero resources");
    let mut best: Option<DpAllocation> = None;
    let mut current = vec![0u32; n];

    fn recurse(
        table: &QualityTable,
        current: &mut Vec<u32>,
        resource: usize,
        remaining: usize,
        best: &mut Option<DpAllocation>,
    ) {
        let n = table.num_resources();
        if resource == n - 1 {
            current[resource] = remaining as u32;
            let total: f64 = current
                .iter()
                .enumerate()
                .map(|(i, &x)| table.quality(i, x as usize))
                .sum();
            let better = match best {
                Some(b) => total > b.total_quality,
                None => true,
            };
            if better {
                *best = Some(DpAllocation {
                    allocation: current.clone(),
                    total_quality: total,
                });
            }
            return;
        }
        for x in 0..=remaining {
            current[resource] = x as u32;
            recurse(table, current, resource + 1, remaining - x, best);
        }
    }

    recurse(table, &mut current, 0, budget, &mut best);
    best.expect("at least one allocation exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagging_core::model::{TagDictionary, TagId};
    use tagging_core::rfd::rfd_of_prefix;

    fn post(tag: u32) -> Post {
        Post::new([TagId(tag)]).unwrap()
    }

    #[test]
    fn quality_table_clamps_beyond_future() {
        let initial = vec![vec![post(0)]];
        let future = vec![vec![post(1)]];
        let references = vec![Rfd::from_counts([(TagId(0), 1), (TagId(1), 1)])];
        let table = QualityTable::from_posts(&initial, &future, &references, 5);
        assert_eq!(table.num_resources(), 1);
        assert_eq!(table.max_allocation(), 5);
        // After the single future post the rfd equals the reference: quality 1.
        assert!((table.quality(0, 1) - 1.0).abs() < 1e-12);
        // Further allocations cannot change anything.
        assert_eq!(table.quality(0, 5), table.quality(0, 1));
        assert_eq!(table.quality(0, 99), table.quality(0, 5));
    }

    #[test]
    fn quality_table_matches_paper_example_3() {
        // Example 3 / Table IV: r1 has 3 posts, r2 has 2; budget 2.
        // Next posts: r1 gets {geographic, earth} then {google, geographic};
        //             r2 gets {google, picture} then {google}.
        let mut dict = TagDictionary::new();
        let p = |names: &[&str], dict: &mut TagDictionary| {
            Post::from_names(dict, names.iter().copied()).unwrap()
        };
        let r1_initial = vec![
            p(&["google", "earth"], &mut dict),
            p(&["google", "geographic"], &mut dict),
            p(&["earth"], &mut dict),
        ];
        let r2_initial = vec![p(&["pictures"], &mut dict), p(&["pictures"], &mut dict)];
        let r1_future = vec![
            p(&["geographic", "earth"], &mut dict),
            p(&["google", "geographic"], &mut dict),
        ];
        // The paper's Example 3 writes "{google, picture}"; in context this is the
        // "pictures" tag of Table II, so we use the shared tag here.
        let r2_future = vec![
            p(&["google", "pictures"], &mut dict),
            p(&["google"], &mut dict),
        ];
        let google = dict.get("google").unwrap();
        let earth = dict.get("earth").unwrap();
        let geographic = dict.get("geographic").unwrap();
        let pictures = dict.get("pictures").unwrap();
        let phi1 = Rfd::from_weights([(google, 0.25), (geographic, 0.25), (earth, 0.5)]);
        let phi2 = Rfd::from_weights([(google, 0.33), (pictures, 0.67)]);

        let table = QualityTable::from_posts(
            &[r1_initial, r2_initial],
            &[r1_future, r2_future],
            &[phi1, phi2],
            2,
        );
        // Table IV, row (1,1): q1(4) = 0.990 and q2(3) = 0.990.
        assert!(
            (table.quality(0, 1) - 0.990).abs() < 5e-3,
            "q1(4) = {}",
            table.quality(0, 1)
        );
        assert!(
            (table.quality(1, 1) - 0.990).abs() < 5e-3,
            "q2(3) = {}",
            table.quality(1, 1)
        );
        // Row (0,2): q2(4) = 0.992;   row (2,0): q1(5) = 0.943.
        assert!(
            (table.quality(1, 2) - 0.992).abs() < 5e-3,
            "q2(4) = {}",
            table.quality(1, 2)
        );
        assert!(
            (table.quality(0, 2) - 0.943).abs() < 5e-3,
            "q1(5) = {}",
            table.quality(0, 2)
        );

        // The DP must therefore pick the (1, 1) assignment, as the paper states.
        let result = optimal_allocation(&table, 2);
        assert_eq!(result.allocation, vec![1, 1]);
        assert!((result.mean_quality() - 0.990).abs() < 5e-3);
    }

    #[test]
    fn dp_matches_brute_force_on_small_instances() {
        // Hand-crafted concave-ish and non-concave rows to exercise the search.
        let table = QualityTable::from_rows(vec![
            vec![0.10, 0.40, 0.55, 0.60, 0.62, 0.63],
            vec![0.50, 0.52, 0.90, 0.91, 0.92, 0.92],
            vec![0.80, 0.81, 0.82, 0.83, 0.84, 0.85],
            vec![0.05, 0.06, 0.07, 0.70, 0.71, 0.72],
        ]);
        for budget in 0..=5 {
            let dp = optimal_allocation(&table, budget);
            let bf = brute_force_allocation(&table, budget);
            assert!(
                (dp.total_quality - bf.total_quality).abs() < 1e-12,
                "budget {budget}: dp {} vs brute force {}",
                dp.total_quality,
                bf.total_quality
            );
            assert_eq!(dp.allocation.iter().sum::<u32>() as usize, budget);
        }
    }

    #[test]
    fn dp_zero_budget_allocates_nothing() {
        let table = QualityTable::from_rows(vec![vec![0.3, 0.9], vec![0.5, 0.8]]);
        let result = optimal_allocation(&table, 0);
        assert_eq!(result.allocation, vec![0, 0]);
        assert!((result.total_quality - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dp_single_resource_gets_everything() {
        let table = QualityTable::from_rows(vec![vec![0.1, 0.2, 0.3, 0.9]]);
        let result = optimal_allocation(&table, 3);
        assert_eq!(result.allocation, vec![3]);
        assert!((result.total_quality - 0.9).abs() < 1e-12);
    }

    #[test]
    fn dp_budget_beyond_table_is_handled() {
        // Budget 4 but the table only covers x ≤ 2 per resource: extra units are
        // still assigned (they just stop improving quality).
        let table = QualityTable::from_rows(vec![vec![0.2, 0.5, 0.6], vec![0.3, 0.4, 0.45]]);
        let result = optimal_allocation(&table, 4);
        assert_eq!(result.allocation.iter().sum::<u32>(), 4);
        assert!((result.total_quality - (0.6 + 0.45)).abs() < 1e-12);
    }

    #[test]
    fn dp_prefers_resources_with_larger_marginal_gains() {
        // Resource 0 gains +0.4 from its first task; resource 1 gains +0.01.
        let table = QualityTable::from_rows(vec![vec![0.5, 0.9, 0.91], vec![0.9, 0.91, 0.92]]);
        let result = optimal_allocation(&table, 1);
        assert_eq!(result.allocation, vec![1, 0]);
    }

    #[test]
    fn quality_table_built_from_posts_is_consistent_with_rfd_prefixes() {
        let initial = vec![vec![post(0), post(0)]];
        let future = vec![vec![post(1), post(1), post(1)]];
        let reference = Rfd::from_counts([(TagId(0), 1), (TagId(1), 1)]);
        let table =
            QualityTable::from_posts(&initial, &future, std::slice::from_ref(&reference), 3);
        for x in 0..=3 {
            let mut posts = initial[0].clone();
            posts.extend_from_slice(&future[0][..x]);
            let expected =
                tagging_core::similarity::cosine(&rfd_of_prefix(&posts, posts.len()), &reference);
            assert!((table.quality(0, x) - expected).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn par_table_is_bit_identical_across_thread_counts() {
        let initial = vec![
            vec![post(0), post(0)],
            vec![post(1)],
            vec![post(2), post(0)],
        ];
        let future = vec![
            vec![post(1), post(1), post(0)],
            vec![post(0), post(1)],
            vec![post(2); 4],
        ];
        let references = vec![
            Rfd::from_counts([(TagId(0), 1), (TagId(1), 1)]),
            Rfd::from_counts([(TagId(0), 2), (TagId(1), 3)]),
            Rfd::from_counts([(TagId(2), 1)]),
        ];
        let sequential = QualityTable::par_from_posts(
            &tagging_runtime::Runtime::sequential(),
            &initial,
            &future,
            &references,
            6,
        );
        for threads in [2, 8] {
            let parallel = QualityTable::par_from_posts(
                &tagging_runtime::Runtime::new(threads),
                &initial,
                &future,
                &references,
                6,
            );
            for r in 0..3 {
                for x in 0..=6 {
                    assert!(
                        sequential.quality(r, x).to_bits() == parallel.quality(r, x).to_bits(),
                        "threads {threads}, resource {r}, x {x}"
                    );
                }
            }
            // The DP on top of identical tables is identical too.
            assert_eq!(
                optimal_allocation(&sequential, 4),
                optimal_allocation(&parallel, 4)
            );
        }
    }

    #[test]
    fn par_dp_recurrence_is_bit_identical_across_thread_counts() {
        // A budget wide enough to clear PAR_DP_MIN_CELLS, so the chunked
        // layer fill actually runs; quality clamps beyond each row's width.
        let table = QualityTable::from_rows(vec![
            vec![0.10, 0.40, 0.55, 0.60, 0.62],
            vec![0.50, 0.52, 0.90, 0.91, 0.92],
            vec![0.80, 0.81, 0.82, 0.83, 0.84],
            vec![0.05, 0.06, 0.07, 0.70, 0.71],
        ]);
        for budget in [0, 3, 400, PAR_DP_MIN_CELLS + 37] {
            let reference = par_optimal_allocation(&Runtime::sequential(), &table, budget);
            assert_eq!(
                reference.allocation.iter().sum::<u32>() as usize,
                budget,
                "budget {budget} not fully spent"
            );
            for threads in [2, 8] {
                let parallel = par_optimal_allocation(&Runtime::new(threads), &table, budget);
                assert_eq!(
                    parallel.allocation, reference.allocation,
                    "threads {threads}, budget {budget}"
                );
                assert_eq!(
                    parallel.total_quality.to_bits(),
                    reference.total_quality.to_bits(),
                    "threads {threads}, budget {budget}: DP value diverged bitwise"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot allocate over zero resources")]
    fn from_posts_rejects_zero_resources() {
        QualityTable::from_posts(&[], &[], &[], 3);
    }

    #[test]
    // The construction panic matches optimal_allocation's message, so a
    // zero-resource table fails the same way wherever it is caught.
    #[should_panic(expected = "cannot allocate over zero resources")]
    fn from_rows_rejects_empty() {
        QualityTable::from_rows(vec![]);
    }

    #[test]
    #[should_panic(expected = "same budget range")]
    fn from_rows_rejects_ragged_rows() {
        QualityTable::from_rows(vec![vec![0.1, 0.2], vec![0.3]]);
    }
}
