//! Batched allocation semantics — the online-service extension of Algorithm 1.
//!
//! The classic framework loop ([`run_allocation`](crate::framework::run_allocation))
//! interleaves CHOOSE and UPDATE one post task at a time: the post produced by
//! task *j* is visible before task *j + 1* is chosen. An online allocation
//! service cannot work that way — a client asks for a *batch* of `k` tasks up
//! front and reports the completed posts later, possibly much later and out of
//! order. This module defines the semantics of that split:
//!
//! * **allocation time** — a strategy commits `k` resources using only the
//!   information that exists when the batch is requested: the per-resource
//!   *counts* (which the allocation itself advances) and any state that does
//!   not depend on post contents;
//! * **observation time** — completed (or undelivered) posts arrive and the
//!   post-dependent state (e.g. MU's MA trackers) is updated.
//!
//! The unit of allocation is [`BatchAllocator::allocate_one`]; the provided
//! [`BatchAllocator::allocate_batch`] is *defined* as `k` sequential
//! `allocate_one` calls, so a native batched override (which amortizes the
//! per-task work) is correct exactly when it is indistinguishable from that
//! default — the property the `batch_equivalence` test suite checks for every
//! strategy, every ω and batch sizes {1, 7, 64}.
//!
//! With batch size 1 and completions reported immediately (the
//! [`run_allocation_batched`] driver), the protocol degenerates to the classic
//! sequential loop: for every built-in strategy,
//! `run_allocation_batched(…, 1)` is bit-identical to `run_allocation(…)`.

use tagging_core::model::{Post, ResourceId};

use crate::framework::{
    AllocationOutcome, AllocationStep, AllocationStrategy, AllocationView, PostSource,
};

/// Mutable allocation-time state of a batch: the shared read-only scenario
/// data plus the allocated counts, which advance as choices are committed so
/// later choices in the same batch see earlier ones.
#[derive(Debug)]
pub struct BatchState<'a> {
    initial_sequences: &'a [Vec<Post>],
    popularity: &'a [f64],
    allocated: &'a mut [u32],
}

impl<'a> BatchState<'a> {
    /// Creates the allocation-time state over the framework's arrays.
    pub fn new(
        initial_sequences: &'a [Vec<Post>],
        popularity: &'a [f64],
        allocated: &'a mut [u32],
    ) -> Self {
        assert_eq!(initial_sequences.len(), allocated.len());
        assert_eq!(popularity.len(), allocated.len());
        Self {
            initial_sequences,
            popularity,
            allocated,
        }
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.allocated.len()
    }

    /// True when there are no resources.
    pub fn is_empty(&self) -> bool {
        self.allocated.is_empty()
    }

    /// A read-only [`AllocationView`] of the current state.
    pub fn view(&self) -> AllocationView<'_> {
        AllocationView {
            initial_sequences: self.initial_sequences,
            allocated: self.allocated,
            popularity: self.popularity,
        }
    }

    /// `c_i + x_i` at the current point of the batch.
    pub fn total_count(&self, id: ResourceId) -> usize {
        self.initial_sequences[id.index()].len() + self.allocated[id.index()] as usize
    }

    /// Commits one task on `id`: bumps its allocated count so subsequent
    /// choices in the same batch observe it. Every resource returned from
    /// [`BatchAllocator::allocate_one`] / [`BatchAllocator::allocate_batch`]
    /// must have been committed exactly once.
    pub fn commit(&mut self, id: ResourceId) {
        self.allocated[id.index()] += 1;
    }
}

/// A strategy that supports batched allocation: choices are committed using
/// allocation-time information only, and post contents are incorporated later
/// via the `observe_*` methods.
///
/// The provided `allocate_batch` / `observe_batch` are the *semantics*: `k`
/// sequential single allocations, then per-completion observations. Native
/// overrides (FP's water-fill, MU's drained-queue fallback fill, RR's
/// arithmetic cycle, FP-MU's warm-up split) must be indistinguishable from
/// them.
pub trait BatchAllocator: AllocationStrategy {
    /// One single-task allocation under batched semantics: chooses a resource
    /// exactly like the classic CHOOSE would, commits it on `state`, and
    /// applies any state update that depends only on allocation-time
    /// information (counts). Post-dependent updates are deferred to
    /// [`BatchAllocator::observe_one`].
    fn allocate_one(&mut self, state: &mut BatchState<'_>) -> ResourceId;

    /// Incorporates one completed post task: `post` is the post the tagger
    /// submitted, or `None` when the task produced no post. Together with the
    /// allocation-time part of [`BatchAllocator::allocate_one`], this must
    /// leave the strategy in the same state the classic UPDATE would.
    fn observe_one(&mut self, view: &AllocationView<'_>, resource: ResourceId, post: Option<&Post>);

    /// Allocates a batch of `k` tasks. The default is the definition: `k`
    /// sequential [`BatchAllocator::allocate_one`] calls. Returns exactly `k`
    /// resources, each committed on `state`.
    fn allocate_batch(&mut self, state: &mut BatchState<'_>, k: usize) -> Vec<ResourceId> {
        (0..k).map(|_| self.allocate_one(state)).collect()
    }

    /// Observes a batch of completions, in report order. The default applies
    /// [`BatchAllocator::observe_one`] per completion.
    fn observe_batch(
        &mut self,
        view: &AllocationView<'_>,
        completions: &[(ResourceId, Option<Post>)],
    ) {
        for (resource, post) in completions {
            self.observe_one(view, *resource, post.as_ref());
        }
    }
}

/// Runs the batched protocol against a [`PostSource`]: repeatedly allocates a
/// batch of up to `batch_size` tasks, draws the completed posts and reports
/// them back, until `budget` tasks have been spent.
///
/// With `batch_size == 1` this is bit-identical to
/// [`run_allocation`](crate::framework::run_allocation) for every built-in
/// strategy: each allocation is immediately followed by its observation, which
/// is exactly the classic CHOOSE → receive → UPDATE step.
pub fn run_allocation_batched<S: BatchAllocator + ?Sized, P: PostSource + ?Sized>(
    strategy: &mut S,
    source: &mut P,
    initial_sequences: &[Vec<Post>],
    popularity: &[f64],
    budget: usize,
    batch_size: usize,
) -> AllocationOutcome {
    assert_eq!(
        initial_sequences.len(),
        popularity.len(),
        "initial sequences and popularity weights must cover the same resources"
    );
    let n = initial_sequences.len();
    assert!(n > 0, "cannot allocate a budget over zero resources");
    assert!(batch_size > 0, "batch size must be positive");

    let mut allocated = vec![0u32; n];
    let mut trace = Vec::with_capacity(budget);
    let mut undelivered = 0usize;

    {
        let view = AllocationView {
            initial_sequences,
            allocated: &allocated,
            popularity,
        };
        strategy.init(&view);
    }

    let mut spent = 0usize;
    while spent < budget {
        let k = batch_size.min(budget - spent);
        let ids = {
            let mut state = BatchState::new(initial_sequences, popularity, &mut allocated);
            strategy.allocate_batch(&mut state, k)
        };
        assert_eq!(
            ids.len(),
            k,
            "strategy {} returned a batch of the wrong size",
            strategy.name()
        );
        let completions: Vec<(ResourceId, Option<Post>)> = ids
            .into_iter()
            .map(|id| {
                assert!(
                    id.index() < n,
                    "strategy {} chose an unknown resource {id}",
                    strategy.name()
                );
                (id, source.next_post(id))
            })
            .collect();
        {
            let view = AllocationView {
                initial_sequences,
                allocated: &allocated,
                popularity,
            };
            strategy.observe_batch(&view, &completions);
        }
        for (resource, post) in completions {
            if post.is_none() {
                undelivered += 1;
            }
            trace.push(AllocationStep { resource, post });
        }
        spent += k;
    }

    AllocationOutcome {
        allocated,
        trace,
        undelivered,
    }
}

/// Water-fills `k` tasks over `(count, id)` entries: repeatedly assigns the
/// next task to the entry with the smallest `(count, id)`, exactly as `k`
/// sequential min-picks with count bumps would — but in `O(m log m + k)` for
/// `m` touched entries instead of `k` scans or heap round-trips.
///
/// `entries` is a min-heap-ordering-agnostic list of unique `(count, id)`
/// pairs; `emit` receives each chosen id in allocation order. Returns the
/// final `(count, id)` of every touched entry (untouched entries are returned
/// unchanged), so callers can reinstall them in their own structures.
///
/// Shared by FP's native batch, MU's drained-queue fallback and (through FP)
/// FP-MU's warm-up phase.
pub(crate) fn water_fill(
    mut entries: Vec<(u64, u32)>,
    k: usize,
    mut emit: impl FnMut(ResourceId),
) -> Vec<(u64, u32)> {
    if k == 0 || entries.is_empty() {
        return entries;
    }
    // Lexicographic (count, id) order is exactly the sequential pick order.
    entries.sort_unstable();

    // `frontier` holds the entries at the current water level in id order;
    // `entries[next..]` are the untouched ones above the level.
    let mut level = entries[0].0;
    let mut frontier: Vec<u32> = Vec::new();
    let mut next = 0usize;
    while next < entries.len() && entries[next].0 == level {
        frontier.push(entries[next].1);
        next += 1;
    }

    let mut remaining = k;
    let filled; // how many frontier entries ended at `level + 1`
    loop {
        if remaining >= frontier.len() {
            // A full round: every frontier entry gets one task, in id order.
            for &id in &frontier {
                emit(ResourceId(id));
            }
            remaining -= frontier.len();
            level += 1;
            // Entries whose original count equals the new level join the
            // frontier; merge the two id-sorted lists.
            let mut joining: Vec<u32> = Vec::new();
            while next < entries.len() && entries[next].0 == level {
                joining.push(entries[next].1);
                next += 1;
            }
            if !joining.is_empty() {
                let old = std::mem::take(&mut frontier);
                frontier = merge_sorted(old, joining);
            }
            if remaining == 0 {
                filled = 0;
                break;
            }
        } else {
            // Partial round: the first `remaining` frontier ids (id order) get
            // one final task each.
            for &id in frontier.iter().take(remaining) {
                emit(ResourceId(id));
            }
            filled = remaining;
            break;
        }
    }

    // Reassemble the final counts: the first `filled` frontier entries sit at
    // level + 1, the rest of the frontier at `level`, untouched entries keep
    // their original counts.
    let mut out: Vec<(u64, u32)> = Vec::with_capacity(entries.len());
    for (i, &id) in frontier.iter().enumerate() {
        out.push((if i < filled { level + 1 } else { level }, id));
    }
    out.extend_from_slice(&entries[next..]);
    out
}

/// Merges two id-sorted lists into one.
fn merge_sorted(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: k sequential min-picks with bumps.
    fn water_fill_reference(mut entries: Vec<(u64, u32)>, k: usize) -> (Vec<u32>, Vec<(u64, u32)>) {
        let mut order = Vec::new();
        for _ in 0..k {
            let (pos, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, &(c, id))| (c, id))
                .expect("non-empty");
            entries[pos].0 += 1;
            order.push(entries[pos].1);
        }
        (order, entries)
    }

    #[test]
    fn water_fill_matches_sequential_min_picks() {
        let cases: Vec<(Vec<(u64, u32)>, usize)> = vec![
            (vec![(3, 0), (1, 1), (2, 2)], 4),
            (vec![(0, 5), (0, 1), (0, 3)], 7),
            (vec![(10, 0)], 3),
            (vec![(2, 0), (2, 1), (5, 2), (9, 3)], 11),
            (vec![(7, 4), (3, 2), (3, 9), (4, 1), (8, 0)], 23),
            (vec![(1, 0), (4, 1)], 0),
        ];
        for (entries, k) in cases {
            let (expected_order, expected_final) = water_fill_reference(entries.clone(), k);
            let mut order = Vec::new();
            let mut final_counts = water_fill(entries.clone(), k, |id| order.push(id.0));
            order.truncate(k);
            assert_eq!(order, expected_order, "entries {entries:?} k {k}");
            let mut expected_sorted = expected_final.clone();
            expected_sorted.sort_unstable();
            final_counts.sort_unstable();
            assert_eq!(final_counts, expected_sorted, "entries {entries:?} k {k}");
        }
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(
            merge_sorted(vec![1, 4, 6], vec![2, 3, 7]),
            vec![1, 2, 3, 4, 6, 7]
        );
        assert_eq!(merge_sorted(vec![], vec![5]), vec![5]);
        assert_eq!(merge_sorted(vec![5], vec![]), vec![5]);
    }
}
