//! Property and concurrency tests for the sharded log-scale histogram: the
//! sharded/merged view must agree count-for-count with a single-threaded
//! reference, bucket boundaries must be exact at 0, `u64::MAX` and every
//! power of two, and concurrent recording must never lose a sample.
//!
//! Assertions that depend on anything being recorded are gated on
//! [`tagging_telemetry::enabled`] so the suite also passes under the `noop`
//! feature (where every snapshot is legitimately all-zero).

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use tagging_telemetry::{bucket_of, bucket_upper, Histogram, HistogramSnapshot, BUCKET_COUNT};

/// Single-threaded reference implementation: the bucket scheme applied
/// one value at a time to a plain snapshot.
fn reference(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::default();
    for &v in values {
        snap.buckets[bucket_of(v)] += 1;
        snap.sum = snap.sum.wrapping_add(v);
        snap.max = snap.max.max(v);
    }
    snap
}

proptest! {
    /// Recording values through the sharded histogram from several threads
    /// (hitting different shards) and merging must equal the reference.
    #[test]
    fn merged_shards_match_reference(values in vec(0u64..=u64::MAX, 0..300)) {
        if !tagging_telemetry::enabled() {
            return;
        }
        let histogram = Arc::new(Histogram::new());
        // Split the values across threads so multiple shard slots are
        // exercised; each spawned thread gets its own thread-local shard.
        let chunk = (values.len() / 4 + 1).max(16);
        let handles: Vec<_> = values
            .chunks(chunk)
            .map(|c| {
                let histogram = Arc::clone(&histogram);
                let chunk: Vec<u64> = c.to_vec();
                std::thread::spawn(move || {
                    for v in chunk {
                        histogram.record(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        prop_assert_eq!(histogram.snapshot(), reference(&values));
    }

    /// Merging two snapshots is the same as recording both value sets into
    /// one histogram.
    #[test]
    fn snapshot_merge_is_count_for_count(
        a in vec(0u64..=u64::MAX, 0..100),
        b in vec(0u64..=u64::MAX, 0..100),
    ) {
        let mut merged = reference(&a);
        merged.merge(&reference(&b));
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, reference(&combined));
    }

    /// Quantile upper bounds never undershoot the true quantile and
    /// overshoot by strictly less than 2x (for non-zero values).
    #[test]
    fn quantile_is_a_tight_upper_bound(
        values in vec(1u64..1_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = reference(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_q = sorted[rank - 1];
        let estimate = snap.quantile(q);
        prop_assert!(estimate >= true_q, "estimate {estimate} < true {true_q}");
        prop_assert!(
            estimate < 2 * true_q,
            "estimate {estimate} >= 2x true {true_q}"
        );
    }
}

#[test]
fn boundary_values_land_in_exact_buckets() {
    // Zero is its own bucket; each power of two opens the next bucket.
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
    for i in 1..64usize {
        let low = 1u64 << (i - 1);
        assert_eq!(bucket_of(low), i, "2^{} opens bucket {i}", i - 1);
        assert_eq!(
            bucket_of(low - 1),
            i - 1,
            "2^{} - 1 closes bucket {}",
            i - 1,
            i - 1
        );
        assert_eq!(bucket_of(bucket_upper(i)), i);
    }
    assert_eq!(bucket_upper(0), 0);
    assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);

    if tagging_telemetry::enabled() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(snap.max, u64::MAX);
        // Sum wraps on overflow by design (0 + u64::MAX fits exactly).
        assert_eq!(snap.sum, u64::MAX);
    }
}

/// N threads hammering one histogram concurrently must lose no samples:
/// the merged count, sum and max all reflect every record call.
#[test]
fn concurrent_recording_loses_no_samples() {
    if !tagging_telemetry::enabled() {
        return;
    }
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let histogram = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct value streams per thread so every shard sees
                    // a spread of buckets.
                    histogram.record(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = histogram.snapshot();
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.count(), n);
    assert_eq!(snap.max, n - 1);
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
}
